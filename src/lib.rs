//! # vns — Geography-aware transport overlay for video conferencing
//!
//! A from-scratch Rust reproduction of *"Geography Matters: Building an
//! Efficient Transport Network for a Better Video Conferencing
//! Experience"* (Elmokashfi, Myakotnykh, Evang, Kvalbein, Cicic —
//! CoNEXT 2013).
//!
//! The paper built and measured **VNS**: a production network-layer
//! overlay of 11 PoPs on dedicated L2 circuits, organised as one BGP AS,
//! whose route reflectors rewrite LOCAL_PREF from the great-circle
//! distance between each route's egress router and the destination
//! prefix's GeoIP location — geography-based *cold-potato* routing. This
//! workspace rebuilds the system and every substrate its evaluation needs:
//!
//! * [`geo`] — great-circle math, world regions, a city table, and a
//!   GeoIP database with the paper's documented error pathologies;
//! * [`netsim`] — a deterministic discrete-event substrate: clock, RNG
//!   tree, loss models (random / Gilbert–Elliott bursty / diurnal
//!   congestion), delay samplers, blackout fault injection;
//! * [`bgp`] — message-level BGP: full decision process, route
//!   reflection, best-external, valley-free policies, IGP;
//! * [`topo`] — a synthetic Internet: LTP/STP/CAHP/EC ASes in real
//!   cities, transit/peering at interconnection sites, prefix
//!   geolocation, data-plane path resolution, loss-profile calibration;
//! * [`media`] — RTP-style HD video streams, echo sessions, RFC 3550
//!   jitter, FEC and deadline-bounded retransmission;
//! * [`probe`] — ping-style RTT probes and back-to-back loss trains;
//! * [`core`] — **the contribution**: the VNS overlay itself.
//!
//! ## Quickstart
//!
//! ```no_run
//! use vns::core::{build_vns, VnsConfig};
//! use vns::topo::{generate, TopoConfig};
//!
//! // A small synthetic Internet plus the VNS overlay on top of it.
//! let mut internet = generate(&TopoConfig::tiny(42)).expect("generate");
//! let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
//!
//! // Where does a destination prefix exit, seen from London (PoP 10)?
//! let dst = internet.prefixes().next().unwrap().prefix.first_host();
//! let egress = vns.egress_pop(&internet, vns::core::PopId(10), dst).unwrap();
//! println!("London routes it out at {}", vns.pop(egress).code());
//! ```
//!
//! See `examples/` for runnable scenarios and `vns-bench` for the
//! harness that regenerates every table and figure of the paper.

pub use vns_bgp as bgp;
pub use vns_core as core;
pub use vns_geo as geo;
pub use vns_media as media;
pub use vns_netsim as netsim;
pub use vns_probe as probe;
pub use vns_stats as stats;
pub use vns_topo as topo;
