//! Routing-plane invariants that must hold for any seed: loop-freedom,
//! dedicated-circuit usage, geo-proximity improvement, and anycast
//! reachability.

use vns::core::{build_vns, RoutingMode, VnsConfig};
use vns::topo::{generate, HopKind, Internet, TopoConfig};

fn world(seed: u64, mode: RoutingMode) -> (Internet, vns::core::Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let cfg = VnsConfig {
        mode,
        ..VnsConfig::default()
    };
    let vns = build_vns(&mut internet, &cfg).expect("converge");
    (internet, vns)
}

#[test]
fn no_forwarding_loops_anywhere() {
    for seed in [41, 42] {
        let (internet, vns) = world(seed, RoutingMode::GeoColdPotato);
        let mut resolved = 0;
        for pinfo in internet.prefixes() {
            let ip = pinfo.prefix.first_host();
            for pop in vns.pops() {
                match vns.path_via_vns(&internet, pop.id(), ip) {
                    Ok(path) => {
                        resolved += 1;
                        // A resolved path's router list never repeats.
                        let set: std::collections::BTreeSet<_> = path.routers.iter().collect();
                        assert_eq!(set.len(), path.routers.len(), "seed {seed}");
                    }
                    Err(e) => panic!("seed {seed}: {} from {}: {e}", pinfo.prefix, pop.code()),
                }
            }
        }
        assert!(resolved > 500, "resolved {resolved}");
    }
}

#[test]
fn vns_interior_is_dedicated_until_egress() {
    let (internet, vns) = world(43, RoutingMode::GeoColdPotato);
    for pinfo in internet.prefixes().step_by(7) {
        let ip = pinfo.prefix.first_host();
        let Ok(path) = vns.path_via_vns(&internet, vns::core::PopId(4), ip) else {
            continue;
        };
        // Once a shared hop appears, no dedicated hop may follow: traffic
        // released to the Internet never re-enters the overlay.
        let mut released = false;
        for hop in &path.hops {
            match hop.kind {
                HopKind::IntraAs {
                    dedicated: true, ..
                } => {
                    assert!(!released, "re-entered VNS after release: {}", hop.label);
                }
                HopKind::IntraAs {
                    dedicated: false, ..
                }
                | HopKind::LastMile { .. } => {
                    released = true;
                }
                HopKind::InterAs { .. } => {}
            }
        }
    }
}

#[test]
fn geo_mode_improves_geographic_proximity_of_egress() {
    let (i_geo, v_geo) = world(44, RoutingMode::GeoColdPotato);
    let (i_hot, v_hot) = world(44, RoutingMode::HotPotato);
    let from = vns::core::PopId(10);
    let mean_excess = |internet: &Internet, v: &vns::core::Vns| {
        let mut acc = 0.0;
        let mut n = 0;
        for p in internet.prefixes().filter(|p| p.last_mile) {
            let Some(egress) = v.egress_pop(internet, from, p.prefix.first_host()) else {
                continue;
            };
            let sel = v.pop(egress).location().distance_km(&p.location);
            let best = v
                .pop(v.nearest_pop(p.location))
                .location()
                .distance_km(&p.location);
            acc += sel - best;
            n += 1;
        }
        acc / n.max(1) as f64
    };
    let geo = mean_excess(&i_geo, &v_geo);
    let hot = mean_excess(&i_hot, &v_hot);
    assert!(
        geo < hot / 3.0,
        "geo mode must slash egress displacement: geo {geo} km vs hot {hot} km"
    );
}

#[test]
fn anycast_reachable_from_every_stub() {
    let (internet, vns) = world(45, RoutingMode::GeoColdPotato);
    let mut reached = 0;
    let mut total = 0;
    for p in internet.prefixes().filter(|p| p.last_mile) {
        total += 1;
        if vns
            .anycast_landing(&internet, p.prefix.first_host())
            .is_ok()
        {
            reached += 1;
        }
    }
    assert_eq!(reached, total, "anycast must be globally reachable");
}

#[test]
fn reversed_paths_mirror_forward_paths() {
    let (internet, vns) = world(46, RoutingMode::GeoColdPotato);
    let p = internet.prefixes().nth(10).unwrap();
    let path = vns
        .path_via_vns(&internet, vns::core::PopId(1), p.prefix.first_host())
        .unwrap();
    let rev = path.reversed();
    assert_eq!(path.hops.len(), rev.hops.len());
    assert!((path.total_km() - rev.total_km()).abs() < 1e-9);
    for (f, r) in path.hops.iter().zip(rev.hops.iter().rev()) {
        assert_eq!(f.from_city, r.to_city);
        assert_eq!(f.to_city, r.from_city);
        assert_eq!(f.label, r.label, "labels shared for blackout coupling");
    }
}

#[test]
fn egress_matches_data_plane() {
    // The egress PoP reported from the Loc-RIB view must be the last VNS
    // PoP on the resolved data-plane path.
    let (internet, vns) = world(47, RoutingMode::GeoColdPotato);
    let from = vns::core::PopId(9);
    let mut checked = 0;
    for p in internet.prefixes().filter(|p| p.last_mile).step_by(5) {
        let ip = p.prefix.first_host();
        let Some(egress) = vns.egress_pop(&internet, from, ip) else {
            continue;
        };
        let Ok(path) = vns.path_via_vns(&internet, from, ip) else {
            continue;
        };
        let last_vns_pop = path
            .routers
            .iter()
            .rev()
            .find_map(|r| vns.pop_of_router(*r))
            .expect("path starts inside VNS");
        assert_eq!(egress, last_vns_pop, "prefix {}", p.prefix);
        checked += 1;
    }
    assert!(checked >= 25, "checked {checked}");
}
