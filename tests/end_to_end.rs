//! Cross-crate integration tests: the whole pipeline from topology
//! generation through VNS routing to data-plane measurement.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns::core::{build_vns, PopId, VnsConfig};
use vns::media::{run_echo_session, SessionConfig, VideoSpec};
use vns::netsim::{Dur, RngTree, SimTime};
use vns::probe::{loss_train, rtt_probe_std};
use vns::topo::{generate, CalibrationConfig, ChannelFactory, Internet, TopoConfig};

struct Fixture {
    internet: Internet,
    vns: vns::core::Vns,
    factory: ChannelFactory,
}

fn fixture(seed: u64) -> Fixture {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    let factory = ChannelFactory::new(
        CalibrationConfig::default(),
        RngTree::new(seed).subtree("channels"),
    );
    Fixture {
        internet,
        vns,
        factory,
    }
}

#[test]
fn media_through_vns_beats_transit() {
    let f = fixture(31);
    let client = PopId(9); // Amsterdam
    let cfg = SessionConfig::default();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut loss = [0u32; 2]; // [vns, transit] lost packets
    let mut sent = [0u32; 2];
    for echo in f.vns.echo_servers().to_vec() {
        for (i, via_vns) in [true, false].into_iter().enumerate() {
            let path = if via_vns {
                f.vns.path_via_vns(&f.internet, client, echo.address())
            } else {
                f.vns.path_via_upstream(&f.internet, client, echo.address())
            }
            .expect("path resolves");
            let label = format!("t:{}:{}", echo.prefix, via_vns);
            let mut fwd = f.factory.channel(&path, &label);
            let mut rev = f.factory.channel(&path.reversed(), &format!("{label}:r"));
            for s in 0..4u64 {
                let sched = VideoSpec::HD1080.schedule(
                    SimTime::EPOCH + Dur::from_hours(5 * s),
                    cfg.duration,
                    &mut rng,
                );
                let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
                sent[i] += r.sent;
                loss[i] += r.sent - r.returned;
            }
        }
    }
    let rate = |i: usize| f64::from(loss[i]) / f64::from(sent[i]).max(1.0);
    assert!(
        rate(0) < rate(1) / 3.0,
        "VNS loss {} should be far below transit {}",
        rate(0),
        rate(1)
    );
    assert!(
        rate(0) < 0.001,
        "VNS streams are near-lossless: {}",
        rate(0)
    );
}

#[test]
fn rtt_probes_scale_with_distance() {
    let f = fixture(32);
    // Probe a European prefix from Amsterdam and from Sydney via VNS: the
    // Sydney RTT must be much larger and roughly consistent with the
    // speed of light in fibre.
    let eu = f
        .internet
        .prefixes()
        .find(|p| p.last_mile && vns::geo::city(p.city).region == vns::geo::Region::Europe)
        .expect("EU prefix");
    let (ip, loc) = (eu.prefix.first_host(), eu.location);
    let mut results = Vec::new();
    for pop in [PopId(9), PopId(11)] {
        let path = f.vns.path_via_vns(&f.internet, pop, ip).expect("path");
        let label = format!("rtt:{}", pop.0);
        let mut fwd = f.factory.channel(&path, &label);
        let mut rev = f.factory.channel(&path.reversed(), &format!("{label}:r"));
        let probe = rtt_probe_std(&mut fwd, &mut rev, SimTime::EPOCH + Dur::from_hours(4));
        results.push(probe.min_rtt_ms.expect("reachable"));
    }
    let (from_ams, from_syd) = (results[0], results[1]);
    assert!(
        from_syd > from_ams + 100.0,
        "AMS {from_ams} vs SYD {from_syd}"
    );
    // Physical lower bound: great-circle RTT at 200 km/ms.
    let syd_km = f.vns.pop(PopId(11)).location().distance_km(&loc);
    assert!(
        from_syd >= 2.0 * syd_km / 200.0,
        "RTT {from_syd} below light-speed bound"
    );
}

#[test]
fn loss_trains_see_last_mile_hierarchy() {
    let f = fixture(33);
    // From Amsterdam: CAHP hosts in AP must lose much more than LTP hosts
    // in EU (the two extremes of Table 1).
    let pick = |ty: vns::topo::AsType, region: vns::geo::Region| -> Vec<u32> {
        f.internet
            .prefixes()
            .filter(|p| {
                p.last_mile
                    && vns::geo::city(p.city).region == region
                    && f.internet.as_info(p.origin).ty == ty
            })
            .take(5)
            .map(|p| p.prefix.first_host())
            .collect()
    };
    let cahp_ap = pick(vns::topo::AsType::Cahp, vns::geo::Region::AsiaPacific);
    let ltp_eu = pick(vns::topo::AsType::Ltp, vns::geo::Region::Europe);
    assert!(!cahp_ap.is_empty() && !ltp_eu.is_empty());
    let mut rates = Vec::new();
    for hosts in [&cahp_ap, &ltp_eu] {
        let mut lost = 0u64;
        let mut sent = 0u64;
        for &ip in hosts.iter() {
            let Ok(path) = f.vns.path_via_local_exit(&f.internet, PopId(9), ip) else {
                continue;
            };
            let label = format!("lt:{ip}");
            let mut fwd = f.factory.channel(&path, &label);
            let mut rev = f.factory.channel(&path.reversed(), &format!("{label}:r"));
            for r in 0..48u64 {
                let t = SimTime::EPOCH + Dur::from_mins(30 * r);
                let train = loss_train(&mut fwd, &mut rev, t, 100);
                lost += u64::from(train.lost);
                sent += u64::from(train.sent);
            }
        }
        rates.push(lost as f64 / sent.max(1) as f64);
    }
    assert!(
        rates[0] > 4.0 * rates[1],
        "CAHP/AP {} should dwarf LTP/EU {}",
        rates[0],
        rates[1]
    );
}

#[test]
fn anycast_and_media_path_compose() {
    let f = fixture(34);
    // Every prefix can place a relayed call to every fifth other prefix.
    let metas: Vec<u32> = f
        .internet
        .prefixes()
        .filter(|p| p.last_mile)
        .map(|p| p.prefix.first_host())
        .collect();
    let mut ok = 0;
    let mut total = 0;
    for (i, &caller) in metas.iter().enumerate().take(25) {
        let callee = metas[(i * 5 + 3) % metas.len()];
        if caller == callee {
            continue;
        }
        total += 1;
        if f.vns.media_path(&f.internet, caller, callee).is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, total, "all relayed calls resolve ({ok}/{total})");
}

#[test]
fn whole_world_is_deterministic() {
    let run = |seed: u64| {
        let f = fixture(seed);
        let echo = f.vns.echo_servers()[2];
        let path = f
            .vns
            .path_via_upstream(&f.internet, PopId(1), echo.address())
            .expect("path");
        let mut fwd = f.factory.channel(&path, "det");
        let mut rev = f.factory.channel(&path.reversed(), "det:r");
        let mut rng = SmallRng::seed_from_u64(9);
        let sched = VideoSpec::HD720.schedule(SimTime::EPOCH, Dur::from_secs(60), &mut rng);
        let cfg = SessionConfig::default();
        let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
        (
            r.sent,
            r.returned,
            r.slot_losses.clone(),
            path.total_km().to_bits(),
        )
    };
    assert_eq!(run(35), run(35));
}

#[test]
fn hot_and_cold_modes_share_the_same_internet() {
    // The same topology seed yields identical prefixes regardless of VNS
    // mode — before/after comparisons are apples to apples.
    let mut a = generate(&TopoConfig::tiny(36)).unwrap();
    let mut b = generate(&TopoConfig::tiny(36)).unwrap();
    let _vns_a = build_vns(&mut a, &VnsConfig::default()).unwrap();
    let _vns_b = build_vns(&mut b, &VnsConfig::default().before()).unwrap();
    let pa: Vec<_> = a.prefixes().map(|p| (p.prefix, p.city)).collect();
    let pb: Vec<_> = b.prefixes().map(|p| (p.prefix, p.city)).collect();
    assert_eq!(pa, pb);
}
