#!/usr/bin/env sh
# Flamegraph helper for the packet fast path.
#
# Usage: scripts/profile.sh [vns-bench args...]
#   scripts/profile.sh fig9              # profile the fig9 campaign
#   scripts/profile.sh --threads 1 all   # profile the whole suite
#
# Records with `perf` and folds with `inferno`/`flamegraph` when either
# is installed; degrades to a plain `perf report` when no folder exists,
# and to timing-only output when `perf` itself is unavailable (as in the
# minimal CI container). The binary is always built with `--release`
# plus debug info so frames resolve.
set -eu

cd "$(dirname "$0")/.."
OUT=${PROFILE_OUT:-target/profile}
mkdir -p "$OUT"

CARGO_PROFILE_RELEASE_DEBUG=true cargo build --offline --release -p vns-bench
BIN=target/release/vns-bench
ARGS=${*:-fig9}

if ! command -v perf >/dev/null 2>&1; then
    echo "profile.sh: 'perf' is not installed; falling back to wall-clock timing." >&2
    echo "profile.sh: install linux-tools (perf) and re-run for a flamegraph." >&2
    # shellcheck disable=SC2086  # ARGS is a user-supplied argv tail
    exec time "$BIN" $ARGS
fi

# shellcheck disable=SC2086
perf record -g --call-graph dwarf -o "$OUT/perf.data" "$BIN" $ARGS

if command -v inferno-collapse-perf >/dev/null 2>&1; then
    perf script -i "$OUT/perf.data" | inferno-collapse-perf | inferno-flamegraph \
        > "$OUT/flame.svg"
    echo "flamegraph: $OUT/flame.svg"
elif command -v flamegraph.pl >/dev/null 2>&1; then
    perf script -i "$OUT/perf.data" | stackcollapse-perf.pl | flamegraph.pl \
        > "$OUT/flame.svg"
    echo "flamegraph: $OUT/flame.svg"
else
    echo "profile.sh: no flamegraph folder found; showing perf report instead." >&2
    perf report -i "$OUT/perf.data" --stdio | head -60
fi
