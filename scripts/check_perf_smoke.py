#!/usr/bin/env python3
"""Compare a fresh perf-smoke ledger against the committed baseline.

Usage: check_perf_smoke.py BASELINE.json CANDIDATE.json [MAX_RATIO]

Both files are `vns-bench` BENCH_campaigns.json ledgers from the same
command and scale. Wall time is normalised by thread count (cost =
total_wall_s * threads) so a runner with a different --threads setting
still compares; the check fails when the candidate costs more than
MAX_RATIO (default 1.25) times the baseline. CI wall clocks are noisy, so
the threshold is deliberately loose — this catches order-of-magnitude
regressions (e.g. losing the fast path), not percent-level drift.

Beyond wall clock, the packet-replay experiments (fig9, jitter) also get
a packets_per_s floor: per-thread replay throughput must stay above
PPS_FLOOR_FRACTION (0.6) of the baseline's. Wall time alone would let a
packet-engine regression hide behind a faster world build; the throughput
floor pins the batch fast path itself.
"""

import json
import sys

# Experiments whose packets_per_s is a meaningful engine-throughput
# signal (dominated by packet replay, not world builds or reductions).
PPS_GUARDED = ("fig9", "jitter")
PPS_FLOOR_FRACTION = 0.6

# Per-row wall ceiling for scale-sweep rungs: a single rung of the
# scale-curve ledger (world build or verify at one scale) may not cost
# more than this multiple of the same rung in the baseline. The whole-
# ledger ratio would let a blowup at the largest scale hide behind fast
# small rungs; this pins each scale individually.
SCALE_ROW_GUARDED = ("scale-build", "scale-verify")
SCALE_ROW_MAX_RATIO = 2.0


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def row_key(ledger, e):
    """Rows are keyed (name, scale); old-schema rows without a per-row
    scale inherit the ledger-level one."""
    return (e["name"], e.get("scale", ledger.get("scale")))


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    baseline = load(sys.argv[1])
    candidate = load(sys.argv[2])
    max_ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25

    for key in ("cmd", "seed", "scale"):
        if baseline.get(key) != candidate.get(key):
            sys.exit(
                f"ledgers are not comparable: {key} differs "
                f"({baseline.get(key)!r} vs {candidate.get(key)!r})"
            )

    base_cost = baseline["total_wall_s"] * max(baseline["threads"], 1)
    cand_cost = candidate["total_wall_s"] * max(candidate["threads"], 1)
    ratio = cand_cost / base_cost if base_cost > 0 else float("inf")

    print(
        f"baseline: {baseline['total_wall_s']:.1f}s x {baseline['threads']} threads"
        f" = {base_cost:.1f} thread-seconds"
    )
    print(
        f"candidate: {candidate['total_wall_s']:.1f}s x {candidate['threads']} threads"
        f" = {cand_cost:.1f} thread-seconds"
    )
    print(f"ratio: {ratio:.2f} (limit {max_ratio:.2f})")

    slowest = sorted(
        candidate["experiments"], key=lambda e: e["wall_s"], reverse=True
    )[:5]
    for e in slowest:
        print(
            f"  {e['name']}: {e['wall_s']:.1f}s, {e['packets']} packets"
            f" ({e['packets_per_s']:.0f}/s)"
        )

    failures = []
    if ratio > max_ratio:
        failures.append(f"wall cost {ratio:.2f} > {max_ratio:.2f}")

    base_by_key = {row_key(baseline, e): e for e in baseline["experiments"]}
    cand_by_key = {row_key(candidate, e): e for e in candidate["experiments"]}
    for key, base_row in base_by_key.items():
        name, scale = key
        if name not in PPS_GUARDED or key not in cand_by_key:
            continue
        base_pps = base_row["packets_per_s"] / max(baseline["threads"], 1)
        cand_pps = cand_by_key[key]["packets_per_s"] / max(candidate["threads"], 1)
        floor = PPS_FLOOR_FRACTION * base_pps
        status = "OK" if cand_pps >= floor else "FAIL"
        print(
            f"  {name} (scale {scale}) throughput: {cand_pps:,.0f} pkts/s/thread"
            f" (floor {floor:,.0f}, baseline {base_pps:,.0f}) {status}"
        )
        if cand_pps < floor:
            failures.append(
                f"{name} packets_per_s {cand_pps:,.0f} below floor {floor:,.0f}"
            )

    # Per-scale wall ceiling on scale-sweep rungs.
    for key, base_row in sorted(base_by_key.items(), key=lambda kv: str(kv[0])):
        name, scale = key
        if name not in SCALE_ROW_GUARDED or key not in cand_by_key:
            continue
        base_cost = base_row["wall_s"] * max(baseline["threads"], 1)
        cand_cost = cand_by_key[key]["wall_s"] * max(candidate["threads"], 1)
        row_ratio = cand_cost / base_cost if base_cost > 0 else float("inf")
        status = "OK" if row_ratio <= SCALE_ROW_MAX_RATIO else "FAIL"
        print(
            f"  {name} scale {scale}: {cand_cost:.1f} thread-seconds"
            f" (baseline {base_cost:.1f}, ratio {row_ratio:.2f},"
            f" limit {SCALE_ROW_MAX_RATIO:.2f}) {status}"
        )
        if row_ratio > SCALE_ROW_MAX_RATIO:
            failures.append(
                f"{name} at scale {scale} wall ratio"
                f" {row_ratio:.2f} > {SCALE_ROW_MAX_RATIO:.2f}"
            )

    if failures:
        sys.exit("perf smoke FAILED: " + "; ".join(failures))
    print("perf smoke OK")


if __name__ == "__main__":
    main()
