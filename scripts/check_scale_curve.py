#!/usr/bin/env python3
"""Compare a fresh scale-curve table against the committed baseline.

Usage: check_scale_curve.py BASELINE.txt CANDIDATE.txt

Both files are `vns-bench scale-curve` outputs. The world at every rung
is a pure function of (seed, scale) — thread count and machine speed must
not move it — so the deterministic columns (ases, prefixes, sessions,
conv_msgs, rounds) are compared EXACTLY, and every rung must report
`pass` from both verifier stages. The exact conv_msgs match doubles as
the message ceiling: convergence cost cannot creep past the committed
curve unnoticed. Wall clock and peak RSS are machine-dependent and are
not compared here (the CI job's timeout is the wall ceiling).
"""

import sys

# Deterministic columns, by header name.
EXACT = ("scale", "ases", "prefixes", "sessions", "conv_msgs", "rounds")


def parse(path):
    """Returns {scale: {column: value}} for the table body."""
    with open(path, encoding="utf-8") as f:
        lines = [l.rstrip("\n") for l in f if l.strip()]
    header = None
    rows = {}
    for line in lines:
        cols = line.split()
        if cols[0] == "scale":
            header = cols
            continue
        if header is None or not cols[0][0].isdigit():
            continue
        row = dict(zip(header, cols))
        rows[row["scale"]] = row
    if not rows:
        sys.exit(f"{path}: no scale-curve rows found")
    return rows


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = parse(sys.argv[1])
    candidate = parse(sys.argv[2])

    if set(baseline) != set(candidate):
        sys.exit(
            "scale rungs differ: baseline "
            f"{sorted(baseline)} vs candidate {sorted(candidate)}"
        )

    failures = []
    for scale in sorted(baseline, key=float):
        b, c = baseline[scale], candidate[scale]
        for col in EXACT:
            if b[col] != c[col]:
                failures.append(
                    f"scale {scale}: {col} {c[col]} != baseline {b[col]}"
                )
        if c.get("verdict") != "pass":
            failures.append(f"scale {scale}: verifier verdict {c.get('verdict')!r}")
        print(
            f"scale {scale}: {c['ases']} ASes, {c['prefixes']} prefixes, "
            f"{c['sessions']} sessions, {c['conv_msgs']} msgs / "
            f"{c['rounds']} rounds, {c.get('verdict')}"
        )

    if failures:
        sys.exit("scale curve FAILED: " + "; ".join(failures))
    print("scale curve OK: deterministic columns match the baseline exactly")


if __name__ == "__main__":
    main()
