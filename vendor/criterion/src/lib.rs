//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot reach crates.io, so the workspace vendors this
//! minimal harness with the same surface the benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`). Each benchmark runs a
//! short calibration burst, then a fixed measurement window, and prints the
//! mean time per iteration. No statistical analysis, warm-up phases, plots,
//! or command-line filtering.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count to fill roughly a
    /// tenth of a second of measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count that takes ~10ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || n >= 1 << 20 {
                // Measurement: scale to a ~100ms window.
                let per_iter = took.as_secs_f64() / n as f64;
                let m = ((0.1 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                let start = Instant::now();
                for _ in 0..m {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters = m;
                return;
            }
            n = n.saturating_mul(2);
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<D, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        D: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<D, F>(&mut self, id: D, mut f: F) -> &mut Self
    where
        D: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<40} (not measured)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
