//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors this minimal, dependency-free implementation of the parts of
//! `rand` 0.8 it actually uses: `SmallRng` (xoshiro256++), the `Rng` /
//! `RngCore` / `SeedableRng` traits, uniform range sampling for the
//! primitive numeric types, the `Standard` distribution, and
//! `seq::SliceRandom::shuffle`.
//!
//! Streams are fully deterministic: `SmallRng::seed_from_u64` expands the
//! seed with splitmix64 exactly like upstream, so seeded runs are
//! reproducible within this workspace (though the concrete draws differ
//! from upstream `rand`, which is fine — nothing here depends on upstream
//! bit-exactness, only on determinism).

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Deterministic stand-in for OS entropy seeding (offline build).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ core, matching
    /// the algorithm upstream `rand` 0.8 uses for `SmallRng` on 64-bit).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is an absorbing fixed point for xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// A distribution that can produce values of `T` from raw bits.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty => $m:ident),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$m() as $t
                }
            }
        )*};
    }
    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64, u128 => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Iterator over samples of a distribution (see [`crate::Rng::sample_iter`]).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }

    /// Uniform range sampling support for the primitive numeric types.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let u: f64 = Standard.sample(rng);
                    let v = low as f64 + u * (high as f64 - low as f64);
                    if v as $t >= high { low } else { v as $t }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    (low as f64 + u * (high as f64 - low as f64)) as $t
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    /// A range argument accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: distributions::SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        use distributions::Distribution;
        let u: f64 = distributions::Standard.sample(self);
        u < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Consumes the generator into an infinite iterator of samples.
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter {
            distr,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..16).map(|_| r.gen::<u64>()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = r.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = SmallRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
