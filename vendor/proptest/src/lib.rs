//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors this
//! minimal property-testing harness implementing the subset of the proptest
//! 1.x API the test suites use: the `proptest!` macro, `Strategy` with
//! `prop_map`, range/tuple/`Just`/`prop_oneof!`/`any` strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed derived from the test name (fully reproducible runs), there is no
//! shrinking (a failure reports the first counterexample as-is), and the
//! default case count is 64.

/// Deterministic PRNG handed to strategies while generating a test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for `(test name, case index)`.
    pub fn new(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Returns the next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (**self).gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).gen_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics if `alternatives` is empty.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { alternatives }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alternatives.len() as u64) as usize;
            self.alternatives[i].gen_value(rng)
        }
    }

    /// Numeric types that support uniform range strategies.
    pub trait RangeValue: Copy {
        /// Uniform sample from `[low, high)`.
        fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),* $(,)?) => {$(
            impl RangeValue for $t {
                fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "empty strategy range");
                    let span = (high as i128 - low as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $t
                }
                fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low <= high, "empty strategy range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (low as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_value_float {
        ($($t:ty),* $(,)?) => {$(
            impl RangeValue for $t {
                fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "empty strategy range");
                    let v = low as f64 + rng.next_f64() * (high as f64 - low as f64);
                    let v = v as $t;
                    if v >= high { low } else { v }
                }
                fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low <= high, "empty strategy range");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    (low as f64 + u * (high as f64 - low as f64)) as $t
                }
            }
        )*};
    }
    impl_range_value_float!(f32, f64);

    impl<T: RangeValue> Strategy for core::ops::Range<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: RangeValue> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// Types with a canonical "whole domain" strategy (used by [`prelude::any`]).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: strategy::Strategy<Value = Self>;
    /// A strategy over the whole domain of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyOf<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl strategy::Strategy for AnyOf<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl strategy::Strategy for AnyOf<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(core::marker::PhantomData)
    }
}

impl strategy::Strategy for AnyOf<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        // Finite floats over a wide magnitude range, both signs.
        let mag = (rng.next_f64() * 2.0 - 1.0) * 1.0e9;
        mag * rng.next_f64()
    }
}
impl Arbitrary for f64 {
    type Strategy = AnyOf<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::{RangeValue, Strategy};
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = usize::sample_half_open(self.len.start, self.len.end.max(self.len.start + 1), rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Test-runner configuration and driver used by the `proptest!` expansion.
pub mod test_runner {
    use super::TestRng;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Drives the per-case loop for one `proptest!` test function.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named test.
        pub fn new(config: Config, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u64 {
            u64::from(self.config.cases)
        }

        /// Deterministic RNG for one case.
        pub fn rng_for(&self, case: u64) -> TestRng {
            TestRng::new(self.name, case)
        }
    }
}

/// Everything the test suites import.
pub mod prelude {
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    pub use super::{Arbitrary, TestRng};

    /// A strategy over the whole domain of `T`.
    pub fn any<T: super::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Namespace mirror of upstream's `prop::` module.
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::collection::vec;
        }
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically generated
/// cases. Supports an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut prop_rng = runner.rng_for(case);
                $(
                    let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut prop_rng);
                )+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(::std::boxed::Box::new($alt) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body (reports the counterexample).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), lhs, rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a), stringify!($b), lhs
            ));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..17, f in -1.0f64..1.0, k in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(k <= 4);
        }

        #[test]
        fn tuples_and_map(p in (0u8..=32, any::<u32>()).prop_map(|(l, a)| (l, a))) {
            prop_assert!(p.0 <= 32);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn oneof_covers_arms(c in prop_oneof![Just(1u8), Just(2u8), (5u8..7)]) {
            prop_assert!(c == 1 || c == 2 || c == 5 || c == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_applies(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
