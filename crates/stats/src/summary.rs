//! Streaming scalar summaries (count / mean / variance / extrema).

/// Incremental summary of a stream of `f64` observations.
///
/// Uses Welford's online algorithm so variance stays numerically stable over
/// the multi-million-sample probing campaigns without storing samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in. NaN observations are ignored (a lost probe
    /// has no RTT; callers record loss separately).
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary (parallel reduction of campaign shards).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of folded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0.0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn mean_and_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn nan_is_skipped() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(f64::NAN);
        s.add(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Summary = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a: Summary = (0..37).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Summary = (37..100).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_into_empty() {
        let mut a = Summary::new();
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }
}
