//! Statistics and result-presentation utilities shared by all `vns` crates.
//!
//! The experiment harnesses in `vns-bench` reduce raw measurements into the
//! same summaries the paper reports: empirical CDFs and CCDFs (Figs 3, 6, 9),
//! per-bucket averages (Fig 11, Table 1), hour-of-day histograms (Fig 12) and
//! plain-text tables. This crate keeps those reductions small, allocation-
//! light and independent of any plotting backend: every figure is emitted as
//! a printable series of `(x, y)` rows so results can be diffed and re-plotted
//! externally.
//!
//! Everything here is deterministic: no interior RNG, no wall-clock.

pub mod cdf;
pub mod histogram;
pub mod quantile;
pub mod series;
pub mod summary;
pub mod table;

pub use cdf::{Ccdf, Cdf};
pub use histogram::Histogram;
pub use quantile::QuantileSketch;
pub use series::{Figure, Series};
pub use summary::Summary;
pub use table::{pct, Table};
