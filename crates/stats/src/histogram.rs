//! Fixed-bin histograms (hour-of-day loss frequencies, Fig 12; slot counts,
//! Fig 10).

/// A histogram over `bins` equal-width bins spanning `[lo, hi)`.
///
/// Out-of-range observations clamp into the first/last bin so campaign
/// outliers remain visible instead of silently vanishing.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Convenience: 24 hour-of-day bins.
    pub fn hourly() -> Self {
        Self::new(0.0, 24.0, 24)
    }

    /// Index of the bin `x` falls into (clamped to range).
    fn bin_of(&self, x: f64) -> usize {
        let n = self.counts.len();
        if x < self.lo {
            return 0;
        }
        let w = (self.hi - self.lo) / n as f64;
        (((x - self.lo) / w) as usize).min(n - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let b = self.bin_of(x);
        self.counts[b] += 1;
    }

    /// Records `n` observations at once.
    pub fn record_n(&mut self, x: f64, n: u64) {
        let b = self.bin_of(x);
        self.counts[b] += n;
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bin centre, count)` rows for printing.
    pub fn rows(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram lo mismatch");
        assert_eq!(self.hi, other.hi, "histogram hi mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-1.0); // clamps to bin 0
        h.record(0.0);
        h.record(9.99);
        h.record(10.0); // clamps to last bin
        h.record(100.0); // clamps to last bin
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(4), 3);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn hourly_layout() {
        let mut h = Histogram::hourly();
        h.record(0.5);
        h.record(23.5);
        h.record_n(12.1, 7);
        assert_eq!(h.bins(), 24);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(23), 1);
        assert_eq!(h.count(12), 7);
        let rows = h.rows();
        assert!((rows[0].0 - 0.5).abs() < 1e-12);
        assert!((rows[23].0 - 23.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let mut b = Histogram::new(0.0, 1.0, 2);
        a.record(0.1);
        b.record(0.1);
        b.record(0.9);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        let b = Histogram::new(0.0, 1.0, 3);
        a.merge(&b);
    }
}
