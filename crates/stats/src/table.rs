//! Plain-text table rendering (Table 1 and campaign summaries).

use std::fmt;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; shorter rows are padded with empty cells, longer rows
    /// are rejected.
    ///
    /// # Panics
    /// Panics if the row has more cells than the header has columns.
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        assert!(
            cells.len() <= self.header.len(),
            "row has more cells than table columns"
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, col).
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                if i + 1 == cols {
                    writeln!(f, "{cell:<width$}")?;
                } else {
                    write!(f, "{cell:<width$}  ")?;
                }
            }
            Ok(())
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `0.0153` →
/// `"1.53%"`.
pub fn pct(frac: f64) -> String {
    format!("{:.2}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["Region", "LTP", "STP"]);
        t.push(["AP", "0.45%", "1.30%"]);
        t.push(["EU", "0.11%", "0.62%"]);
        let s = t.to_string();
        assert!(s.contains("Region"));
        assert!(s.contains("0.45%"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only"]);
        assert_eq!(t.cell(0, 1), Some(""));
    }

    #[test]
    #[should_panic(expected = "more cells")]
    fn rejects_long_rows() {
        let mut t = Table::new(["a"]);
        t.push(["x", "y"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0153), "1.53%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
