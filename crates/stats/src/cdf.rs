//! Empirical cumulative distribution functions.
//!
//! [`Cdf`] is the classic empirical CDF used for the paper's Figs 3 and 6;
//! [`Ccdf`] is its complement, used for the loss-percentage plots in Fig 9
//! where the interesting mass is in the tail.

/// An empirical CDF over a set of `f64` samples.
///
/// Construction sorts a copy of the samples once; all queries are then
/// `O(log n)`. NaN samples are rejected at construction to keep the ordering
/// total.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples.
    ///
    /// # Panics
    /// Panics if any sample is NaN (an empirical distribution over NaN is
    /// meaningless and would poison every quantile query).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`; 0.0 for an empty CDF.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`0.0..=1.0`) using nearest-rank.
    ///
    /// Returns `None` for an empty CDF.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[rank.min(self.sorted.len() - 1)])
    }

    /// Median, i.e. the 0.5-quantile.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluates the CDF on `points`, returning `(x, F(x))` rows ready for
    /// printing as a figure series.
    pub fn sample_at(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.at(x))).collect()
    }

    /// Evaluates the CDF on `n` evenly spaced points spanning the sample
    /// range (plus the exact endpoints).
    pub fn sample_even(&self, n: usize) -> Vec<(f64, f64)> {
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        if n < 2 || (hi - lo).abs() < f64::EPSILON {
            return vec![(lo, self.at(lo)), (hi, 1.0)];
        }
        let step = (hi - lo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Full step-function representation: one `(x, F(x))` row per distinct
    /// sample value.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let n = self.sorted.len() as f64;
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < self.sorted.len() && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n));
            i = j;
        }
        out
    }

    /// Borrow of the sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

/// An empirical complementary CDF (`P[X > x]`), the tail view used for the
/// paper's loss plots.
#[derive(Debug, Clone)]
pub struct Ccdf {
    cdf: Cdf,
}

impl Ccdf {
    /// Builds a CCDF from samples. Panics on NaN (see [`Cdf::new`]).
    pub fn new(samples: Vec<f64>) -> Self {
        Self {
            cdf: Cdf::new(samples),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the CCDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.cdf.is_empty() {
            return 0.0;
        }
        1.0 - self.cdf.at(x)
    }

    /// Evaluates the CCDF at logarithmically spaced points between `lo` and
    /// `hi` (both > 0), `n` points inclusive — Fig 9 is log-log.
    pub fn sample_log(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo, "log sampling needs 0 < lo < hi");
        if n < 2 {
            return vec![(lo, self.at(lo))];
        }
        let llo = lo.ln();
        let lhi = hi.ln();
        let step = (lhi - llo) / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = (llo + step * i as f64).exp();
                (x, self.at(x))
            })
            .collect()
    }

    /// Access to the underlying CDF.
    pub fn cdf(&self) -> &Cdf {
        &self.cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_is_zero_everywhere() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.at(0.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert!(c.sample_even(10).is_empty());
    }

    #[test]
    fn single_sample() {
        let c = Cdf::new(vec![3.0]);
        assert_eq!(c.at(2.9), 0.0);
        assert_eq!(c.at(3.0), 1.0);
        assert_eq!(c.median(), Some(3.0));
    }

    #[test]
    fn basic_fractions() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.5), 0.5);
        assert_eq!(c.at(4.0), 1.0);
        assert_eq!(c.at(9.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(c.quantile(0.0), Some(10.0));
        assert_eq!(c.quantile(0.2), Some(10.0));
        assert_eq!(c.quantile(0.5), Some(30.0));
        assert_eq!(c.quantile(0.9), Some(50.0));
        assert_eq!(c.quantile(1.0), Some(50.0));
    }

    #[test]
    fn steps_collapse_duplicates() {
        let c = Cdf::new(vec![1.0, 1.0, 2.0]);
        assert_eq!(c.steps(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let c = Ccdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((c.at(2.5) - 0.5).abs() < 1e-12);
        assert_eq!(c.at(4.0), 0.0);
        assert_eq!(c.at(0.0), 1.0);
    }

    #[test]
    fn ccdf_log_sampling_monotone_nonincreasing() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
        let c = Ccdf::new(samples);
        let pts = c.sample_log(0.01, 20.0, 40);
        assert_eq!(pts.len(), 40);
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "CCDF must be non-increasing");
            assert!(w[0].0 < w[1].0, "x must be increasing");
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::new(vec![1.0, f64::NAN]);
    }
}
