//! Named `(x, y)` series — the printable unit every figure harness emits.

use std::fmt;

/// A named series of `(x, y)` points, e.g. one curve of a CDF figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label as it appears in the figure legend (e.g. `"EU"`, `"T-AP"`).
    pub name: String,
    /// The data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Linear interpolation of y at `x`; clamps outside the x range.
    /// Returns `None` for an empty series.
    pub fn interpolate(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        let (first, last) = (pts.first()?, pts.last()?);
        if x <= first.0 {
            return Some(first.1);
        }
        if x >= last.0 {
            return Some(last.1);
        }
        let i = pts.partition_point(|p| p.0 < x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        if (x1 - x0).abs() < f64::EPSILON {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# series: {}", self.name)?;
        for (x, y) in &self.points {
            writeln!(f, "{x:.6}\t{y:.6}")?;
        }
        Ok(())
    }
}

/// A figure: a caption plus one or more series, with axis labels.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure identifier, e.g. `"Fig 3 (left)"`.
    pub id: String,
    /// Human caption.
    pub caption: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        caption: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            id: id.into(),
            caption: caption.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Finds a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.caption)?;
        writeln!(f, "# x: {}   y: {}", self.x_label, self.y_label)?;
        for s in &self.series {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_and_clamping() {
        let s = Series::new("t", vec![(0.0, 0.0), (10.0, 100.0)]);
        assert_eq!(s.interpolate(-5.0), Some(0.0));
        assert_eq!(s.interpolate(5.0), Some(50.0));
        assert_eq!(s.interpolate(20.0), Some(100.0));
    }

    #[test]
    fn empty_series_interpolation() {
        let s = Series::new("t", vec![]);
        assert_eq!(s.interpolate(1.0), None);
    }

    #[test]
    fn display_contains_points() {
        let s = Series::new("EU", vec![(1.0, 0.5)]);
        let out = s.to_string();
        assert!(out.contains("# series: EU"));
        assert!(out.contains("1.000000\t0.500000"));
    }

    #[test]
    fn figure_lookup() {
        let mut fig = Figure::new("Fig X", "cap", "x", "y");
        fig.push(Series::new("a", vec![(0.0, 0.0)]));
        assert!(fig.series_named("a").is_some());
        assert!(fig.series_named("b").is_none());
        assert!(fig.to_string().contains("Fig X"));
    }
}
