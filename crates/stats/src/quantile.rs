//! Streaming percentiles for windowed service telemetry.
//!
//! A live service plane reports p50/p99/p999 per telemetry window over
//! millions of observations; holding every sample for an exact quantile
//! is out of the question. [`QuantileSketch`] is a fixed-bin sketch:
//! constant memory, mergeable across parallel shards (associative and
//! commutative, so `Par` fan-out folds deterministically), and exact to
//! within one bin width.
//!
//! Fixed bins were chosen over the P² algorithm deliberately: P² is
//! order-sensitive (the same multiset in a different arrival order yields
//! different markers), which would couple artefacts to scheduling. Counting
//! into bins is order-free, so a merged sketch is byte-identical no matter
//! how the work was sharded.

/// A mergeable streaming quantile sketch over `bins` equal-width bins
/// spanning `[lo, hi)`.
///
/// Out-of-range observations clamp into the edge bins (like
/// [`crate::Histogram`]); the true min/max are tracked exactly so the
/// extreme quantiles never report a value outside the observed range.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Creates a sketch with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "sketch needs at least one bin");
        assert!(hi > lo, "sketch range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bin width.
    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n = self.counts.len();
        let b = if x < self.lo {
            0
        } else {
            (((x - self.lo) / self.width()) as usize).min(n - 1)
        };
        self.counts[b] += 1;
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), or `None` when empty.
    ///
    /// Defined as the smallest value `v` with `CDF(v) >= q`, located to its
    /// bin and linearly interpolated by rank within it, then clamped to the
    /// observed `[min, max]` so edge quantiles are exact.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // Target rank in [1, total]: the ceil makes quantile(0.5) of two
        // samples pick the first, matching the "smallest v with CDF >= q"
        // definition.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let into = (rank - seen) as f64 / c as f64;
                let v = self.lo + self.width() * (i as f64 + into);
                return Some(v.clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Merges another sketch with identical geometry. Associative and
    /// commutative, so parallel shards can fold in any grouping and yield
    /// the same result.
    ///
    /// # Panics
    /// Panics when geometries differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.lo, other.lo, "sketch lo mismatch");
        assert_eq!(self.hi, other.hi, "sketch hi mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_none() {
        let s = QuantileSketch::new(0.0, 1.0, 10);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut s = QuantileSketch::new(0.0, 1000.0, 1000);
        for i in 0..10_000 {
            s.record(i as f64 / 10.0); // 0.0, 0.1, ... 999.9
        }
        let p50 = s.p50().unwrap();
        let p99 = s.p99().unwrap();
        let p999 = s.p999().unwrap();
        assert!((p50 - 500.0).abs() < 2.0, "p50 {p50}");
        assert!((p99 - 990.0).abs() < 2.0, "p99 {p99}");
        assert!((p999 - 999.0).abs() < 2.0, "p999 {p999}");
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(999.9));
    }

    #[test]
    fn edge_quantiles_clamp_to_observed_range() {
        let mut s = QuantileSketch::new(0.0, 100.0, 4);
        s.record(10.0);
        s.record(20.0);
        s.record(90.0);
        assert_eq!(s.quantile(0.0), Some(10.0));
        assert_eq!(s.quantile(1.0), Some(90.0));
        // Out-of-range values clamp into edge bins but min/max stay exact.
        s.record(-5.0);
        s.record(250.0);
        assert_eq!(s.quantile(0.0), Some(-5.0));
        assert_eq!(s.quantile(1.0), Some(250.0));
    }

    #[test]
    fn non_finite_ignored() {
        let mut s = QuantileSketch::new(0.0, 1.0, 4);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_is_order_free() {
        let mut shards: Vec<QuantileSketch> = (0..4)
            .map(|k| {
                let mut s = QuantileSketch::new(0.0, 100.0, 50);
                for i in 0..250 {
                    s.record(((i * 4 + k) % 100) as f64);
                }
                s
            })
            .collect();
        let mut fwd = QuantileSketch::new(0.0, 100.0, 50);
        for s in &shards {
            fwd.merge(s);
        }
        shards.reverse();
        let mut rev = QuantileSketch::new(0.0, 100.0, 50);
        for s in &shards {
            rev.merge(s);
        }
        assert_eq!(fwd.count(), rev.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = QuantileSketch::new(0.0, 1.0, 2);
        let b = QuantileSketch::new(0.0, 1.0, 3);
        a.merge(&b);
    }
}
