//! Property tests: CDF axioms, quantile bounds, summary merging and
//! histogram conservation.

use proptest::prelude::*;
use vns_stats::{Ccdf, Cdf, Histogram, Summary};

fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, 1..300)
}

proptest! {
    #[test]
    fn cdf_monotone_and_bounded(xs in samples(), probes in prop::collection::vec(-2.0e6f64..2.0e6, 1..50)) {
        let cdf = Cdf::new(xs);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for x in sorted {
            let f = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= last - 1e-12);
            last = f;
        }
        prop_assert_eq!(cdf.at(f64::INFINITY), 1.0);
    }

    #[test]
    fn quantiles_within_sample_range(xs in samples(), q in 0.0f64..=1.0) {
        let cdf = Cdf::new(xs.clone());
        let v = cdf.quantile(q).unwrap();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
        prop_assert!(xs.contains(&v), "nearest-rank returns a sample");
    }

    #[test]
    fn ccdf_complements_cdf(xs in samples(), probe in -2.0e6f64..2.0e6) {
        let cdf = Cdf::new(xs.clone());
        let ccdf = Ccdf::new(xs);
        prop_assert!((cdf.at(probe) + ccdf.at(probe) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_sequential(xs in samples(), split in 0usize..300) {
        let k = split.min(xs.len());
        let seq: Summary = xs.iter().copied().collect();
        let mut a: Summary = xs[..k].iter().copied().collect();
        let b: Summary = xs[k..].iter().copied().collect();
        a.merge(&b);
        prop_assert_eq!(a.count(), seq.count());
        let scale = seq.mean().abs().max(1.0);
        prop_assert!((a.mean() - seq.mean()).abs() / scale < 1e-9);
        let vscale = seq.variance().max(1.0);
        prop_assert!((a.variance() - seq.variance()).abs() / vscale < 1e-6);
    }

    #[test]
    fn histogram_conserves_count(xs in prop::collection::vec(-10.0f64..40.0, 0..200)) {
        let mut h = Histogram::hourly();
        for x in &xs {
            h.record(*x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let from_rows: u64 = h.rows().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(from_rows, xs.len() as u64);
    }
}
