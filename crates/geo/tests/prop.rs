//! Property tests: the great-circle distance is a metric on the sphere and
//! coordinate normalisation is idempotent.

use proptest::prelude::*;
use vns_geo::{great_circle_km, GeoPoint, EARTH_RADIUS_KM};

fn point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_nonnegative_and_bounded(a in point(), b in point()) {
        let d = great_circle_km(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1.0);
    }

    #[test]
    fn distance_symmetric(a in point(), b in point()) {
        let ab = great_circle_km(a, b);
        let ba = great_circle_km(b, a);
        prop_assert!((ab - ba).abs() < 1e-6, "ab {ab} ba {ba}");
    }

    #[test]
    fn identity_of_indiscernibles(a in point()) {
        prop_assert_eq!(great_circle_km(a, a), 0.0);
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        let ab = great_circle_km(a, b);
        let bc = great_circle_km(b, c);
        let ac = great_circle_km(a, c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac {ac} > ab {ab} + bc {bc}");
    }

    #[test]
    fn normalisation_idempotent(lat in -500.0f64..500.0, lon in -1000.0f64..1000.0) {
        let p = GeoPoint::new(lat, lon);
        let q = GeoPoint::new(p.lat_deg, p.lon_deg);
        prop_assert!((p.lat_deg - q.lat_deg).abs() < 1e-12);
        prop_assert!((p.lon_deg - q.lon_deg).abs() < 1e-12);
        prop_assert!(p.lat_deg.abs() <= 90.0);
        prop_assert!(p.lon_deg > -180.0 - 1e-12 && p.lon_deg <= 180.0 + 1e-12);
    }

    #[test]
    fn utc_offset_tracks_longitude(lon in -180.0f64..180.0) {
        let p = GeoPoint::new(0.0, lon);
        prop_assert!((p.utc_offset_hours() - lon / 15.0).abs() < 1e-9);
    }
}
