//! Positions on the sphere and great-circle geometry.
//!
//! The paper (Sec 3.2) computes "the shortest distance between two points
//! that lie on a surface of a sphere, often referred to as the great-circle
//! distance" — this module implements it with the haversine formula, which
//! is numerically stable for the short intra-city distances the topology
//! generator also needs.

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A point on the Earth's surface, in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north, `-90.0..=90.0`.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east, `-180.0..=180.0`.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point, normalising longitude into `(-180, 180]` and
    /// clamping latitude into `[-90, 90]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = lon_deg % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon <= -180.0 {
            lon += 360.0;
        }
        Self {
            lat_deg: lat,
            lon_deg: lon,
        }
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        great_circle_km(*self, *other)
    }

    /// Local timezone offset from UTC in hours, approximated from longitude
    /// (15° per hour). The diurnal congestion models need local wall-clock
    /// time at arbitrary points; solar time is accurate enough for
    /// "business-hours vs night" effects.
    pub fn utc_offset_hours(&self) -> f64 {
        self.lon_deg / 15.0
    }
}

/// Great-circle distance between two points in kilometres (haversine).
pub fn great_circle_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat_deg.to_radians();
    let lat2 = b.lat_deg.to_radians();
    let dlat = (b.lat_deg - a.lat_deg).to_radians();
    let dlon = (b.lon_deg - a.lon_deg).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Initial bearing from `a` to `b` in degrees clockwise from north,
/// `0.0..360.0`. Used only for topology debugging/visualisation.
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat_deg.to_radians();
    let lat2 = b.lat_deg.to_radians();
    let dlon = (b.lon_deg - a.lon_deg).to_radians();
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    (y.atan2(x).to_degrees() + 360.0) % 360.0
}

/// Speed of light in fibre, km per millisecond (~2/3 c). Propagation delay
/// of a link is `distance / FIBRE_KM_PER_MS` milliseconds.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// One-way propagation delay in milliseconds for a straight fibre run of
/// `km` kilometres.
pub fn propagation_delay_ms(km: f64) -> f64 {
    km / FIBRE_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(52.37, 4.9);
        assert_eq!(great_circle_km(p, p), 0.0);
    }

    #[test]
    fn known_city_distances() {
        // Amsterdam <-> London is ~358 km.
        let ams = GeoPoint::new(52.3676, 4.9041);
        let lon = GeoPoint::new(51.5074, -0.1278);
        assert!(close(great_circle_km(ams, lon), 358.0, 10.0));
        // Singapore <-> Sydney ~6300 km.
        let sin = GeoPoint::new(1.3521, 103.8198);
        let syd = GeoPoint::new(-33.8688, 151.2093);
        assert!(close(great_circle_km(sin, syd), 6300.0, 100.0));
    }

    #[test]
    fn symmetry() {
        let a = GeoPoint::new(37.33, -121.89);
        let b = GeoPoint::new(1.35, 103.82);
        assert!(close(great_circle_km(a, b), great_circle_km(b, a), 1e-9));
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!(close(great_circle_km(a, b), half, 1.0));
    }

    #[test]
    fn longitude_normalisation() {
        let p = GeoPoint::new(0.0, 190.0);
        assert!(close(p.lon_deg, -170.0, 1e-12));
        let q = GeoPoint::new(0.0, -190.0);
        assert!(close(q.lon_deg, 170.0, 1e-12));
        let r = GeoPoint::new(95.0, 0.0);
        assert_eq!(r.lat_deg, 90.0);
    }

    #[test]
    fn bearing_east_along_equator() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 10.0);
        assert!(close(initial_bearing_deg(a, b), 90.0, 1e-6));
        assert!(close(initial_bearing_deg(b, a), 270.0, 1e-6));
    }

    #[test]
    fn utc_offsets() {
        assert!(close(
            GeoPoint::new(0.0, 0.0).utc_offset_hours(),
            0.0,
            1e-12
        ));
        assert!(close(
            GeoPoint::new(1.35, 103.82).utc_offset_hours(),
            6.92,
            0.01
        ));
        assert!(close(
            GeoPoint::new(37.33, -121.89).utc_offset_hours(),
            -8.13,
            0.01
        ));
    }

    #[test]
    fn propagation_delay() {
        // 200 km of fibre is 1 ms one way.
        assert!(close(propagation_delay_ms(200.0), 1.0, 1e-12));
        // Transatlantic ~6000 km ≈ 30 ms one way.
        assert!(close(propagation_delay_ms(6000.0), 30.0, 1e-12));
    }
}
