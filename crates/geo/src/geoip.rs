//! A MaxMind-style GeoIP database with injectable error models.
//!
//! The paper resolves destination-prefix locations through a commercial
//! GeoIP database (MaxMind) queried by the modified route reflector. Prior
//! work it cites ([Poese et al. 2011]) found such databases locate ~60% of
//! prefixes within 100 km and are country-accurate but city-sloppy; the
//! paper's own Fig 3 scatter shows two outlier clusters caused by concrete
//! database pathologies:
//!
//! * **centroid collapse** — all Russian prefixes geolocated to a single
//!   point in the centre of Russia, making them look closer to Asian PoPs
//!   than European ones;
//! * **stale WHOIS** — Indian prefixes still geolocated in Canada because
//!   their former Canadian owner was acquired by an Indian company.
//!
//! [`GeoIpDb`] stores, per key, the location the database *reports*; the
//! error models rewrite reported locations at build time so the routing
//! layer sees exactly the kind of wrong answers a real deployment would.
//!
//! The database is generic over its key type: `vns-bgp` keys it by prefix,
//! unit tests key it by integers.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cities::{cities_in_region, city, country_centroid};
use crate::coords::GeoPoint;
use crate::region::Region;

/// Lookup failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoIpError {
    /// The key is not present in the database. Real GeoIP databases have
    /// incomplete coverage; the route reflector falls back to the default
    /// LOCAL_PREF in that case.
    Unknown,
}

impl std::fmt::Display for GeoIpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoIpError::Unknown => f.write_str("prefix not in GeoIP database"),
        }
    }
}

impl std::error::Error for GeoIpError {}

/// One database record.
#[derive(Debug, Clone)]
struct Record {
    /// Ground-truth location (what the prefix's hosts actually are).
    truth: GeoPoint,
    /// Location the database reports (= truth unless an error model
    /// rewrote it).
    reported: GeoPoint,
    /// ISO country code of the prefix's registrant.
    country: String,
}

/// Error models that can be applied to a freshly built database.
#[derive(Debug, Clone)]
pub enum GeoIpErrorModel {
    /// Map every prefix registered in `country` to that country's city
    /// centroid (the "centre of Russia" pathology).
    CentroidCollapse {
        /// ISO country code to collapse.
        country: String,
    },
    /// Relocate every prefix registered in `country` to `reported_at`
    /// (the "Indian prefixes in Canada" pathology). `fraction` in `0..=1`
    /// selects how much of the country's address space is affected.
    StaleWhois {
        /// ISO country code whose prefixes are mislocated.
        country: String,
        /// Where the database (wrongly) reports them.
        reported_at: GeoPoint,
        /// Fraction of that country's prefixes affected.
        fraction: f64,
    },
    /// City-level imprecision: displace every reported location by a
    /// uniformly random offset of up to `max_km` kilometres. Models the
    /// "country right, city sloppy" behaviour of commercial databases.
    CityJitter {
        /// Maximum displacement in kilometres.
        max_km: f64,
    },
    /// Adversarial poisoning: relocate every prefix registered in a
    /// country of region `from` to a (deterministically) random city of
    /// region `to`. Unlike the benign models above this is not an
    /// accuracy artefact — it is what a compromised GeoIP feed looks
    /// like when an attacker wants a whole region's traffic routed to
    /// the wrong continent.
    RegionSwap {
        /// Region whose prefixes are rewritten.
        from: Region,
        /// Region whose cities the poisoned feed reports instead.
        to: Region,
    },
    /// Adversarial poisoning: drag every reported location `weight`
    /// (`0..=1`) of the way toward `target`. A targeted variant of
    /// jitter — instead of random noise, the attacker biases the whole
    /// feed toward a point of their choosing (e.g. a PoP they can tap),
    /// which systematically skews geo-derived LOCAL_PREFs.
    AdversarialShift {
        /// The point the poisoned feed pulls locations toward.
        target: GeoPoint,
        /// How far toward `target` each record moves (0 = no-op,
        /// 1 = every record reports exactly `target`).
        weight: f64,
    },
}

/// The GeoIP database.
#[derive(Debug, Clone)]
pub struct GeoIpDb<K: Copy + Ord> {
    records: BTreeMap<K, Record>,
}

impl<K: Copy + Ord> Default for GeoIpDb<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Copy + Ord> GeoIpDb<K> {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self {
            records: BTreeMap::new(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the database has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts (or replaces) a record; the reported location starts equal to
    /// the truth until an error model rewrites it.
    pub fn insert(&mut self, key: K, truth: GeoPoint, country: &str) {
        self.records.insert(
            key,
            Record {
                truth,
                reported: truth,
                country: country.to_string(),
            },
        );
    }

    /// The location the database reports for `key` — what the route
    /// reflector sees.
    pub fn lookup(&self, key: K) -> Result<GeoPoint, GeoIpError> {
        self.records
            .get(&key)
            .map(|r| r.reported)
            .ok_or(GeoIpError::Unknown)
    }

    /// Ground-truth location (for evaluation only; a real operator cannot
    /// call this).
    pub fn truth(&self, key: K) -> Result<GeoPoint, GeoIpError> {
        self.records
            .get(&key)
            .map(|r| r.truth)
            .ok_or(GeoIpError::Unknown)
    }

    /// Registered country for `key`.
    pub fn country(&self, key: K) -> Result<&str, GeoIpError> {
        self.records
            .get(&key)
            .map(|r| r.country.as_str())
            .ok_or(GeoIpError::Unknown)
    }

    /// Reported-vs-truth displacement in km (0 when no error model touched
    /// the record).
    pub fn error_km(&self, key: K) -> Result<f64, GeoIpError> {
        self.records
            .get(&key)
            .map(|r| r.truth.distance_km(&r.reported))
            .ok_or(GeoIpError::Unknown)
    }

    /// Applies an error model to the whole database. Deterministic given
    /// `seed`: the per-record randomness is consumed in key order, which
    /// the ordered map makes stable by construction.
    pub fn apply_error_model(&mut self, model: &GeoIpErrorModel, seed: u64) {
        let keys: Vec<K> = self.records.keys().copied().collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        match model {
            GeoIpErrorModel::CentroidCollapse { country } => {
                let Some(centroid) = country_centroid(country) else {
                    return;
                };
                for k in keys {
                    let rec = self.records.get_mut(&k).expect("key from map");
                    if rec.country == *country {
                        rec.reported = centroid;
                    }
                }
            }
            GeoIpErrorModel::StaleWhois {
                country,
                reported_at,
                fraction,
            } => {
                for k in keys {
                    let hit = rng.gen_bool(fraction.clamp(0.0, 1.0));
                    let rec = self.records.get_mut(&k).expect("key from map");
                    if rec.country == *country && hit {
                        rec.reported = *reported_at;
                    }
                }
            }
            GeoIpErrorModel::CityJitter { max_km } => {
                for k in keys {
                    let dist: f64 = rng.gen_range(0.0..*max_km);
                    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                    let rec = self.records.get_mut(&k).expect("key from map");
                    // Small-displacement approximation: convert km to degrees
                    // locally. Adequate for <=200 km jitters away from poles.
                    let dlat = dist * angle.cos() / 111.0;
                    let coslat = rec.reported.lat_deg.to_radians().cos().max(0.05);
                    let dlon = dist * angle.sin() / (111.0 * coslat);
                    rec.reported =
                        GeoPoint::new(rec.reported.lat_deg + dlat, rec.reported.lon_deg + dlon);
                }
            }
            GeoIpErrorModel::RegionSwap { from, to } => {
                let countries: std::collections::BTreeSet<&str> = cities_in_region(*from)
                    .into_iter()
                    .map(|c| city(c).country)
                    .collect();
                let targets = cities_in_region(*to);
                if targets.is_empty() {
                    return;
                }
                for k in keys {
                    // Consume randomness for every key so hits don't shift
                    // when unrelated records are added.
                    let pick = targets[rng.gen_range(0..targets.len())];
                    let rec = self.records.get_mut(&k).expect("key from map");
                    if countries.contains(rec.country.as_str()) {
                        rec.reported = city(pick).location;
                    }
                }
            }
            GeoIpErrorModel::AdversarialShift { target, weight } => {
                let w = weight.clamp(0.0, 1.0);
                for k in keys {
                    let rec = self.records.get_mut(&k).expect("key from map");
                    rec.reported = GeoPoint::new(
                        rec.reported.lat_deg + (target.lat_deg - rec.reported.lat_deg) * w,
                        rec.reported.lon_deg + (target.lon_deg - rec.reported.lon_deg) * w,
                    );
                }
            }
        }
    }

    /// Iterates over `(key, reported location)` pairs in key order.
    pub fn iter_reported(&self) -> impl Iterator<Item = (K, GeoPoint)> + '_ {
        self.records.iter().map(|(k, r)| (*k, r.reported))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::{city_by_name, country_centroid};

    fn moscow() -> GeoPoint {
        city_by_name("Moscow").unwrap().1.location
    }

    #[test]
    fn lookup_roundtrip_and_unknown() {
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        db.insert(1, moscow(), "RU");
        assert_eq!(db.lookup(1).unwrap(), moscow());
        assert_eq!(db.country(1).unwrap(), "RU");
        assert_eq!(db.lookup(2), Err(GeoIpError::Unknown));
        assert_eq!(db.error_km(1).unwrap(), 0.0);
    }

    #[test]
    fn centroid_collapse_moves_russian_prefixes() {
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        db.insert(1, moscow(), "RU");
        db.insert(2, city_by_name("Amsterdam").unwrap().1.location, "NL");
        db.apply_error_model(
            &GeoIpErrorModel::CentroidCollapse {
                country: "RU".into(),
            },
            7,
        );
        let centroid = country_centroid("RU").unwrap();
        assert_eq!(db.lookup(1).unwrap(), centroid);
        assert!(
            db.error_km(1).unwrap() > 500.0,
            "Moscow is far from centroid"
        );
        // Dutch prefix untouched.
        assert_eq!(db.error_km(2).unwrap(), 0.0);
    }

    #[test]
    fn stale_whois_relocates_fraction() {
        let mumbai = city_by_name("Mumbai").unwrap().1.location;
        let toronto = city_by_name("Toronto").unwrap().1.location;
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        for k in 0..200 {
            db.insert(k, mumbai, "IN");
        }
        db.apply_error_model(
            &GeoIpErrorModel::StaleWhois {
                country: "IN".into(),
                reported_at: toronto,
                fraction: 0.5,
            },
            42,
        );
        let moved = (0..200)
            .filter(|&k| db.lookup(k).unwrap() == toronto)
            .count();
        assert!(
            (60..=140).contains(&moved),
            "about half should move, moved {moved}"
        );
    }

    #[test]
    fn city_jitter_bounded() {
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        for k in 0..100 {
            db.insert(k, moscow(), "RU");
        }
        db.apply_error_model(&GeoIpErrorModel::CityJitter { max_km: 100.0 }, 3);
        for k in 0..100 {
            let err = db.error_km(k).unwrap();
            // The planar approximation can overshoot slightly at high
            // latitude; allow 15% slack.
            assert!(err <= 115.0, "jitter must stay bounded, got {err}");
        }
        let mean: f64 = (0..100).map(|k| db.error_km(k).unwrap()).sum::<f64>() / 100.0;
        assert!(mean > 10.0, "jitter should actually displace records");
    }

    #[test]
    fn region_swap_relocates_only_the_target_region() {
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        db.insert(1, city_by_name("Amsterdam").unwrap().1.location, "NL");
        db.insert(2, moscow(), "RU");
        db.insert(3, city_by_name("Mumbai").unwrap().1.location, "IN");
        db.apply_error_model(
            &GeoIpErrorModel::RegionSwap {
                from: crate::Region::Europe,
                to: crate::Region::AsiaPacific,
            },
            11,
        );
        // Both European prefixes land on Asia-Pacific cities, thousands of
        // kilometres from home.
        assert!(db.error_km(1).unwrap() > 2000.0);
        assert!(db.error_km(2).unwrap() > 1000.0);
        // The Indian prefix is untouched.
        assert_eq!(db.error_km(3).unwrap(), 0.0);
    }

    #[test]
    fn adversarial_shift_drags_toward_target() {
        let toronto = city_by_name("Toronto").unwrap().1.location;
        let mut db: GeoIpDb<u32> = GeoIpDb::new();
        db.insert(1, moscow(), "RU");
        db.apply_error_model(
            &GeoIpErrorModel::AdversarialShift {
                target: toronto,
                weight: 1.0,
            },
            5,
        );
        let got = db.lookup(1).unwrap();
        assert!(got.distance_km(&toronto) < 1.0, "weight 1 pins to target");

        let mut half: GeoIpDb<u32> = GeoIpDb::new();
        half.insert(1, moscow(), "RU");
        half.apply_error_model(
            &GeoIpErrorModel::AdversarialShift {
                target: toronto,
                weight: 0.5,
            },
            5,
        );
        let part = half.error_km(1).unwrap();
        assert!(part > 500.0, "half weight still displaces, got {part}");
        assert!(
            part < db.error_km(1).unwrap() + 1.0 && part < moscow().distance_km(&toronto),
            "half weight moves less than the full span"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut db: GeoIpDb<u32> = GeoIpDb::new();
            for k in 0..50 {
                db.insert(k, moscow(), "RU");
            }
            db.apply_error_model(&GeoIpErrorModel::CityJitter { max_km: 50.0 }, 9);
            (0..50).map(|k| db.lookup(k).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(
            build()
                .iter()
                .map(|p| (p.lat_deg, p.lon_deg))
                .collect::<Vec<_>>(),
            build()
                .iter()
                .map(|p| (p.lat_deg, p.lon_deg))
                .collect::<Vec<_>>()
        );
    }
}
