//! Embedded world-city table.
//!
//! The topology generator places ASes, IXPs, prefixes and VNS PoPs in real
//! cities so that great-circle distances — and therefore propagation delays
//! and the geo-routing decisions built on them — are realistic. The table
//! covers every region the paper measures, with extra density in the three
//! regions hosting VNS PoPs (EU, NA, AP/OC) and the two countries whose
//! GeoIP pathologies the paper documents (Russia, India).

use crate::coords::GeoPoint;
use crate::region::Region;

/// Index into the global city table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CityId(pub u16);

/// A city entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// Short unique name (ASCII, no spaces).
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// World region.
    pub region: Region,
    /// Coordinates.
    pub location: GeoPoint,
    /// Whether a major Internet exchange is modelled here (candidate
    /// peering/IXP site for the topology generator).
    pub major_hub: bool,
}

macro_rules! c {
    ($name:expr, $cc:expr, $region:ident, $lat:expr, $lon:expr, $hub:expr) => {
        City {
            name: $name,
            country: $cc,
            region: Region::$region,
            location: GeoPoint {
                lat_deg: $lat,
                lon_deg: $lon,
            },
            major_hub: $hub,
        }
    };
}

/// The global city table. Order is stable; [`CityId`] indexes into it.
pub static CITIES: &[City] = &[
    // --- Europe ---
    c!("Amsterdam", "NL", Europe, 52.3676, 4.9041, true),
    c!("London", "GB", Europe, 51.5074, -0.1278, true),
    c!("Frankfurt", "DE", Europe, 50.1109, 8.6821, true),
    c!("Oslo", "NO", Europe, 59.9139, 10.7522, true),
    c!("Paris", "FR", Europe, 48.8566, 2.3522, true),
    c!("Stockholm", "SE", Europe, 59.3293, 18.0686, true),
    c!("Madrid", "ES", Europe, 40.4168, -3.7038, false),
    c!("Milan", "IT", Europe, 45.4642, 9.19, true),
    c!("Vienna", "AT", Europe, 48.2082, 16.3738, true),
    c!("Warsaw", "PL", Europe, 52.2297, 21.0122, false),
    c!("Zurich", "CH", Europe, 47.3769, 8.5417, false),
    c!("Copenhagen", "DK", Europe, 55.6761, 12.5683, false),
    c!("Dublin", "IE", Europe, 53.3498, -6.2603, false),
    c!("Helsinki", "FI", Europe, 60.1699, 24.9384, false),
    c!("Brussels", "BE", Europe, 50.8503, 4.3517, false),
    c!("Prague", "CZ", Europe, 50.0755, 14.4378, false),
    c!("Budapest", "HU", Europe, 47.4979, 19.0402, false),
    c!("Bucharest", "RO", Europe, 44.4268, 26.1025, false),
    c!("Athens", "GR", Europe, 37.9838, 23.7275, false),
    c!("Lisbon", "PT", Europe, 38.7223, -9.1393, false),
    c!("Kyiv", "UA", Europe, 50.4501, 30.5234, false),
    c!("Moscow", "RU", Europe, 55.7558, 37.6173, false),
    c!("StPetersburg", "RU", Europe, 59.9311, 30.3609, false),
    c!("Novosibirsk", "RU", AsiaPacific, 55.0084, 82.9357, false),
    c!("Yekaterinburg", "RU", Europe, 56.8389, 60.6057, false),
    c!("Istanbul", "TR", Europe, 41.0082, 28.9784, false),
    // --- North & Central America ---
    c!("NewYork", "US", NorthAmerica, 40.7128, -74.006, true),
    c!("Ashburn", "US", NorthAmerica, 39.0438, -77.4874, true),
    c!("Atlanta", "US", NorthAmerica, 33.749, -84.388, true),
    c!("Miami", "US", NorthAmerica, 25.7617, -80.1918, true),
    c!("Chicago", "US", NorthAmerica, 41.8781, -87.6298, true),
    c!("Dallas", "US", NorthAmerica, 32.7767, -96.797, true),
    c!("Denver", "US", NorthAmerica, 39.7392, -104.9903, false),
    c!("LosAngeles", "US", NorthAmerica, 34.0522, -118.2437, true),
    c!("SanJose", "US", NorthAmerica, 37.3382, -121.8863, true),
    c!("Seattle", "US", NorthAmerica, 47.6062, -122.3321, true),
    c!("Boston", "US", NorthAmerica, 42.3601, -71.0589, false),
    c!("Phoenix", "US", NorthAmerica, 33.4484, -112.074, false),
    c!("Houston", "US", NorthAmerica, 29.7604, -95.3698, false),
    c!("Minneapolis", "US", NorthAmerica, 44.9778, -93.265, false),
    c!("Toronto", "CA", NorthAmerica, 43.6532, -79.3832, true),
    c!("Montreal", "CA", NorthAmerica, 45.5017, -73.5673, false),
    c!("Vancouver", "CA", NorthAmerica, 49.2827, -123.1207, false),
    c!("MexicoCity", "MX", NorthAmerica, 19.4326, -99.1332, false),
    c!("PanamaCity", "PA", NorthAmerica, 8.9824, -79.5199, false),
    // --- South America ---
    c!("SaoPaulo", "BR", SouthAmerica, -23.5505, -46.6333, true),
    c!(
        "RioDeJaneiro",
        "BR",
        SouthAmerica,
        -22.9068,
        -43.1729,
        false
    ),
    c!("BuenosAires", "AR", SouthAmerica, -34.6037, -58.3816, false),
    c!("Santiago", "CL", SouthAmerica, -33.4489, -70.6693, false),
    c!("Bogota", "CO", SouthAmerica, 4.711, -74.0721, false),
    c!("Lima", "PE", SouthAmerica, -12.0464, -77.0428, false),
    // --- Asia Pacific ---
    c!("Singapore", "SG", AsiaPacific, 1.3521, 103.8198, true),
    c!("HongKong", "HK", AsiaPacific, 22.3193, 114.1694, true),
    c!("Tokyo", "JP", AsiaPacific, 35.6762, 139.6503, true),
    c!("Osaka", "JP", AsiaPacific, 34.6937, 135.5023, false),
    c!("Seoul", "KR", AsiaPacific, 37.5665, 126.978, true),
    c!("Taipei", "TW", AsiaPacific, 25.033, 121.5654, false),
    c!("Shanghai", "CN", AsiaPacific, 31.2304, 121.4737, false),
    c!("Beijing", "CN", AsiaPacific, 39.9042, 116.4074, false),
    c!("Guangzhou", "CN", AsiaPacific, 23.1291, 113.2644, false),
    c!("Mumbai", "IN", AsiaPacific, 19.076, 72.8777, true),
    c!("Delhi", "IN", AsiaPacific, 28.7041, 77.1025, false),
    c!("Bangalore", "IN", AsiaPacific, 12.9716, 77.5946, false),
    c!("Chennai", "IN", AsiaPacific, 13.0827, 80.2707, false),
    c!("KualaLumpur", "MY", AsiaPacific, 3.139, 101.6869, false),
    c!("Jakarta", "ID", AsiaPacific, -6.2088, 106.8456, false),
    c!("Bangkok", "TH", AsiaPacific, 13.7563, 100.5018, false),
    c!("Manila", "PH", AsiaPacific, 14.5995, 120.9842, false),
    c!("HoChiMinh", "VN", AsiaPacific, 10.8231, 106.6297, false),
    c!("Karachi", "PK", AsiaPacific, 24.8607, 67.0011, false),
    c!("Dhaka", "BD", AsiaPacific, 23.8103, 90.4125, false),
    c!("Colombo", "LK", AsiaPacific, 6.9271, 79.8612, false),
    // --- Oceania ---
    c!("Sydney", "AU", Oceania, -33.8688, 151.2093, true),
    c!("Melbourne", "AU", Oceania, -37.8136, 144.9631, false),
    c!("Brisbane", "AU", Oceania, -27.4698, 153.0251, false),
    c!("Perth", "AU", Oceania, -31.9505, 115.8605, false),
    c!("Auckland", "NZ", Oceania, -36.8509, 174.7645, false),
    c!("Wellington", "NZ", Oceania, -41.2865, 174.7762, false),
    // --- Middle East ---
    c!("Dubai", "AE", MiddleEast, 25.2048, 55.2708, true),
    c!("TelAviv", "IL", MiddleEast, 32.0853, 34.7818, false),
    c!("Riyadh", "SA", MiddleEast, 24.7136, 46.6753, false),
    c!("Doha", "QA", MiddleEast, 25.2854, 51.531, false),
    c!("Amman", "JO", MiddleEast, 31.9454, 35.9284, false),
    c!("Tehran", "IR", MiddleEast, 35.6892, 51.389, false),
    // --- Africa ---
    c!("Johannesburg", "ZA", Africa, -26.2041, 28.0473, true),
    c!("CapeTown", "ZA", Africa, -33.9249, 18.4241, false),
    c!("Cairo", "EG", Africa, 30.0444, 31.2357, false),
    c!("Lagos", "NG", Africa, 6.5244, 3.3792, false),
    c!("Nairobi", "KE", Africa, -1.2921, 36.8219, false),
    c!("Casablanca", "MA", Africa, 33.5731, -7.5898, false),
];

/// Returns the city with the given id.
///
/// # Panics
/// Panics when the id is out of range; ids are only minted by this crate and
/// the topology generator, so an out-of-range id is a logic error.
pub fn city(id: CityId) -> &'static City {
    &CITIES[id.0 as usize]
}

/// Returns the city with the given id, or `None` when out of range.
pub fn city_opt(id: CityId) -> Option<&'static City> {
    CITIES.get(id.0 as usize)
}

/// Looks a city up by name (exact match).
pub fn city_by_name(name: &str) -> Option<(CityId, &'static City)> {
    CITIES
        .iter()
        .enumerate()
        .find(|(_, c)| c.name == name)
        .map(|(i, c)| (CityId(i as u16), c))
}

/// All city ids in a region.
pub fn cities_in_region(region: Region) -> Vec<CityId> {
    CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| c.region == region)
        .map(|(i, _)| CityId(i as u16))
        .collect()
}

/// All city ids in a country.
pub fn cities_in_country(country: &str) -> Vec<CityId> {
    CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| c.country == country)
        .map(|(i, _)| CityId(i as u16))
        .collect()
}

/// Geographic centroid (naive lat/lon average) of a country's cities — the
/// point a centroid-collapsing GeoIP database reports for that country.
/// Returns `None` for unknown countries.
pub fn country_centroid(country: &str) -> Option<GeoPoint> {
    let ids = cities_in_country(country);
    if ids.is_empty() {
        return None;
    }
    let (mut lat, mut lon) = (0.0, 0.0);
    for id in &ids {
        let c = city(*id);
        lat += c.location.lat_deg;
        lon += c.location.lon_deg;
    }
    let n = ids.len() as f64;
    Some(GeoPoint::new(lat / n, lon / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let names: std::collections::BTreeSet<_> = CITIES.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), CITIES.len());
    }

    #[test]
    fn coordinates_sane() {
        for c in CITIES {
            assert!(c.location.lat_deg.abs() <= 90.0, "{}", c.name);
            assert!(c.location.lon_deg.abs() <= 180.0, "{}", c.name);
        }
    }

    #[test]
    fn every_region_has_cities() {
        for r in Region::ALL {
            assert!(!cities_in_region(r).is_empty(), "region {r} has no cities");
        }
    }

    #[test]
    fn lookup_by_name() {
        let (id, c) = city_by_name("Singapore").expect("Singapore present");
        assert_eq!(c.country, "SG");
        assert_eq!(city(id).name, "Singapore");
        assert!(city_by_name("Atlantis").is_none());
    }

    #[test]
    fn russia_spans_regions() {
        // The paper's centroid-collapse pathology relies on Russia spanning
        // Europe and Asia; the table must reflect that.
        let ru = cities_in_country("RU");
        assert!(ru.len() >= 3);
        let regions: std::collections::BTreeSet<_> = ru.iter().map(|id| city(*id).region).collect();
        assert!(regions.len() >= 2, "Russian cities must span >=2 regions");
    }

    #[test]
    fn country_centroid_russia_is_interior() {
        let c = country_centroid("RU").expect("RU centroid");
        // Mean of Moscow/StPetersburg/Novosibirsk/Yekaterinburg lies well
        // east of Moscow — the "centre of Russia" effect from the paper.
        assert!(
            c.lon_deg > 45.0,
            "centroid should sit east of Moscow, got {c:?}"
        );
        assert!(country_centroid("XX").is_none());
    }

    #[test]
    fn hub_density() {
        let hubs = CITIES.iter().filter(|c| c.major_hub).count();
        assert!(hubs >= 15, "need enough IXP candidate sites, got {hubs}");
    }
}
