//! Metro-area populations for the embedded city table.
//!
//! The live service plane samples caller and callee cities in proportion
//! to how many people could plausibly place a call from each — a
//! population-weighted endpoint model, the same assumption the paper's
//! Sec 5 user base implies (conferencing demand follows where users live,
//! then the diurnal profile says *when* they call).
//!
//! Figures are approximate metro-area populations in thousands; they only
//! need to be the right relative magnitude (Tokyo ≫ Oslo), not census-
//! accurate. Keyed by city name so the table cannot silently fall out of
//! alignment if [`crate::cities::CITIES`] is reordered; a unit test pins
//! full coverage.

use crate::cities::{city, CityId, CITIES};

/// `(city name, metro population in thousands)` for every city in
/// [`CITIES`].
static METRO_POP_K: &[(&str, u32)] = &[
    // --- Europe ---
    ("Amsterdam", 2_480),
    ("London", 14_800),
    ("Frankfurt", 2_700),
    ("Oslo", 1_590),
    ("Paris", 13_000),
    ("Stockholm", 2_400),
    ("Madrid", 6_750),
    ("Milan", 4_340),
    ("Vienna", 2_900),
    ("Warsaw", 3_100),
    ("Zurich", 1_400),
    ("Copenhagen", 2_100),
    ("Dublin", 2_000),
    ("Helsinki", 1_500),
    ("Brussels", 2_600),
    ("Prague", 2_700),
    ("Budapest", 3_000),
    ("Bucharest", 2_300),
    ("Athens", 3_150),
    ("Lisbon", 2_900),
    ("Kyiv", 3_000),
    ("Moscow", 17_100),
    ("StPetersburg", 5_400),
    ("Novosibirsk", 1_600),
    ("Yekaterinburg", 1_500),
    ("Istanbul", 15_600),
    // --- North & Central America ---
    ("NewYork", 19_500),
    ("Ashburn", 300),
    ("Atlanta", 6_100),
    ("Miami", 6_200),
    ("Chicago", 9_500),
    ("Dallas", 7_600),
    ("Denver", 3_000),
    ("LosAngeles", 12_900),
    ("SanJose", 2_000),
    ("Seattle", 4_000),
    ("Boston", 4_900),
    ("Phoenix", 4_900),
    ("Houston", 7_100),
    ("Minneapolis", 3_700),
    ("Toronto", 6_400),
    ("Montreal", 4_300),
    ("Vancouver", 2_700),
    ("MexicoCity", 21_800),
    ("PanamaCity", 1_900),
    // --- South America ---
    ("SaoPaulo", 22_400),
    ("RioDeJaneiro", 13_600),
    ("BuenosAires", 15_400),
    ("Santiago", 6_900),
    ("Bogota", 11_300),
    ("Lima", 11_000),
    // --- Asia-Pacific ---
    ("Singapore", 5_900),
    ("HongKong", 7_500),
    ("Tokyo", 37_300),
    ("Osaka", 19_100),
    ("Seoul", 25_500),
    ("Taipei", 7_000),
    ("Shanghai", 28_500),
    ("Beijing", 21_500),
    ("Guangzhou", 13_900),
    ("Mumbai", 21_300),
    ("Delhi", 32_900),
    ("Bangalore", 13_200),
    ("Chennai", 11_500),
    ("KualaLumpur", 8_400),
    ("Jakarta", 33_400),
    ("Bangkok", 17_000),
    ("Manila", 14_400),
    ("HoChiMinh", 9_300),
    ("Karachi", 17_200),
    ("Dhaka", 23_200),
    ("Colombo", 2_500),
    // --- Oceania ---
    ("Sydney", 5_300),
    ("Melbourne", 5_200),
    ("Brisbane", 2_600),
    ("Perth", 2_100),
    ("Auckland", 1_700),
    ("Wellington", 420),
    // --- Middle East ---
    ("Dubai", 3_600),
    ("TelAviv", 4_300),
    ("Riyadh", 7_700),
    ("Doha", 2_400),
    ("Amman", 4_600),
    ("Tehran", 9_600),
    // --- Africa ---
    ("Johannesburg", 6_100),
    ("CapeTown", 4_800),
    ("Cairo", 21_800),
    ("Lagos", 15_900),
    ("Nairobi", 5_100),
    ("Casablanca", 3_800),
];

/// Metro population of `id` in thousands.
///
/// Unlisted cities (none today — a test pins full coverage) weigh in at a
/// nominal 1 000k so sampling degrades gracefully rather than panicking.
pub fn metro_population_k(id: CityId) -> u32 {
    let name = city(id).name;
    METRO_POP_K
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(1_000, |(_, p)| *p)
}

/// `(CityId, weight)` rows for population-weighted sampling over the whole
/// table, in stable [`CityId`] order.
pub fn population_weights() -> Vec<(CityId, u32)> {
    (0..CITIES.len())
        .map(|i| {
            let id = CityId(i as u16);
            (id, metro_population_k(id))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::city_by_name;

    #[test]
    fn every_city_is_listed() {
        for (i, c) in CITIES.iter().enumerate() {
            assert!(
                METRO_POP_K.iter().any(|(n, _)| *n == c.name),
                "city {} (#{i}) missing from population table",
                c.name
            );
        }
    }

    #[test]
    fn no_stale_entries() {
        for (n, p) in METRO_POP_K {
            assert!(city_by_name(n).is_some(), "{n} not in CITIES");
            assert!(*p > 0, "{n} has zero population");
        }
    }

    #[test]
    fn relative_magnitudes_are_sane() {
        let pop = |n: &str| {
            let (id, _) = city_by_name(n).unwrap();
            metro_population_k(id)
        };
        assert!(pop("Tokyo") > 10 * pop("Oslo"));
        assert!(pop("Delhi") > pop("Amsterdam"));
        assert_eq!(pop("Oslo"), 1_590);
    }

    #[test]
    fn weights_cover_table_in_order() {
        let w = population_weights();
        assert_eq!(w.len(), CITIES.len());
        assert!(w.windows(2).all(|p| p[0].0 < p[1].0));
        assert!(w.iter().all(|(_, p)| *p > 0));
    }
}
