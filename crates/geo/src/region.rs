//! World regions and PoP regions.
//!
//! The paper uses two partitions of the globe:
//!
//! * seven **world regions** for classifying traffic sources (Fig 7):
//!   Oceania, Asia Pacific, Middle East, Africa, Europe, North & Central
//!   America, South America;
//! * four **PoP regions** for classifying VNS points of presence: EU, US,
//!   AP, OC.

use std::fmt;

/// The seven world regions of Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// Europe.
    Europe,
    /// North and Central America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Asia Pacific.
    AsiaPacific,
    /// Oceania (Australia, New Zealand, Pacific islands).
    Oceania,
    /// Middle East.
    MiddleEast,
    /// Africa.
    Africa,
}

impl Region {
    /// All seven regions, in the order the harness reports them.
    pub const ALL: [Region; 7] = [
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::AsiaPacific,
        Region::Oceania,
        Region::MiddleEast,
        Region::Africa,
    ];

    /// This region's position in [`Region::ALL`] — a stable small integer
    /// used as the convergence shard id for routers sited in the region.
    pub fn index(&self) -> u32 {
        match self {
            Region::Europe => 0,
            Region::NorthAmerica => 1,
            Region::SouthAmerica => 2,
            Region::AsiaPacific => 3,
            Region::Oceania => 4,
            Region::MiddleEast => 5,
            Region::Africa => 6,
        }
    }

    /// Short code used in figure legends (`EU`, `NA`, `SA`, `AP`, `OC`,
    /// `ME`, `AF`).
    pub fn code(&self) -> &'static str {
        match self {
            Region::Europe => "EU",
            Region::NorthAmerica => "NA",
            Region::SouthAmerica => "SA",
            Region::AsiaPacific => "AP",
            Region::Oceania => "OC",
            Region::MiddleEast => "ME",
            Region::Africa => "AF",
        }
    }

    /// The PoP region whose PoPs serve this world region, mirroring how the
    /// paper folds Fig 7's seven source regions onto its four PoP regions.
    pub fn home_pop_region(&self) -> PopRegion {
        match self {
            Region::Europe | Region::MiddleEast | Region::Africa => PopRegion::Eu,
            Region::NorthAmerica | Region::SouthAmerica => PopRegion::Us,
            Region::AsiaPacific => PopRegion::Ap,
            Region::Oceania => PopRegion::Oc,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The four PoP regions the paper divides VNS into (Sec 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PopRegion {
    /// European PoPs.
    Eu,
    /// United States PoPs.
    Us,
    /// Asia-Pacific PoPs.
    Ap,
    /// Oceania PoPs.
    Oc,
}

impl PopRegion {
    /// All four PoP regions.
    pub const ALL: [PopRegion; 4] = [PopRegion::Eu, PopRegion::Us, PopRegion::Ap, PopRegion::Oc];

    /// Short legend code.
    pub fn code(&self) -> &'static str {
        match self {
            PopRegion::Eu => "EU",
            PopRegion::Us => "US",
            PopRegion::Ap => "AP",
            PopRegion::Oc => "OC",
        }
    }

    /// The measurement region this PoP region maps to in Sec 5's three-way
    /// split (EU / NA / AP): the paper folds Oceania PoPs into AP there.
    pub fn measurement_region(&self) -> Region {
        match self {
            PopRegion::Eu => Region::Europe,
            PopRegion::Us => Region::NorthAmerica,
            PopRegion::Ap | PopRegion::Oc => Region::AsiaPacific,
        }
    }
}

impl fmt::Display for PopRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_unique() {
        let codes: std::collections::BTreeSet<_> = Region::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), Region::ALL.len());
    }

    #[test]
    fn home_pop_regions() {
        assert_eq!(Region::Europe.home_pop_region(), PopRegion::Eu);
        assert_eq!(Region::Africa.home_pop_region(), PopRegion::Eu);
        assert_eq!(Region::SouthAmerica.home_pop_region(), PopRegion::Us);
        assert_eq!(Region::Oceania.home_pop_region(), PopRegion::Oc);
    }

    #[test]
    fn measurement_fold() {
        assert_eq!(PopRegion::Oc.measurement_region(), Region::AsiaPacific);
        assert_eq!(PopRegion::Us.measurement_region(), Region::NorthAmerica);
    }

    #[test]
    fn display_matches_code() {
        for r in Region::ALL {
            assert_eq!(r.to_string(), r.code());
        }
        for p in PopRegion::ALL {
            assert_eq!(p.to_string(), p.code());
        }
    }
}
