//! Geography substrate for the VNS reproduction.
//!
//! The paper's routing contribution is *geo-based cold-potato BGP*: a route
//! reflector assigns LOCAL_PREF from the great-circle distance between an
//! egress router and the GeoIP location of the destination prefix. This
//! crate supplies everything geographic:
//!
//! * [`GeoPoint`] and [`great_circle_km`] — positions and the spherical
//!   distance the paper's modified Quagga computes (Sec 3.2);
//! * [`Region`] — the seven world regions of Fig 7 and the four PoP regions;
//! * [`cities`] — an embedded table of ~90 real cities used to place ASes,
//!   IXPs and PoPs;
//! * [`GeoIpDb`] — a MaxMind-like prefix→location database with injectable
//!   error models reproducing the two documented failure classes that cause
//!   the Fig 3 outlier clusters (country-centroid collapse and stale-WHOIS
//!   relocation after M&A).

pub mod cities;
pub mod coords;
pub mod geoip;
pub mod population;
pub mod region;

pub use cities::{city, city_opt, City, CityId};
pub use coords::{great_circle_km, initial_bearing_deg, GeoPoint, EARTH_RADIUS_KM};
pub use geoip::{GeoIpDb, GeoIpError, GeoIpErrorModel};
pub use population::{metro_population_k, population_weights};
pub use region::{PopRegion, Region};
