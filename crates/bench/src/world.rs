//! Shared world construction for all experiments.

use vns_core::{build_vns, RoutingMode, Vns, VnsConfig};
use vns_netsim::RngTree;
use vns_topo::{generate, CalibrationConfig, ChannelFactory, Internet, TopoConfig};

/// Knobs shared by every experiment run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Multiplier on the generated Internet's AS counts (1.0 ≈ 180 ASes /
    /// ~520 prefixes; the paper's table is ~3 orders of magnitude bigger).
    pub scale: f64,
    /// VNS deployment configuration.
    pub vns: VnsConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 77,
            scale: 1.0,
            vns: VnsConfig::default(),
        }
    }
}

impl WorldConfig {
    /// A small/fast configuration for unit-style checks.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.45,
            ..Self::default()
        }
    }

    /// The topology config this world generates with.
    pub fn topo(&self) -> TopoConfig {
        let s = self.scale.max(0.05);
        let scaled = |n: usize| ((n as f64 * s).round() as usize).max(1);
        TopoConfig {
            seed: self.seed,
            ltps: scaled(8).max(3),
            stps_per_region: scaled(6),
            cahps_per_region: scaled(14),
            ecs_per_region: scaled(12),
            ..TopoConfig::default()
        }
    }
}

/// A generated Internet with a VNS deployment and a channel factory.
#[derive(Debug)]
pub struct World {
    /// The combined control/data plane.
    pub internet: Internet,
    /// The overlay.
    pub vns: Vns,
    /// Channel factory for data-plane campaigns.
    pub factory: ChannelFactory,
    /// The configuration used.
    pub config: WorldConfig,
}

impl World {
    /// Builds a world per `config`.
    pub fn build(config: WorldConfig) -> World {
        let mut internet = generate(&config.topo()).expect("topology generation");
        let vns = build_vns(&mut internet, &config.vns).expect("VNS convergence");
        let factory = ChannelFactory::new(
            CalibrationConfig::default(),
            RngTree::new(config.seed).subtree("channels"),
        );
        World {
            internet,
            vns,
            factory,
            config,
        }
    }

    /// A geo-cold-potato world with default settings.
    pub fn geo(seed: u64, scale: f64) -> World {
        World::build(WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        })
    }

    /// The same deployment in hot-potato ("before") mode.
    pub fn hot(seed: u64, scale: f64) -> World {
        let mut cfg = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        cfg.vns.mode = RoutingMode::HotPotato;
        World::build(cfg)
    }
}
