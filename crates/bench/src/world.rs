//! Shared world construction for all experiments.

use vns_core::{build_vns, RoutingMode, Vns, VnsConfig};
use vns_netsim::RngTree;
use vns_topo::{generate, CalibrationConfig, ChannelFactory, Internet, TopoConfig};

/// Knobs shared by every experiment run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Multiplier on the generated Internet's AS counts (1.0 ≈ 180 ASes /
    /// ~520 prefixes; the paper's table is ~3 orders of magnitude bigger).
    pub scale: f64,
    /// VNS deployment configuration.
    pub vns: VnsConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 77,
            scale: 1.0,
            vns: VnsConfig::default(),
        }
    }
}

impl WorldConfig {
    /// A small/fast configuration for unit-style checks.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            scale: 0.45,
            ..Self::default()
        }
    }

    /// The topology config this world generates with.
    ///
    /// Below `scale = 1` every knob shrinks linearly — the historical
    /// mapping, unchanged so existing worlds (and the committed campaign
    /// baseline) stay byte-identical. Above `scale = 1` the mapping keeps
    /// the Internet's *shape* realistic while the AS count grows:
    ///
    /// * the Tier-1 clique grows with √s (the real Internet added ASes
    ///   ~1000× faster than Tier-1s);
    /// * regional peering probabilities are damped by 1/s, holding the
    ///   expected peer *degree* per AS constant, so session count — and
    ///   with it Adj-RIB memory — grows linearly in s instead of
    ///   quadratically.
    pub fn topo(&self) -> TopoConfig {
        let s = self.scale.max(0.05);
        let scaled = |n: usize| ((n as f64 * s).round() as usize).max(1);
        let base = TopoConfig::default();
        let damp = s.max(1.0); // 1 for s <= 1: legacy worlds untouched
        TopoConfig {
            seed: self.seed,
            // Convergence-engine knobs mirror the VNS config so one flag
            // flips both convergence runs (generation + deployment).
            convergence_threads: self.vns.convergence_threads,
            monolithic_convergence: self.vns.monolithic_convergence,
            ltps: if s <= 1.0 {
                scaled(8).max(3)
            } else {
                ((8.0 * s.sqrt()).round() as usize).max(8)
            },
            stps_per_region: scaled(6),
            cahps_per_region: scaled(14),
            ecs_per_region: scaled(12),
            stp_peering_prob: base.stp_peering_prob / damp,
            cahp_peering_prob: base.cahp_peering_prob / damp,
            ..base
        }
    }
}

/// A generated Internet with a VNS deployment and a channel factory.
#[derive(Debug)]
pub struct World {
    /// The combined control/data plane.
    pub internet: Internet,
    /// The overlay.
    pub vns: Vns,
    /// Channel factory for data-plane campaigns.
    pub factory: ChannelFactory,
    /// The configuration used.
    pub config: WorldConfig,
}

impl World {
    /// Builds a world per `config`.
    pub fn build(config: WorldConfig) -> World {
        let mut internet = generate(&config.topo()).expect("topology generation");
        let vns = build_vns(&mut internet, &config.vns).expect("VNS convergence");
        let factory = ChannelFactory::new(
            CalibrationConfig::default(),
            RngTree::new(config.seed).subtree("channels"),
        );
        World {
            internet,
            vns,
            factory,
            config,
        }
    }

    /// A geo-cold-potato world with default settings.
    pub fn geo(seed: u64, scale: f64) -> World {
        World::build(WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        })
    }

    /// The same deployment in hot-potato ("before") mode.
    pub fn hot(seed: u64, scale: f64) -> World {
        let mut cfg = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        cfg.vns.mode = RoutingMode::HotPotato;
        World::build(cfg)
    }
}
