//! Shared measurement campaigns (probing matrices, media sessions, loss
//! trains) reused across experiments.
//!
//! Every campaign here decomposes into independent work units — a probed
//! prefix, a (client, echo, via) media arm, a (vantage, host) train series
//! — whose randomness is derived from `(master seed, unit label)`, never
//! from shared walking state. The campaigns fan units out over
//! [`Par`]/[`vns_netsim::par_map`] and merge in canonical unit order, so
//! their artefacts are byte-identical at any thread count.

use vns_bgp::{Asn, Prefix};
use vns_core::PopId;
use vns_geo::{GeoPoint, Region};
use vns_media::{run_echo_session, SessionConfig, SessionReport, VideoSpec};
use vns_netsim::{Dur, Par, PathChannel, SimTime};
use vns_probe::{loss_train, rtt_probe_std, LossTrain};
use vns_topo::{AsType, ResolvedPath};

use crate::world::World;

/// Fail-fast pre-flight: audits the converged control plane with
/// `vns-verify`'s static invariants before a campaign spends simulated
/// hours of packets on it. A deployment that converged into a broken
/// state (stale overrides, leaked `NO_EXPORT`, unresolvable next hops, …)
/// produces figures that look plausible and are quietly wrong — better to
/// die here with the report.
///
/// # Panics
/// Panics with the rendered violation report when any error-severity
/// violation exists. Warnings (e.g. hidden routes on a deployment that
/// deliberately disabled best-external for the ablation) pass.
pub fn assert_control_plane(world: &World) {
    let report = vns_verify::verify(&world.internet, &world.vns);
    assert!(
        report.passes(),
        "control-plane pre-flight failed:\n{}",
        report.render()
    );
}

/// Stage-2 fail-fast pre-flight: statically certifies the *data plane* —
/// the whole-network forwarding graph derived from the converged RIBs —
/// before a campaign replays flows over it. Proves LOOP-FREE,
/// NO-BLACKHOLE, ANYCAST-NEAREST and STRETCH-BOUND; campaigns that build
/// service-plane tables additionally cross-check WAYPOINT via
/// [`vns_verify::verify_dataplane_with_service`] at their own call sites.
///
/// # Panics
/// Panics with the rendered report (violations + per-check timing ledger)
/// on any error-severity finding.
pub fn assert_data_plane(world: &World) {
    let report = vns_verify::verify_dataplane(&world.internet, &world.vns);
    assert!(
        report.passes(),
        "data-plane pre-flight failed:\n{}",
        report.render()
    );
}

/// Everything an experiment needs to know about a probed prefix.
#[derive(Debug, Clone)]
pub struct PrefixMeta {
    /// The prefix.
    pub prefix: Prefix,
    /// The probed address ("the first IP address in each destination
    /// prefix").
    pub ip: u32,
    /// Origin AS number.
    pub origin_asn: Asn,
    /// Origin AS type.
    pub ty: AsType,
    /// Region of the prefix's true location.
    pub region: Region,
    /// Ground-truth location.
    pub truth: GeoPoint,
    /// GeoIP-reported location (what the route reflector sees).
    pub reported: Option<GeoPoint>,
    /// GeoIP displacement, km.
    pub geoip_err_km: f64,
}

/// External, last-mile prefixes with their metadata (VNS service prefixes
/// excluded).
pub fn prefix_metas(world: &World) -> Vec<PrefixMeta> {
    world
        .internet
        .prefixes()
        .filter(|p| p.last_mile)
        .map(|p| {
            let info = world.internet.as_info(p.origin);
            PrefixMeta {
                prefix: p.prefix,
                ip: p.prefix.first_host(),
                origin_asn: info.asn,
                ty: info.ty,
                region: vns_geo::city(p.city).region,
                truth: p.location,
                reported: world.internet.geoip.lookup(p.prefix).ok(),
                geoip_err_km: world.internet.geoip.error_km(p.prefix).unwrap_or(f64::NAN),
            }
        })
        .collect()
}

/// Builds a forward/return channel pair for a resolved path.
pub fn channel_pair(world: &World, path: &ResolvedPath, label: &str) -> (PathChannel, PathChannel) {
    channel_pair_args(world, path, format_args!("{label}"))
}

/// [`channel_pair`] with a `format_args!` label: the per-probe hot paths
/// build one channel pair per (pop, ip) probe, and hashing the label as it
/// renders avoids three `String` allocations per probe. Hash-compatible
/// with the `&str` form.
pub fn channel_pair_args(
    world: &World,
    path: &ResolvedPath,
    label: std::fmt::Arguments<'_>,
) -> (PathChannel, PathChannel) {
    let fwd = world
        .factory
        .channel_args(path, format_args!("{label}:fwd"));
    let rev = world
        .factory
        .channel_args(&path.reversed(), format_args!("{label}:rev"));
    (fwd, rev)
}

/// Minimum RTT (5-ping probe) from a PoP to `ip`, exiting immediately via
/// the PoP's primary upstream. `None` when unroutable or all probes lost.
pub fn rtt_via_upstream(world: &World, pop: PopId, ip: u32, t: SimTime) -> Option<f64> {
    let path = world.vns.path_via_upstream(&world.internet, pop, ip).ok()?;
    let (mut fwd, mut rev) = channel_pair_args(world, &path, format_args!("rttu:{}:{ip}", pop.0));
    rtt_probe_std(&mut fwd, &mut rev, t).min_rtt_ms
}

/// Minimum RTT (5-ping probe) from a PoP to `ip`, exiting immediately via
/// the PoP's best local external route (the Sec 4.1/5.2 "forced out of VNS
/// immediately at each PoP" semantics).
pub fn rtt_via_local_exit(world: &World, pop: PopId, ip: u32, t: SimTime) -> Option<f64> {
    let path = world
        .vns
        .path_via_local_exit(&world.internet, pop, ip)
        .ok()?;
    let (mut fwd, mut rev) = channel_pair_args(world, &path, format_args!("rttl:{}:{ip}", pop.0));
    rtt_probe_std(&mut fwd, &mut rev, t).min_rtt_ms
}

/// Minimum RTT (5-ping probe) from a PoP to `ip` through VNS routing.
pub fn rtt_via_vns(world: &World, pop: PopId, ip: u32, t: SimTime) -> Option<f64> {
    let path = world.vns.path_via_vns(&world.internet, pop, ip).ok()?;
    let (mut fwd, mut rev) = channel_pair_args(world, &path, format_args!("rttv:{}:{ip}", pop.0));
    rtt_probe_std(&mut fwd, &mut rev, t).min_rtt_ms
}

/// RTT matrix `[prefix][pop]` via each PoP's upstream (the Sec 4.1
/// methodology: probes forced out of VNS immediately at each PoP).
///
/// One work unit per probed prefix (a matrix row); every probe's channel
/// state is derived from its `rttl:{pop}:{ip}` label, so rows computed on
/// any thread at any time are identical to the sequential walk.
pub fn rtt_matrix(
    world: &World,
    metas: &[PrefixMeta],
    pops: &[PopId],
    t: SimTime,
    par: Par,
) -> Vec<Vec<Option<f64>>> {
    assert_control_plane(world);
    assert_data_plane(world);
    par.map(metas, |_, m| {
        pops.iter()
            .map(|&p| rtt_via_local_exit(world, p, m.ip, t))
            .collect()
    })
}

/// One media measurement arm: a client PoP streaming to an echo server,
/// either through VNS or through the client PoP's upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaArm {
    /// Client location (co-located with a PoP, as the paper's were).
    pub client: PopId,
    /// Echo server PoP.
    pub echo_pop: PopId,
    /// The echo server's measurement region (EU/NA/AP).
    pub region: Region,
    /// Through VNS (`true`, the "I" curves) or through upstream transit
    /// (`false`, the "T" curves).
    pub via_vns: bool,
}

impl MediaArm {
    /// Legend label matching the paper (`"I-AP"`, `"T-EU"`, …).
    pub fn label(&self) -> String {
        format!(
            "{}-{}",
            if self.via_vns { "I" } else { "T" },
            self.region.code()
        )
    }
}

/// Runs a media campaign: every (client, echo, via) arm runs
/// `sessions_per_arm` two-minute sessions, one every 30 minutes (the
/// paper's cadence), starting at `start`.
///
/// One work unit per (arm, session): every session's recording schedule
/// and channel state are pure functions of `(master seed, arm, session
/// index)` — stable sub-unit labels in the [`vns_netsim::RngTree`] scheme
/// — never of which units ran before it. Splitting below the arm matters
/// for load balance: fig9's 36 arms become 1440 units, so 8 threads stay
/// busy instead of tail-waiting on the last coarse arm. Sessions of one
/// arm are 30 simulated minutes apart — far beyond every correlation
/// scale in the loss models — so re-deriving channel state per session
/// leaves the measured distributions unchanged while making the unit
/// order irrelevant: artefacts are byte-identical at any `--threads N`.
pub fn media_campaign(
    world: &World,
    clients: &[PopId],
    spec: VideoSpec,
    sessions_per_arm: usize,
    start: SimTime,
    par: Par,
) -> Vec<(MediaArm, SessionReport)> {
    assert_control_plane(world);
    assert_data_plane(world);
    let cfg = SessionConfig::default();
    let echo: Vec<(PopId, Region, u32)> = world
        .vns
        .echo_servers()
        .iter()
        .map(|e| {
            let region = world.vns.pop(e.pop).spec.region.measurement_region();
            (e.pop, region, e.address())
        })
        .collect();
    let mut units: Vec<(MediaArm, u32, u32)> = Vec::new();
    for &client in clients {
        for &(echo_pop, region, addr) in &echo {
            for via_vns in [true, false] {
                let arm = MediaArm {
                    client,
                    echo_pop,
                    region,
                    via_vns,
                };
                for s in 0..sessions_per_arm as u32 {
                    units.push((arm, addr, s));
                }
            }
        }
    }
    let tree = vns_netsim::RngTree::new(world.config.seed)
        .subtree("media-campaign")
        .subtree(spec.name);
    let per_unit: Vec<Option<(MediaArm, SessionReport)>> = par.map(&units, |_, &(arm, addr, s)| {
        let path = if arm.via_vns {
            world.vns.path_via_vns(&world.internet, arm.client, addr)
        } else {
            world
                .vns
                .path_via_upstream(&world.internet, arm.client, addr)
        };
        let Ok(path) = path else { return None };
        let (mut fwd, mut rev) = channel_pair_args(
            world,
            &path,
            format_args!(
                "media:{}:{}:{}:{}:s{s}",
                spec.name, arm.client.0, arm.echo_pop.0, arm.via_vns
            ),
        );
        let mut rng = tree.stream_args(format_args!(
            "arm:{}:{}:{}:s{s}",
            arm.client.0, arm.echo_pop.0, arm.via_vns
        ));
        let t0 = start + Dur::from_mins(30).mul(s as u64);
        // Stream the packets straight off the generator — no ~51k-element
        // schedule Vec per session. Same RNG walk as spec.schedule().
        let packets = spec.packets(t0, cfg.duration, &mut rng);
        let report = run_echo_session(packets, &cfg, &mut fwd, &mut rev);
        Some((arm, report))
    });
    per_unit.into_iter().flatten().collect()
}

/// A probed last-mile host.
#[derive(Debug, Clone, Copy)]
pub struct HostMeta {
    /// Probed address.
    pub ip: u32,
    /// AS type of its network.
    pub ty: AsType,
    /// Its region (EU / NA / AP).
    pub region: Region,
}

/// Selects up to `per_cell` hosts for every (AS type, region) cell over
/// EU/NA/AP, maximising AS diversity (one host per AS first).
pub fn select_hosts(world: &World, per_cell: usize) -> Vec<HostMeta> {
    let metas = prefix_metas(world);
    let mut out = Vec::new();
    for region in [Region::Europe, Region::NorthAmerica, Region::AsiaPacific] {
        for ty in AsType::ALL {
            let mut seen_as = std::collections::BTreeSet::new();
            let mut cell: Vec<HostMeta> = Vec::new();
            // First pass: one prefix per AS.
            for m in metas.iter().filter(|m| m.ty == ty && m.region == region) {
                if cell.len() >= per_cell {
                    break;
                }
                if seen_as.insert(m.origin_asn) {
                    cell.push(HostMeta {
                        ip: m.ip,
                        ty,
                        region,
                    });
                }
            }
            // Second pass: fill up with further prefixes.
            for m in metas.iter().filter(|m| m.ty == ty && m.region == region) {
                if cell.len() >= per_cell {
                    break;
                }
                if !cell.iter().any(|h| h.ip == m.ip) {
                    cell.push(HostMeta {
                        ip: m.ip,
                        ty,
                        region,
                    });
                }
            }
            out.extend(cell);
        }
    }
    out
}

/// One loss-train result within a campaign.
#[derive(Debug, Clone, Copy)]
pub struct TrainRecord {
    /// Vantage PoP.
    pub pop: PopId,
    /// Index into the host list.
    pub host: usize,
    /// The train.
    pub train: LossTrain,
}

/// Runs the Sec 5.2 campaign: every host probed from every PoP with a
/// 100-packet back-to-back train every `interval` for `span`.
///
/// One work unit per (vantage PoP, host) pair; the train rounds within a
/// pair stay sequential because they share the pair's channel (its
/// loss-process state is the unit's own walk, seeded from the
/// `lm:{pop}:{ip}` label).
pub fn lastmile_campaign(
    world: &World,
    pops: &[PopId],
    hosts: &[HostMeta],
    interval: Dur,
    span: Dur,
    par: Par,
) -> Vec<TrainRecord> {
    assert_control_plane(world);
    assert_data_plane(world);
    let rounds = vns_probe::rounds(SimTime::EPOCH, interval, span);
    let mut units: Vec<(PopId, usize)> = Vec::with_capacity(pops.len() * hosts.len());
    for &pop in pops {
        for hi in 0..hosts.len() {
            units.push((pop, hi));
        }
    }
    let per_unit: Vec<Vec<TrainRecord>> = par.map(&units, |_, &(pop, hi)| {
        let host = &hosts[hi];
        let Ok(path) = world.vns.path_via_local_exit(&world.internet, pop, host.ip) else {
            return Vec::new();
        };
        let (mut fwd, mut rev) =
            channel_pair_args(world, &path, format_args!("lm:{}:{}", pop.0, host.ip));
        rounds
            .iter()
            .map(|&at| TrainRecord {
                pop,
                host: hi,
                train: loss_train(&mut fwd, &mut rev, at, 100),
            })
            .collect()
    });
    per_unit.into_iter().flatten().collect()
}
