//! Fig 4 — how egresses are used, before vs after geo-based routing.
//!
//! From the perspective of PoP 10 (London): the percentage of routes that
//! exit at each PoP. Before: hot-potato, ~70 % exit locally. After: the
//! distribution spreads (PoPs 3 and 5 on the US east coast, 7 in AP and 9
//! in EU pick up large shares).

use vns_core::PopId;
use vns_stats::{Figure, Series};

use crate::campaign::prefix_metas;
use crate::world::World;

/// The egress-share distributions.
#[derive(Debug)]
pub struct Fig4 {
    /// Viewpoint PoP.
    pub viewpoint: PopId,
    /// `share[pop_id-1]` as a percentage, before (hot potato).
    pub before: Vec<f64>,
    /// Same, after (geo cold potato).
    pub after: Vec<f64>,
    /// The printable figure.
    pub figure: Figure,
}

/// Computes the egress share per PoP from `viewpoint`'s perspective.
pub fn egress_shares(world: &World, viewpoint: PopId) -> Vec<f64> {
    let n = world.vns.pops().len();
    let mut counts = vec![0usize; n];
    let mut total = 0usize;
    for m in prefix_metas(world) {
        if let Some(egress) = world.vns.egress_pop(&world.internet, viewpoint, m.ip) {
            counts[(egress.0 - 1) as usize] += 1;
            total += 1;
        }
    }
    // One ledger unit per routed prefix so the bench row reports real work.
    vns_netsim::ledger::add_units(total as u64);
    counts
        .into_iter()
        .map(|c| 100.0 * c as f64 / total.max(1) as f64)
        .collect()
}

/// Runs the before/after comparison. The two worlds must be built from the
/// same seed (identical Internet, different VNS mode).
pub fn run(before_world: &World, after_world: &World) -> Fig4 {
    let viewpoint = PopId(10);
    let before = egress_shares(before_world, viewpoint);
    let after = egress_shares(after_world, viewpoint);
    let mut figure = Figure::new(
        "Fig 4",
        "Percentage of routes exiting at each PoP, from PoP 10 (London)",
        "PoP ID",
        "percentage of routes",
    );
    figure.push(Series::new(
        "Before",
        before
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i + 1) as f64, v))
            .collect(),
    ));
    figure.push(Series::new(
        "After",
        after
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i + 1) as f64, v))
            .collect(),
    ));
    Fig4 {
        viewpoint,
        before,
        after,
        figure,
    }
}

impl Fig4 {
    /// Share exiting locally at the viewpoint (index by PoP id).
    pub fn local_share_before(&self) -> f64 {
        self.before[(self.viewpoint.0 - 1) as usize]
    }

    /// Share exiting locally after geo-routing.
    pub fn local_share_after(&self) -> f64 {
        self.after[(self.viewpoint.0 - 1) as usize]
    }

    /// A simple evenness measure: the max share across PoPs (lower =
    /// more even).
    pub fn max_share_after(&self) -> f64 {
        self.after.iter().cloned().fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.figure)?;
        writeln!(
            f,
            "local exit at PoP 10: before {:.1}% (paper ~70%), after {:.1}%",
            self.local_share_before(),
            self.local_share_after()
        )
    }
}
