//! Fig 3 — geo-based routing precision.
//!
//! Method (Sec 4.1): probe the first address of every prefix from every
//! PoP, 5 ICMP pings each, probes forced out of VNS immediately; record
//! the minimum RTT. Compare the RTT from the PoP the geo metric selects
//! (nearest by GeoIP-reported location) with the best RTT over all PoPs.
//!
//! Left panel: CDF of `RTT(geo) − RTT(best)` per region; paper reports 90 %
//! of prefixes displaced ≤ 20 ms overall (90/84/82 % ≤ 10 ms for
//! EU/NA/AP). Right panel: scatter of geo-RTT vs best-RTT with two outlier
//! clusters caused by the GeoIP pathologies (~(100,400) Russian centroid,
//! ~(250,500) Indian stale-WHOIS).

use vns_core::PopId;
use vns_geo::Region;
use vns_netsim::{Dur, Par, SimTime};
use vns_stats::{Cdf, Figure, Series};

use crate::campaign::{prefix_metas, rtt_matrix};
use crate::world::World;

/// Everything the figure shows, plus the headline stats.
#[derive(Debug)]
pub struct Fig3 {
    /// CDF figure (one series per region + "All").
    pub cdf: Figure,
    /// Scatter figure (x = best RTT, y = geo RTT).
    pub scatter: Figure,
    /// Fraction of prefixes displaced ≤ 10 ms, per region code.
    pub within_10ms: Vec<(String, f64)>,
    /// Fraction displaced ≤ 20 ms across all regions.
    pub within_20ms_all: f64,
    /// Number of prefixes with both RTTs measured.
    pub measured: usize,
    /// Raw per-prefix `(best, geo)` RTTs for downstream analyses.
    pub points: Vec<(f64, f64)>,
}

/// Runs the experiment; probe rows fan out over `par`.
pub fn run(world: &World, par: Par) -> Fig3 {
    let metas = prefix_metas(world);
    let pops: Vec<PopId> = world.vns.pops().iter().map(|p| p.id()).collect();
    let t = SimTime::EPOCH + Dur::from_hours(10);
    let matrix = rtt_matrix(world, &metas, &pops, t, par);

    // Geo choice per prefix: nearest PoP by *reported* location.
    let mut diffs_all = Vec::new();
    let mut diffs_by_region: std::collections::BTreeMap<&'static str, Vec<f64>> =
        Default::default();
    let mut points = Vec::new();
    for (mi, m) in metas.iter().enumerate() {
        let Some(reported) = m.reported else { continue };
        let geo_pop_idx = pops
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = world.vns.pop(**a).location().distance_km(&reported);
                let db = world.vns.pop(**b).location().distance_km(&reported);
                da.partial_cmp(&db).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("pops non-empty");
        let geo_rtt = matrix[mi][geo_pop_idx];
        let best_rtt = matrix[mi]
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let (Some(geo_rtt), true) = (geo_rtt, best_rtt.is_finite()) else {
            continue;
        };
        let diff = (geo_rtt - best_rtt).max(0.0);
        diffs_all.push(diff);
        points.push((best_rtt, geo_rtt));
        // Region classification: region of the geo-nearest PoP (the
        // paper's "prefixes reported closer to PoPs in the indicated
        // region").
        let code = match world
            .vns
            .pop(pops[geo_pop_idx])
            .spec
            .region
            .measurement_region()
        {
            Region::Europe => "EU",
            Region::NorthAmerica => "NA",
            _ => "AP",
        };
        diffs_by_region.entry(code).or_default().push(diff);
    }

    let mut cdf_fig = Figure::new(
        "Fig 3 (left)",
        "CDF of RTT difference between geo-selected and delay-best PoP",
        "RTT difference (ms)",
        "CDF",
    );
    let mut within_10ms = Vec::new();
    for (code, diffs) in &diffs_by_region {
        let cdf = Cdf::new(diffs.clone());
        within_10ms.push((code.to_string(), cdf.at(10.0)));
        cdf_fig.push(Series::new(
            *code,
            cdf.sample_at(&[0.0, 5.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0]),
        ));
    }
    let all_cdf = Cdf::new(diffs_all.clone());
    let within_20ms_all = all_cdf.at(20.0);
    cdf_fig.push(Series::new(
        "All",
        all_cdf.sample_at(&[0.0, 5.0, 10.0, 20.0, 50.0, 100.0, 150.0, 200.0]),
    ));

    let mut scatter = Figure::new(
        "Fig 3 (right)",
        "Geo-based routing RTT vs best RTT per prefix",
        "Best RTT (ms)",
        "Geo-based routing RTT (ms)",
    );
    scatter.push(Series::new("prefixes", points.clone()));

    Fig3 {
        cdf: cdf_fig,
        scatter,
        within_10ms,
        within_20ms_all,
        measured: diffs_all.len(),
        points,
    }
}

impl Fig3 {
    /// Outlier count: prefixes displaced by more than `ms`.
    pub fn outliers_beyond(&self, ms: f64) -> usize {
        self.points
            .iter()
            .filter(|(best, geo)| geo - best > ms)
            .count()
    }
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.cdf)?;
        writeln!(f, "{}", self.scatter)?;
        writeln!(f, "measured prefixes: {}", self.measured)?;
        for (code, frac) in &self.within_10ms {
            writeln!(f, "≤10 ms displacement ({code}): {}", vns_stats::pct(*frac))?;
        }
        writeln!(
            f,
            "≤20 ms displacement (All): {} (paper: ~90%)",
            vns_stats::pct(self.within_20ms_all)
        )
    }
}
