//! Sec 4.1 — are prefixes of the same AS "congruently located"?
//!
//! The paper probes one address per prefix and asks whether prefixes of
//! the same AS are delay-closest to the same PoP: "at least 25 % of
//! prefixes match in 99 % of all measured ASes … at least 90 % of
//! prefixes match in 60 % of measured ASes."

use std::collections::BTreeMap;

use vns_bgp::Asn;
use vns_core::PopId;
use vns_netsim::{Dur, Par, SimTime};

use crate::campaign::{prefix_metas, rtt_matrix};
use crate::world::World;

/// The congruence statistics.
#[derive(Debug)]
pub struct Congruence {
    /// ASes with at least two measured prefixes.
    pub ases_measured: usize,
    /// Fraction of those ASes where ≥ 25 % of prefixes share the modal
    /// closest PoP (paper: 0.99).
    pub frac_ases_quarter_match: f64,
    /// Fraction where ≥ 90 % share it (paper: 0.60).
    pub frac_ases_ninety_match: f64,
}

/// Runs the analysis; probe rows fan out over `par`.
pub fn run(world: &World, par: Par) -> Congruence {
    let metas = prefix_metas(world);
    let pops: Vec<PopId> = world.vns.pops().iter().map(|p| p.id()).collect();
    let t = SimTime::EPOCH + Dur::from_hours(10);
    let matrix = rtt_matrix(world, &metas, &pops, t, par);

    // Closest PoP (by measured RTT) per prefix, grouped by AS.
    let mut by_as: BTreeMap<Asn, Vec<usize>> = BTreeMap::new();
    for (mi, m) in metas.iter().enumerate() {
        let closest = matrix[mi]
            .iter()
            .enumerate()
            .filter_map(|(pi, r)| r.map(|rtt| (pi, rtt)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        if let Some((pi, _)) = closest {
            by_as.entry(m.origin_asn).or_default().push(pi);
        }
    }

    let mut measured = 0;
    let mut quarter = 0;
    let mut ninety = 0;
    for pois in by_as.values() {
        if pois.len() < 2 {
            continue;
        }
        measured += 1;
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for &p in pois {
            *counts.entry(p).or_default() += 1;
        }
        let modal = *counts.values().max().expect("non-empty");
        let frac = modal as f64 / pois.len() as f64;
        if frac >= 0.25 {
            quarter += 1;
        }
        if frac >= 0.9 {
            ninety += 1;
        }
    }

    Congruence {
        ases_measured: measured,
        frac_ases_quarter_match: quarter as f64 / measured.max(1) as f64,
        frac_ases_ninety_match: ninety as f64 / measured.max(1) as f64,
    }
}

impl std::fmt::Display for Congruence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## Sec 4.1 — same-AS prefix congruence")?;
        writeln!(f, "ASes with ≥2 measured prefixes: {}", self.ases_measured)?;
        writeln!(
            f,
            "ASes with ≥25% of prefixes closest to the same PoP: {} (paper: 99%)",
            vns_stats::pct(self.frac_ases_quarter_match)
        )?;
        writeln!(
            f,
            "ASes with ≥90% of prefixes closest to the same PoP: {} (paper: 60%)",
            vns_stats::pct(self.frac_ases_ninety_match)
        )
    }
}
