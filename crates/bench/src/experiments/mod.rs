//! One module per paper artefact (see the crate docs for the index).

pub mod ablate;
pub mod adversarial;
pub mod congruence;
pub mod failover;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod jitter;
pub mod steady_state;
pub mod table1;
