//! Failover — scripted control-plane faults and reconvergence measurement.
//!
//! The paper's network keeps calls alive because its resilience mechanisms
//! — meshed regional clusters, redundant long-haul circuits, paired
//! geo route reflectors, best-external on borders (Secs 2–3) — absorb
//! failures the best-effort Internet cannot. This campaign exercises
//! exactly those mechanisms: from a converged world it injects scripted
//! [`FaultEvent`]s (long-haul circuit cut, egress border-router loss, geo
//! route-reflector failover, flapping eBGP session), re-runs the BGP
//! engine incrementally after each event, and measures three planes at
//! once:
//!
//! * **control plane** — activations and messages per event
//!   ([`vns_bgp::ConvergenceStats`]), plus a
//!   [`BgpNet::is_quiescent`](vns_bgp::BgpNet::is_quiescent) check so a
//!   torn RIB is never silently measured;
//! * **data plane** — monitored client→echo flows are re-resolved across
//!   the routing epoch and an in-flight HD session is replayed over the
//!   pre→post path swap, yielding the outage window, packets lost during
//!   reconvergence, and post-failure path stretch vs. the geo-optimal
//!   pre-failure exit;
//! * **invariants** — the vns-verify suite re-runs on the post-event RIBs,
//!   scoped to the surviving topology (`verify_scoped`), so GEO-PREF /
//!   HIDDEN-ROUTE / VALLEY-FREE / NEXT-HOP must still hold mid-incident.
//!
//! ## Reconvergence-time model
//!
//! The simulator's control plane is event-stepped, not wall-clocked, so
//! the outage window is derived from a deterministic timing model:
//! failure detection takes [`DETECTION_MS`] (BFD-style fast detection on
//! dedicated circuits/sessions — 3 × 100 ms intervals), and each BGP
//! message delivered during reconvergence costs [`PER_MSG_MS`] of
//! serialized propagation/processing. Restorative events (session/router/
//! circuit up) converge make-before-break: the old path keeps forwarding
//! while the new state propagates, so their modeled outage is zero and
//! only the measured swap gap applies.
//!
//! Each scenario is one parallel work unit that builds its own world from
//! the shared [`WorldConfig`] — a pure function of the master seed — so
//! artefacts are byte-identical at any `--threads N`.

use std::fmt;

use vns_bgp::ConvergenceStats;
use vns_core::{FaultEvent, FaultInjector, FaultPlan, PopId};
use vns_media::VideoSpec;
use vns_netsim::{Dur, Par, RngTree, SimTime};
use vns_topo::ResolvedPath;
use vns_verify::{verify_dataplane_scoped, verify_scoped, DataplaneConfig, VerifyScope};

use crate::campaign::{assert_control_plane, assert_data_plane, channel_pair_args};
use crate::world::{World, WorldConfig};

/// Modeled failure-detection delay, ms (BFD-style: 3 × 100 ms).
pub const DETECTION_MS: f64 = 300.0;

/// Modeled serialized cost per delivered BGP message, ms.
pub const PER_MSG_MS: f64 = 1.0;

/// Replayed session length. Long enough to observe the full outage window
/// and post-swap recovery at ~427 packets/s without fig9-scale cost.
const SESSION: Dur = Dur::from_secs(30);

/// Event injection time, relative to session start.
const EVENT_AT: Dur = Dur::from_secs(10);

/// Monitored clients (the paper's three plotted vantage PoPs).
const CLIENTS: [(&str, u8); 3] = [("AMS", 9), ("SJS", 1), ("SYD", 11)];

/// The scripted scenarios, in artefact order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScenarioKind {
    /// Geo route-reflector loss and recovery (RR redundancy).
    RrFailover,
    /// Egress PoP border-router loss and recovery (best-external +
    /// intra-PoP pairing).
    PopBorderLoss,
    /// Long-haul inter-cluster circuit cut and repair (cluster meshing).
    LonghaulCut,
    /// Primary upstream eBGP session cut and restore.
    UpstreamCut,
    /// Flapping eBGP session (3 cut/restore cycles).
    EbgpFlap,
}

const SCENARIOS: [ScenarioKind; 5] = [
    ScenarioKind::RrFailover,
    ScenarioKind::PopBorderLoss,
    ScenarioKind::LonghaulCut,
    ScenarioKind::UpstreamCut,
    ScenarioKind::EbgpFlap,
];

impl ScenarioKind {
    /// Expands into a concrete [`FaultPlan`] against a built world.
    fn plan(self, world: &World) -> FaultPlan {
        let vns = &world.vns;
        match self {
            ScenarioKind::RrFailover => {
                let [rr0, _] = vns.reflectors();
                FaultPlan::router_blip("rr-failover", rr0)
            }
            ScenarioKind::PopBorderLoss => {
                // SIN's first border: the Asia-Pacific egress every
                // monitored AP flow crosses.
                let border = vns.pop(PopId(7)).borders[0];
                FaultPlan::router_blip("pop-border-loss", border)
            }
            ScenarioKind::LonghaulCut => {
                // The SIN=AMS long-haul circuit (an INTER_CLUSTER_LINKS
                // member joining the AP and EU clusters).
                let a = vns.pop(PopId(7)).borders[0];
                let b = vns.pop(PopId(9)).borders[0];
                FaultPlan::circuit_blip("longhaul-cut", a, b)
            }
            ScenarioKind::UpstreamCut => {
                let pop = PopId(9); // AMS
                let border = vns.pop(pop).borders[0];
                let (up_as, up_city) = vns.primary_upstream(pop);
                let upstream = world
                    .internet
                    .router_of(up_as, up_city)
                    .expect("upstream router exists");
                FaultPlan::new(
                    "upstream-cut",
                    vec![
                        FaultEvent::SessionCut {
                            a: border,
                            b: upstream,
                        },
                        FaultEvent::SessionRestore {
                            a: border,
                            b: upstream,
                        },
                    ],
                )
            }
            ScenarioKind::EbgpFlap => {
                let pop = PopId(1); // SJS
                let border = vns.pop(pop).borders[0];
                let (up_as, up_city) = vns.primary_upstream(pop);
                let upstream = world
                    .internet
                    .router_of(up_as, up_city)
                    .expect("upstream router exists");
                FaultPlan::session_flap("ebgp-flap", border, upstream, 3)
            }
        }
    }
}

/// One monitored client→echo flow.
#[derive(Debug, Clone)]
struct FlowSpec {
    /// `"AMS->SIN"`-style label.
    label: String,
    /// Client PoP.
    client: PopId,
    /// Echo server address.
    addr: u32,
}

/// Data-plane impact on one monitored flow for one event.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// `"AMS->SIN"`-style flow label.
    pub label: String,
    /// The flow's forwarding path changed across the event.
    pub rerouted: bool,
    /// The pre-event path crossed the failed element (traffic blackholed
    /// until reconvergence).
    pub hit: bool,
    /// Outage window, ms: first post-event round-trip delivery minus the
    /// event time. Zero for untouched flows.
    pub outage_ms: f64,
    /// Packets lost in the reconvergence window.
    pub lost_packets: u32,
    /// Pre-event path length, km (the geo-optimal reference).
    pub pre_km: f64,
    /// Post-event path length, km (`None` when the flow lost all routes).
    pub post_km: Option<f64>,
}

impl FlowOutcome {
    /// Post-failure path stretch vs. the geo-optimal pre-failure path.
    pub fn stretch(&self) -> Option<f64> {
        let post = self.post_km?;
        (self.pre_km > 0.0).then(|| post / self.pre_km)
    }
}

/// Everything measured for one scripted event.
#[derive(Debug, Clone)]
pub struct EventOutcome {
    /// The event, rendered (`"router-down R42"`).
    pub event: String,
    /// Control-plane reconvergence cost.
    pub stats: ConvergenceStats,
    /// The net reached true quiescence after the event (always required;
    /// a torn net panics the driver instead of being recorded).
    pub quiescent: bool,
    /// Modeled reconvergence time, ms (detection + per-message cost).
    pub conv_ms: f64,
    /// Error-severity invariant violations on the post-event RIBs
    /// (scoped to the surviving topology).
    pub verify_errors: usize,
    /// Warning-severity findings, same scope.
    pub verify_warnings: usize,
    /// Error-severity data-plane model-checker findings on the post-event
    /// forwarding graph (same scope; loops and blackholes must not exist
    /// even mid-incident).
    pub dataplane_errors: usize,
    /// Warning-severity data-plane findings, same scope.
    pub dataplane_warnings: usize,
    /// Flows whose path changed or which crossed the failed element;
    /// untouched flows are counted in `flows_monitored` only.
    pub affected: Vec<FlowOutcome>,
    /// Total monitored flows.
    pub flows_monitored: usize,
}

/// One scenario's measured steps.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (stable artefact/RNG key).
    pub name: String,
    /// Per-event measurements in script order.
    pub steps: Vec<EventOutcome>,
}

/// The failover campaign artefact.
#[derive(Debug, Clone)]
pub struct Failover {
    /// Scenario outcomes in canonical order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// Runs every scripted scenario, one parallel unit each. Each unit builds
/// a fresh world from `config` (a pure function of the master seed),
/// injects its plan step by step, and measures control plane, data plane
/// and invariants after every step.
pub fn run(config: &WorldConfig, par: Par) -> Failover {
    let scenarios = par.map(&SCENARIOS, |_, &kind| run_scenario(config, kind));
    Failover { scenarios }
}

/// Modeled reconvergence time for one event, ms. Failure events pay the
/// detection delay; restorative events converge make-before-break.
fn convergence_ms(event: FaultEvent, stats: &ConvergenceStats) -> f64 {
    let detection = match event {
        FaultEvent::SessionCut { .. }
        | FaultEvent::RouterDown { .. }
        | FaultEvent::CircuitCut { .. } => DETECTION_MS,
        FaultEvent::SessionRestore { .. }
        | FaultEvent::RouterUp { .. }
        | FaultEvent::CircuitRestore { .. } => 0.0,
    };
    detection + stats.messages as f64 * PER_MSG_MS
}

/// Whether a resolved path crosses the failed element of `event`.
fn path_hit(path: &ResolvedPath, event: FaultEvent) -> bool {
    match event {
        FaultEvent::RouterDown { router } => path.routers.contains(&router),
        FaultEvent::SessionCut { a, b } | FaultEvent::CircuitCut { a, b } => path
            .routers
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a)),
        FaultEvent::SessionRestore { .. }
        | FaultEvent::RouterUp { .. }
        | FaultEvent::CircuitRestore { .. } => false,
    }
}

fn monitor_flows(world: &World) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for (code, id) in CLIENTS {
        for echo in world.vns.echo_servers() {
            if echo.pop == PopId(id) {
                continue; // co-located: no long-haul path to disturb
            }
            flows.push(FlowSpec {
                label: format!("{code}->{}", world.vns.pop(echo.pop).spec.code),
                client: PopId(id),
                addr: echo.address(),
            });
        }
    }
    flows
}

fn run_scenario(config: &WorldConfig, kind: ScenarioKind) -> ScenarioOutcome {
    let mut world = World::build(config.clone());
    assert_control_plane(&world);
    assert_data_plane(&world);
    let plan = kind.plan(&world);
    let flows = monitor_flows(&world);
    let tree = RngTree::new(config.seed)
        .subtree("failover")
        .subtree(&plan.name);
    let mut inj = FaultInjector::new();
    let mut steps = Vec::with_capacity(plan.steps.len());

    for (step_idx, &event) in plan.steps.iter().enumerate() {
        let pre: Vec<Option<ResolvedPath>> = flows
            .iter()
            .map(|f| {
                world
                    .vns
                    .path_via_vns(&world.internet, f.client, f.addr)
                    .ok()
            })
            .collect();

        inj.apply(&mut world.internet, &world.vns, event)
            .expect("scripted event applies");
        let stats = world
            .internet
            .net
            .run(world.vns.message_budget())
            .expect("reconverges within budget");
        let quiescent = world.internet.net.is_quiescent();
        assert!(
            quiescent,
            "{}: step {step_idx} ({event}) left the net torn",
            plan.name
        );

        let scope = VerifyScope::with_dead_routers(inj.dead_routers());
        let report = verify_scoped(&world.internet, &world.vns, &scope);
        let dataplane = verify_dataplane_scoped(
            &world.internet,
            &world.vns,
            &scope,
            &DataplaneConfig::default(),
        );
        let conv_ms = convergence_ms(event, &stats);

        let mut affected = Vec::new();
        for (fi, (flow, pre_path)) in flows.iter().zip(&pre).enumerate() {
            let Some(pre_path) = pre_path else { continue };
            let post_path = world
                .vns
                .path_via_vns(&world.internet, flow.client, flow.addr)
                .ok();
            let hit = path_hit(pre_path, event);
            let rerouted = post_path
                .as_ref()
                .is_none_or(|p| p.routers != pre_path.routers);
            if !hit && !rerouted {
                continue;
            }
            let mut rng = tree.stream_args(format_args!("flow:{step_idx}:{fi}"));
            affected.push(replay_flow(
                &world,
                flow,
                pre_path,
                post_path.as_ref(),
                hit,
                conv_ms,
                &mut rng,
                &plan.name,
                step_idx,
            ));
        }

        steps.push(EventOutcome {
            event: event.to_string(),
            stats,
            quiescent,
            conv_ms,
            verify_errors: report.error_count(),
            verify_warnings: report.warning_count(),
            dataplane_errors: dataplane.error_count(),
            dataplane_warnings: dataplane.warning_count(),
            affected,
            flows_monitored: flows.len(),
        });
    }

    ScenarioOutcome {
        name: plan.name,
        steps,
    }
}

/// Replays an in-flight HD session across the pre→post path swap.
///
/// Packets sent before the event ride the pre-event path. During the
/// modeled reconvergence window, packets on a flow that crossed the
/// failed element are blackholed; an unaffected-but-rerouting flow keeps
/// using its (still valid) old path. After the window, packets ride the
/// post-event path. The outage window is measured, not assumed: the send
/// time of the first packet delivered round-trip after the event, minus
/// the event time.
#[allow(clippy::too_many_arguments)] // measurement context, not an API
fn replay_flow(
    world: &World,
    flow: &FlowSpec,
    pre: &ResolvedPath,
    post: Option<&ResolvedPath>,
    hit: bool,
    conv_ms: f64,
    rng: &mut rand::rngs::SmallRng,
    scenario: &str,
    step_idx: usize,
) -> FlowOutcome {
    let t0 = SimTime::EPOCH + Dur::from_hours(6);
    let t_event = t0 + EVENT_AT;
    let t_swap = t_event + Dur::from_millis_f64(conv_ms);
    let session_end = t0 + SESSION;

    let (mut pre_fwd, mut pre_rev) = channel_pair_args(
        world,
        pre,
        format_args!("fo:{scenario}:{step_idx}:{}:pre", flow.label),
    );
    let mut post_pair = post.map(|p| {
        channel_pair_args(
            world,
            p,
            format_args!("fo:{scenario}:{step_idx}:{}:post", flow.label),
        )
    });

    let mut lost_packets = 0u32;
    let mut first_ok_after: Option<SimTime> = None;
    for pkt in VideoSpec::HD1080.packets(t0, SESSION, rng) {
        let before_event = pkt.sent < t_event;
        let in_window = !before_event && pkt.sent < t_swap;
        if in_window && hit {
            lost_packets += 1;
            continue;
        }
        let pair = if before_event || in_window {
            Some((&mut pre_fwd, &mut pre_rev))
        } else {
            post_pair.as_mut().map(|(f, r)| (&mut *f, &mut *r))
        };
        let Some((fwd, rev)) = pair else {
            // Post-event with no route at all: everything from the event
            // onwards is lost.
            lost_packets += 1;
            continue;
        };
        let round_trip = match fwd.send(pkt.sent) {
            vns_netsim::PathOutcome::Delivered { arrival, .. } => {
                matches!(rev.send(arrival), vns_netsim::PathOutcome::Delivered { .. })
            }
            vns_netsim::PathOutcome::Lost { .. } => false,
        };
        if !before_event {
            if round_trip {
                first_ok_after.get_or_insert(pkt.sent);
            } else if in_window {
                lost_packets += 1;
            }
        }
    }

    let outage_ms = match first_ok_after {
        Some(t) => (t - t_event).as_millis_f64(),
        // Nothing came back after the event: the outage spans the rest of
        // the session.
        None => (session_end - t_event).as_millis_f64(),
    };
    FlowOutcome {
        label: flow.label.clone(),
        rerouted: post.is_none_or(|p| p.routers != pre.routers),
        hit,
        outage_ms,
        lost_packets,
        pre_km: pre.total_km(),
        post_km: post.map(ResolvedPath::total_km),
    }
}

impl Failover {
    /// Total BGP messages across every scenario step.
    pub fn total_messages(&self) -> u64 {
        self.scenarios
            .iter()
            .flat_map(|s| &s.steps)
            .map(|e| e.stats.messages)
            .sum()
    }

    /// Largest measured outage window, ms.
    pub fn max_outage_ms(&self) -> f64 {
        self.scenarios
            .iter()
            .flat_map(|s| &s.steps)
            .flat_map(|e| &e.affected)
            .map(|f| f.outage_ms)
            .fold(0.0, f64::max)
    }

    /// True when every step passed the scoped invariant suite AND the
    /// scoped data-plane model checker.
    pub fn all_verified(&self) -> bool {
        self.scenarios
            .iter()
            .flat_map(|s| &s.steps)
            .all(|e| e.verify_errors == 0 && e.dataplane_errors == 0)
    }

    /// A named scenario's outcome.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioOutcome> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for Failover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Failover: scripted control-plane faults, incremental reconvergence"
        )?;
        writeln!(
            f,
            "(detection {DETECTION_MS:.0} ms + {PER_MSG_MS:.1} ms/msg; \
             restores are make-before-break)"
        )?;
        for sc in &self.scenarios {
            writeln!(f, "\nscenario {}:", sc.name)?;
            for (i, step) in sc.steps.iter().enumerate() {
                writeln!(
                    f,
                    "  step {i}: {} | {} msgs, {} activations | conv {:.1} ms \
                     | verify {}E/{}W | dataplane {}E/{}W | {}/{} flows affected",
                    step.event,
                    step.stats.messages,
                    step.stats.activations,
                    step.conv_ms,
                    step.verify_errors,
                    step.verify_warnings,
                    step.dataplane_errors,
                    step.dataplane_warnings,
                    step.affected.len(),
                    step.flows_monitored,
                )?;
                for flow in &step.affected {
                    let post = flow
                        .post_km
                        .map_or_else(|| "unroutable".to_string(), |km| format!("{km:.0} km"));
                    let stretch = flow
                        .stretch()
                        .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
                    writeln!(
                        f,
                        "    {} {}: outage {:.1} ms, lost {}, path {:.0} km -> {} (stretch {})",
                        flow.label,
                        match (flow.hit, flow.rerouted) {
                            (true, _) => "blackholed",
                            (false, true) => "rerouted",
                            (false, false) => "touched",
                        },
                        flow.outage_ms,
                        flow.lost_packets,
                        flow.pre_km,
                        post,
                        stretch,
                    )?;
                }
            }
        }
        writeln!(
            f,
            "\nsummary: {} reconvergence messages, max outage {:.1} ms, \
             invariants post-event: {}",
            self.total_messages(),
            self.max_outage_ms(),
            if self.all_verified() {
                "clean"
            } else {
                "VIOLATED"
            }
        )
    }
}
