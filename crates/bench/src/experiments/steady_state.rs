//! Steady-state — live call churn over the service plane, with a
//! churn-under-failure phase.
//!
//! The figure campaigns measure individual probes and sessions; this
//! campaign asks the operator's question: with calls arriving in a
//! Poisson stream shaped by the diurnal demand curve, holding for
//! exponential times and hanging up, does the PoP fleet actually sustain
//! the target concurrency — and what do the loss/jitter/setup-latency
//! *percentiles* look like window over window?
//!
//! Three phases, one continuous simulated clock:
//!
//! 1. **Steady churn** — the system ramps from empty to Little's-law
//!    equilibrium (`concurrency = rate × hold`) and holds it. The
//!    sustained-concurrency figure is the post-warmup minimum of
//!    end-of-window concurrency over this phase.
//! 2. **Churn under failure** — the busiest PoP's transit border loses its
//!    BGP control plane ([`FaultEvent::RouterDown`]); BGP reconverges
//!    incrementally; both scoped verifier stages re-run (control-plane
//!    invariants and the data-plane model checker); the path table is
//!    rebuilt for the new routing epoch and re-certified against the
//!    forwarding graph; every live session on the PoP is
//!    torn down and its admission capacity drops to zero. Churn continues:
//!    landing traffic spills to the nearest PoPs or is rejected.
//! 3. **Recovery** — the router comes back, routing reconverges again, the
//!    path table is rebuilt once more, capacity is restored, and the fleet
//!    refills.
//!
//! All bookkeeping runs on the deterministic event loop; per-call
//! measurement fans out over `--threads N` workers with call-id-derived
//! RNG streams, so the artefact is byte-identical at any thread count.

use std::fmt;

use vns_core::{FaultEvent, FaultInjector, PopId};
use vns_netsim::diurnal::DiurnalShape;
use vns_netsim::{DiurnalProfile, Dur, Par, RngTree};
use vns_service::{
    EndpointTable, Orchestrator, PathTable, ServiceConfig, ServiceEnv, ServiceTelemetry,
};
use vns_verify::{
    verify_dataplane_scoped, verify_dataplane_with_service, verify_scoped, DataplaneConfig,
    VerifyScope,
};

use crate::campaign::{assert_control_plane, assert_data_plane};
use crate::world::{World, WorldConfig};

/// Telemetry window width.
const WINDOW: Dur = Dur::from_mins(5);

/// Windows run with the PoP failed, then again after recovery.
const FAULT_WINDOWS: u64 = 2;
const RECOVERY_WINDOWS: u64 = 2;

/// Campaign sizing, derived from the CLI's `--sessions`/`--days` knobs.
#[derive(Debug, Clone, Copy)]
pub struct SteadyStateOpts {
    /// Concurrent sessions the plane is sized to sustain (Little's law
    /// pegs the diurnal-trough arrival rate to this).
    pub target_concurrent: u64,
    /// Steady-phase windows (5 minutes each).
    pub windows: u64,
}

impl SteadyStateOpts {
    /// Maps the CLI knobs: `--sessions 40` (default) targets 128 000
    /// concurrent sessions; `--days` scales the steady horizon (2.0 days →
    /// ten 5-minute windows, floor six).
    pub fn from_cli(sessions: usize, days: f64) -> Self {
        Self {
            target_concurrent: (sessions as u64) * 3200,
            windows: ((days * 5.0).round() as u64).max(6),
        }
    }
}

/// The full campaign artefact.
#[derive(Debug)]
pub struct SteadyStateResult {
    /// Windowed telemetry across all three phases.
    pub telemetry: ServiceTelemetry,
    /// Steady-phase windows (phase boundaries for the artefact).
    pub steady_windows: u64,
    /// Sustained concurrency over the steady phase (post-warmup minimum) —
    /// the headline number.
    pub steady_sustained: u64,
    /// Concurrency target the plane was sized for.
    pub target_concurrent: u64,
    /// Code of the PoP failed in phase 2.
    pub victim: &'static str,
    /// Sessions force-torn when the PoP failed.
    pub torn_down: u64,
    /// BGP messages delivered during fail + recovery reconvergence.
    pub reconvergence_messages: u64,
    /// Scoped-verify errors after each routing change (must be zero).
    pub verify_errors: usize,
    /// Scoped data-plane model-checker errors after each routing change,
    /// including the WAYPOINT cross-check of every rebuilt path table
    /// (must be zero).
    pub dataplane_errors: usize,
    /// Endpoints with an anycast landing during the fault epoch / total.
    pub routable_during_fault: (usize, usize),
}

impl SteadyStateResult {
    /// Whether every routing epoch passed the scoped invariant suite and
    /// the scoped data-plane model checker.
    pub fn all_verified(&self) -> bool {
        self.verify_errors == 0 && self.dataplane_errors == 0
    }

    /// Rejection + unreachable rate during the fault windows, percent.
    pub fn fault_denied_pct(&self) -> f64 {
        let fault = self
            .telemetry
            .windows
            .iter()
            .skip(self.steady_windows as usize)
            .take(FAULT_WINDOWS as usize);
        let (mut denied, mut arrivals) = (0u64, 0u64);
        for w in fault {
            denied += w.rejected + w.unreachable;
            arrivals += w.arrivals;
        }
        if arrivals == 0 {
            0.0
        } else {
            100.0 * denied as f64 / arrivals as f64
        }
    }
}

impl fmt::Display for SteadyStateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# steady-state: live call churn (target {} concurrent; phases: \
             {} steady + {FAULT_WINDOWS} failed[{}] + {RECOVERY_WINDOWS} recovered)",
            self.target_concurrent, self.steady_windows, self.victim
        )?;
        write!(f, "{}", self.telemetry)?;
        writeln!(
            f,
            "steady phase: sustained {} concurrent (target {}; {})",
            self.steady_sustained,
            self.target_concurrent,
            if self.steady_sustained >= self.target_concurrent * 4 / 5 {
                "OK"
            } else {
                "UNDER TARGET"
            }
        )?;
        writeln!(
            f,
            "failure phase: {} down, {} sessions torn, {}/{} endpoints routable, \
             {:.2}% of arrivals denied, {} BGP messages to reconverge, \
             verify errors {}, dataplane errors {}",
            self.victim,
            self.torn_down,
            self.routable_during_fault.0,
            self.routable_during_fault.1,
            self.fault_denied_pct(),
            self.reconvergence_messages,
            self.verify_errors,
            self.dataplane_errors,
        )
    }
}

/// Runs the steady-state campaign. Builds its own world from `config`
/// because the failure phase mutates the control plane.
pub fn run(config: &WorldConfig, opts: SteadyStateOpts, par: Par) -> SteadyStateResult {
    let mut world = World::build(config.clone());
    assert_control_plane(&world);
    assert_data_plane(&world);
    let endpoints = EndpointTable::build(&world.internet, &world.vns);
    let mut paths = PathTable::build(&world.internet, &world.vns, &endpoints);
    let total_endpoints = endpoints.len();

    // Demand follows a mixed business/residential day; the horizon and the
    // mean hold are tied (horizon ≈ 3.3 holds) so the ramp-up fits in the
    // warmup windows at any --days.
    let horizon_ms = WINDOW.as_millis_f64() * opts.windows as f64;
    let hold = Dur::from_millis_f64(horizon_ms / 3.3);
    let profile = DiurnalProfile::new(DiurnalShape::Mixed, 0.55, 0.35, 0.0);
    let mut cfg = ServiceConfig::sized(opts.target_concurrent, hold, WINDOW, profile);
    cfg.warmup_windows = (opts.windows * 3 / 5) as usize;
    // Measure every 4th call's setup (the stride divides qos_stride, so
    // QoS sampling is unaffected): at 6×10⁵ arrivals the percentiles are
    // indistinguishable and the campaign stays inside the perf budget.
    cfg.setup_stride = 4;
    cfg.qos_stride = 64;
    let tree = RngTree::new(config.seed).subtree("steady-state");
    let mut orch = Orchestrator::new(&world.vns, cfg, tree);

    // Phase 1: steady churn.
    run_phase(&mut orch, &world, &endpoints, &paths, opts.windows, par);
    let steady_sustained = orch.telemetry().sustained_concurrent();

    // Phase 2: fail the busiest PoP — service plane and control plane.
    let victim_id = busiest_pop(&orch);
    let victim = world.vns.pop(victim_id).code();
    let border = world.vns.pop(victim_id).borders[0];
    let mut inj = FaultInjector::new();
    let mut verify_errors = 0;
    let mut dataplane_errors = 0;
    let mut messages = 0;
    // Applies one fault event, reconverges, and re-runs both verifier
    // stages scoped to the surviving topology.
    let apply = |world: &mut World, inj: &mut FaultInjector, ev| {
        inj.apply(&mut world.internet, &world.vns, ev)
            .expect("scripted event applies");
        let stats = world
            .internet
            .net
            .run(world.vns.message_budget())
            .expect("reconverges within budget");
        assert!(
            world.internet.net.is_quiescent(),
            "steady-state: {ev} left the net torn"
        );
        let scope = VerifyScope::with_dead_routers(inj.dead_routers());
        let errors = verify_scoped(&world.internet, &world.vns, &scope).error_count();
        let dp = verify_dataplane_scoped(
            &world.internet,
            &world.vns,
            &scope,
            &DataplaneConfig::default(),
        )
        .error_count();
        (stats.messages, errors, dp)
    };
    // Re-certifies a freshly rebuilt path table against the forwarding
    // graph (the WAYPOINT cross-check) for the new routing epoch.
    let certify_tables = |world: &World, inj: &FaultInjector, paths: &PathTable| {
        let scope = VerifyScope::with_dead_routers(inj.dead_routers());
        verify_dataplane_with_service(
            &world.internet,
            &world.vns,
            &scope,
            &DataplaneConfig::default(),
            &endpoints,
            paths,
        )
        .error_count()
    };
    let (m, e, dp) = apply(
        &mut world,
        &mut inj,
        FaultEvent::RouterDown { router: border },
    );
    messages += m;
    verify_errors += e;
    dataplane_errors += dp;
    let (prev_cap, torn_down) = orch.fail_pop(victim_id).expect("victim is a known PoP");
    paths = PathTable::build(&world.internet, &world.vns, &endpoints);
    dataplane_errors += certify_tables(&world, &inj, &paths);
    let routable_during_fault = (paths.routable_endpoints(), total_endpoints);
    run_phase(&mut orch, &world, &endpoints, &paths, FAULT_WINDOWS, par);

    // Phase 3: recovery.
    let (m, e, dp) = apply(
        &mut world,
        &mut inj,
        FaultEvent::RouterUp { router: border },
    );
    messages += m;
    verify_errors += e;
    dataplane_errors += dp;
    orch.restore_pop(victim_id, prev_cap)
        .expect("victim is a known PoP");
    paths = PathTable::build(&world.internet, &world.vns, &endpoints);
    dataplane_errors += certify_tables(&world, &inj, &paths);
    run_phase(&mut orch, &world, &endpoints, &paths, RECOVERY_WINDOWS, par);

    let steady_windows = opts.windows;
    let target_concurrent = opts.target_concurrent;
    SteadyStateResult {
        telemetry: orch.into_telemetry(),
        steady_windows,
        steady_sustained,
        target_concurrent,
        victim,
        torn_down,
        reconvergence_messages: messages,
        verify_errors,
        dataplane_errors,
        routable_during_fault,
    }
}

fn run_phase(
    orch: &mut Orchestrator,
    world: &World,
    endpoints: &EndpointTable,
    paths: &PathTable,
    windows: u64,
    par: Par,
) {
    let env = ServiceEnv {
        internet: &world.internet,
        vns: &world.vns,
        factory: &world.factory,
        endpoints,
        paths,
    };
    orch.run_windows(&env, windows, par);
}

/// The PoP with the highest occupancy (lowest id on ties).
fn busiest_pop(orch: &Orchestrator) -> PopId {
    orch.admission()
        .occupancy_rows()
        .iter()
        .copied()
        .max_by_key(|&(p, occ, _)| (occ, std::cmp::Reverse(p)))
        .map(|(p, _, _)| p)
        .expect("pops exist")
}
