//! Table 1 — average loss from Amsterdam to ASes of different types in
//! different regions.
//!
//! Paper values (percent):
//!
//! | Region | LTP | STP | CAHP | EC |
//! |---|---|---|---|---|
//! | AP | 0.45 | 1.30 | 2.80 | 1.92 |
//! | EU | 0.11 | 0.62 | 1.58 | 0.52 |
//! | NA | 0.57 | 0.49 | 0.46 | 0.55 |
//!
//! Shape requirements: AP ranks CAHP > EC > STP > LTP; EU likewise with
//! EC slightly above STP-or-so; NA is flat ("the difference between AS
//! types is more blurred" because NA LTPs also sell residential access).

use std::collections::BTreeMap;

use vns_core::PopId;
use vns_geo::Region;
use vns_stats::Table;
use vns_topo::AsType;

use crate::experiments::fig11::LastMileData;

/// The reproduced table.
#[derive(Debug)]
pub struct Table1 {
    /// `avg[(region, type)]` in percent, Amsterdam vantage.
    pub avg: BTreeMap<(Region, AsType), f64>,
    /// Printable table.
    pub table: Table,
}

/// Paper's reference values for side-by-side printing.
pub const PAPER: [(Region, [f64; 4]); 3] = [
    (Region::AsiaPacific, [0.45, 1.30, 2.80, 1.92]),
    (Region::Europe, [0.11, 0.62, 1.58, 0.52]),
    (Region::NorthAmerica, [0.57, 0.49, 0.46, 0.55]),
];

/// Reduces the shared campaign from the Amsterdam vantage.
pub fn run(data: &LastMileData) -> Table1 {
    // One ledger unit per probe-train record reduced.
    vns_netsim::ledger::add_units(data.records.len() as u64);
    let ams = PopId(9);
    let mut sums: BTreeMap<(Region, AsType), (u64, u64)> = BTreeMap::new();
    for rec in &data.records {
        if rec.pop != ams {
            continue;
        }
        let host = &data.hosts[rec.host];
        let e = sums.entry((host.region, host.ty)).or_default();
        e.0 += u64::from(rec.train.lost);
        e.1 += u64::from(rec.train.sent);
    }
    let avg: BTreeMap<(Region, AsType), f64> = sums
        .into_iter()
        .map(|(k, (l, s))| (k, 100.0 * l as f64 / s.max(1) as f64))
        .collect();

    let mut table = Table::new(["Region", "LTP", "STP", "CAHP", "EC"]);
    for (region, paper) in PAPER {
        let mut row = vec![region.code().to_string()];
        for (i, ty) in AsType::ALL.iter().enumerate() {
            let got = avg.get(&(region, *ty)).copied().unwrap_or(f64::NAN);
            row.push(format!("{got:.2}% (paper {:.2}%)", paper[i]));
        }
        table.push(row);
    }
    Table1 { avg, table }
}

impl Table1 {
    /// Measured value (percent).
    pub fn loss(&self, region: Region, ty: AsType) -> f64 {
        self.avg.get(&(region, ty)).copied().unwrap_or(f64::NAN)
    }
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "## Table 1 — average loss from Amsterdam by AS type and region"
        )?;
        writeln!(f, "{}", self.table)
    }
}
