//! Fig 9 — video loss: internal network vs transit.
//!
//! Method (Sec 5.1): clients at PoPs stream 2-minute HD recordings to echo
//! servers in EU, NA and AP, simultaneously through VNS ("I") and through
//! upstream transit ("T"); CCDF of per-stream loss percentage. The paper's
//! reference lines: users complain above 0.15 % loss; telepresence wants
//! ≤ 0.1 %. Headline numbers: streams with > 0.15 % loss to AP through
//! transit: ~10 % (AMS), ~5 % (SJS), ~43 % (SYD); through VNS: ~0.7 %,
//! ~0.8 %, 0 %.

use std::collections::BTreeMap;

use vns_core::PopId;
use vns_geo::Region;
use vns_media::{SessionReport, VideoSpec};
use vns_netsim::{Dur, Par, SimTime};
use vns_stats::{Ccdf, Figure, Series};

use crate::campaign::{media_campaign, MediaArm};
use crate::world::World;

/// The paper's three plotted clients.
pub const CLIENTS: [(&str, u8); 3] = [("AMS", 9), ("SJS", 1), ("SYD", 11)];

/// Per-(client, region, via) loss distribution plus raw sessions.
#[derive(Debug)]
pub struct Fig9 {
    /// One figure per client (a, b, c panels).
    pub figures: Vec<Figure>,
    /// Raw session outcomes for reuse by Fig 10 / jitter.
    pub sessions: Vec<(MediaArm, SessionReport)>,
    /// `((client code, region code, via_vns), fraction of streams with
    /// loss > 0.15 %)`.
    pub over_150m: BTreeMap<(String, String, bool), f64>,
}

/// Runs the campaign with `sessions_per_arm` two-minute 1080p sessions per
/// (client, echo, via) arm; arms fan out over `par`.
pub fn run(world: &World, sessions_per_arm: usize, par: Par) -> Fig9 {
    let clients: Vec<PopId> = CLIENTS.iter().map(|(_, id)| PopId(*id)).collect();
    let start = SimTime::EPOCH + Dur::from_hours(6);
    let sessions = media_campaign(
        world,
        &clients,
        VideoSpec::HD1080,
        sessions_per_arm,
        start,
        par,
    );

    let mut figures = Vec::new();
    let mut over_150m = BTreeMap::new();
    for (code, id) in CLIENTS {
        let mut fig = Figure::new(
            format!("Fig 9 ({code})"),
            format!("CCDF of stream loss percentage from {code} (T = transit, I = VNS)"),
            "Loss percentage",
            "CCDF",
        );
        for region in [Region::AsiaPacific, Region::Europe, Region::NorthAmerica] {
            for via_vns in [false, true] {
                let losses: Vec<f64> = sessions
                    .iter()
                    .filter(|(arm, _)| {
                        arm.client == PopId(id) && arm.region == region && arm.via_vns == via_vns
                    })
                    .map(|(_, r)| r.rt_loss_pct())
                    .collect();
                if losses.is_empty() {
                    continue;
                }
                let n = losses.len() as f64;
                let over = losses.iter().filter(|&&l| l > 0.15).count() as f64 / n;
                over_150m.insert((code.to_string(), region.code().to_string(), via_vns), over);
                let ccdf = Ccdf::new(losses);
                let label = format!("{}-{}", if via_vns { "I" } else { "T" }, region.code());
                fig.push(Series::new(label, ccdf.sample_log(0.001, 10.0, 25)));
            }
        }
        figures.push(fig);
    }
    Fig9 {
        figures,
        sessions,
        over_150m,
    }
}

impl Fig9 {
    /// Fraction of streams above 0.15 % loss for a (client, region, via)
    /// triple. Linear scan rather than a keyed lookup: the map holds at
    /// most (clients × regions × 2) ≈ 18 entries and a `get` would clone
    /// both strings to build the key.
    pub fn frac_over_150m(&self, client: &str, region: &str, via_vns: bool) -> f64 {
        self.over_150m
            .iter()
            .find(|((c, r, v), _)| c == client && r == region && *v == via_vns)
            .map_or(0.0, |(_, frac)| *frac)
    }

    /// Mean stream loss over all sessions of one arm kind.
    pub fn mean_loss(&self, via_vns: bool) -> f64 {
        let (sum, n) = self
            .sessions
            .iter()
            .filter(|(a, _)| a.via_vns == via_vns)
            .fold((0.0, 0usize), |(s, n), (_, r)| (s + r.rt_loss_pct(), n + 1));
        sum / n.max(1) as f64
    }
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fig in &self.figures {
            writeln!(f, "{fig}")?;
        }
        writeln!(f, "streams with loss > 0.15%:")?;
        for ((client, region, via), frac) in &self.over_150m {
            writeln!(
                f,
                "  {client} -> {region} via {}: {}",
                if *via { "VNS" } else { "transit" },
                vns_stats::pct(*frac)
            )?;
        }
        writeln!(
            f,
            "mean stream loss: transit {:.3}%, VNS {:.4}% (paper: VNS consistently lower)",
            self.mean_loss(false),
            self.mean_loss(true)
        )
    }
}
