//! Fig 10 — the nature of loss: magnitude vs temporal spread.
//!
//! Each 2-minute session is split into 24 five-second slots; the paper
//! plots per-session loss percentage against the number of lossy slots.
//! Through upstreams: a linear "random baseline" plus bursty outliers in
//! the upper-left (short convergence blackouts) and upper-right
//! (sustained congestion). Through VNS: both the baseline and the
//! outliers disappear.

use vns_core::PopId;
use vns_media::SessionReport;
use vns_stats::{Figure, Series};

use crate::campaign::MediaArm;

/// Classification counts for one arm kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossNature {
    /// Sessions with zero loss.
    pub clean: usize,
    /// Sessions with loss ≥ 1 % concentrated in ≤ 8 slots (bursty,
    /// upper-left).
    pub bursty_outliers: usize,
    /// Sessions with loss ≥ 1 % spread over ≥ 16 slots (sustained
    /// congestion, upper-right).
    pub sustained_outliers: usize,
    /// All other lossy sessions (the random baseline).
    pub baseline: usize,
}

impl LossNature {
    /// Total sessions.
    pub fn total(&self) -> usize {
        self.clean + self.bursty_outliers + self.sustained_outliers + self.baseline
    }
}

/// The figure plus classification.
#[derive(Debug)]
pub struct Fig10 {
    /// Scatter through upstreams (x = lossy slots, y = loss %).
    pub upstream: Figure,
    /// Scatter through VNS.
    pub vns: Figure,
    /// Classification through upstreams.
    pub upstream_nature: LossNature,
    /// Classification through VNS.
    pub vns_nature: LossNature,
}

fn classify(reports: &[&SessionReport]) -> LossNature {
    let mut n = LossNature::default();
    for r in reports {
        let loss = r.rt_loss_pct();
        let slots = r.lossy_slots();
        if loss == 0.0 {
            n.clean += 1;
        } else if loss >= 1.0 && slots <= 8 {
            n.bursty_outliers += 1;
        } else if loss >= 1.0 && slots >= 16 {
            n.sustained_outliers += 1;
        } else {
            n.baseline += 1;
        }
    }
    n
}

/// Builds the Fig 10 view from the Fig 9 session set (Amsterdam client,
/// all six echo servers — the paper's presented perspective).
pub fn run(sessions: &[(MediaArm, SessionReport)]) -> Fig10 {
    // One ledger unit per session report scanned.
    vns_netsim::ledger::add_units(sessions.len() as u64);
    let ams = PopId(9);
    let scatter = |via: bool, name: &str| {
        let pts: Vec<(f64, f64)> = sessions
            .iter()
            .filter(|(a, _)| a.client == ams && a.via_vns == via)
            .map(|(_, r)| (r.lossy_slots() as f64, r.rt_loss_pct().max(1e-3)))
            .collect();
        let mut fig = Figure::new(
            format!("Fig 10 ({name})"),
            format!("Loss percentage vs number of lossy 5 s slots, Amsterdam {name}"),
            "# of lossy slots",
            "Loss percentage",
        );
        fig.push(Series::new("Sessions", pts));
        fig
    };
    let upstream = scatter(false, "through upstreams");
    let vns = scatter(true, "through VNS");
    let ups: Vec<&SessionReport> = sessions
        .iter()
        .filter(|(a, _)| a.client == ams && !a.via_vns)
        .map(|(_, r)| r)
        .collect();
    let ivns: Vec<&SessionReport> = sessions
        .iter()
        .filter(|(a, _)| a.client == ams && a.via_vns)
        .map(|(_, r)| r)
        .collect();
    Fig10 {
        upstream,
        vns,
        upstream_nature: classify(&ups),
        vns_nature: classify(&ivns),
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.upstream)?;
        writeln!(f, "{}", self.vns)?;
        let p = &self.upstream_nature;
        let v = &self.vns_nature;
        writeln!(
            f,
            "upstream sessions: {} clean, {} baseline, {} bursty outliers, {} sustained outliers",
            p.clean, p.baseline, p.bursty_outliers, p.sustained_outliers
        )?;
        writeln!(
            f,
            "VNS sessions:      {} clean, {} baseline, {} bursty outliers, {} sustained outliers",
            v.clean, v.baseline, v.bursty_outliers, v.sustained_outliers
        )?;
        writeln!(
            f,
            "(paper: VNS eliminates both the multi-slot baseline and the bursty outliers)"
        )
    }
}
