//! Fig 11 — loss and geography in the last mile.
//!
//! Method (Sec 5.2.1): 600 hosts (50 per AS type per region over EU/NA/AP),
//! probed from 10 PoPs with 100-packet back-to-back trains every 10
//! minutes for three weeks; probes leave VNS immediately. The figure shows
//! the average loss per (vantage PoP, destination region). Key shapes:
//! distance raises loss; EU→AP is 1.6–3.3× AP→AP; AP→EU is 2.1–14.2×
//! EU→EU; SJS→AP ≈ AP→AP (west-coast peering); London→EU is ~2× other EU
//! PoPs (the US-upstream detour).

use std::collections::BTreeMap;

use vns_core::PopId;
use vns_geo::Region;
use vns_netsim::{Dur, Par};
use vns_stats::Table;

use crate::campaign::{lastmile_campaign, select_hosts, HostMeta, TrainRecord};
use crate::world::World;

/// The 10 probing PoPs of Sec 5.2 (all but Seattle), by code.
pub const VANTAGES: [(&str, u8); 10] = [
    ("ATL", 3),
    ("ASH", 5),
    ("SJS", 1),
    ("AMS", 9),
    ("FRA", 6),
    ("LON", 10),
    ("OSL", 4),
    ("HKG", 8),
    ("SIN", 7),
    ("SYD", 11),
];

/// The campaign data shared with Fig 12 and Table 1.
#[derive(Debug)]
pub struct LastMileData {
    /// Probed hosts.
    pub hosts: Vec<HostMeta>,
    /// All train results.
    pub records: Vec<TrainRecord>,
}

/// Runs the shared campaign: `per_cell` hosts per (type, region), trains
/// every `interval` over `span`; (vantage, host) units fan out over `par`.
pub fn run_campaign(
    world: &World,
    per_cell: usize,
    interval: Dur,
    span: Dur,
    par: Par,
) -> LastMileData {
    let hosts = select_hosts(world, per_cell);
    let pops: Vec<PopId> = VANTAGES.iter().map(|(_, id)| PopId(*id)).collect();
    let records = lastmile_campaign(world, &pops, &hosts, interval, span, par);
    LastMileData { hosts, records }
}

/// Fig 11 proper: average loss percentage per (PoP, destination region).
#[derive(Debug)]
pub struct Fig11 {
    /// `avg[(pop code, region code)]` in percent.
    pub avg: BTreeMap<(String, String), f64>,
    /// The printable table (rows = PoPs, cols = dest regions).
    pub table: Table,
}

/// Reduces the campaign into the figure.
pub fn run(data: &LastMileData) -> Fig11 {
    let mut sums: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for rec in &data.records {
        let host = &data.hosts[rec.host];
        let code = VANTAGES
            .iter()
            .find(|(_, id)| PopId(*id) == rec.pop)
            .map_or("?", |(c, _)| *c);
        let key = (code.to_string(), host.region.code().to_string());
        let e = sums.entry(key).or_default();
        e.0 += u64::from(rec.train.lost);
        e.1 += u64::from(rec.train.sent);
    }
    let avg: BTreeMap<(String, String), f64> = sums
        .into_iter()
        .map(|(k, (lost, sent))| (k, 100.0 * lost as f64 / sent.max(1) as f64))
        .collect();

    let mut table = Table::new(["PoP", "->AP", "->EU", "->NA"]);
    for (code, _) in VANTAGES {
        let get = |r: Region| {
            avg.get(&(code.to_string(), r.code().to_string()))
                .map(|v| format!("{v:.2}%"))
                .unwrap_or_default()
        };
        table.push([
            code.to_string(),
            get(Region::AsiaPacific),
            get(Region::Europe),
            get(Region::NorthAmerica),
        ]);
    }
    Fig11 { avg, table }
}

impl Fig11 {
    /// Average loss (percent) from a PoP code to a region.
    pub fn loss(&self, pop: &str, region: Region) -> Option<f64> {
        self.avg
            .get(&(pop.to_string(), region.code().to_string()))
            .copied()
    }

    /// Mean over several PoPs.
    pub fn mean_loss(&self, pops: &[&str], region: Region) -> f64 {
        let v: Vec<f64> = pops.iter().filter_map(|p| self.loss(p, region)).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "## Fig 11 — average last-mile loss by PoP and destination region"
        )?;
        writeln!(f, "{}", self.table)?;
        let eu_pops = ["AMS", "FRA", "OSL"];
        let ap_pops = ["HKG", "SIN", "SYD"];
        let eu_to_ap = self.mean_loss(&eu_pops, Region::AsiaPacific);
        let ap_to_ap = self.mean_loss(&ap_pops, Region::AsiaPacific);
        let ap_to_eu = self.mean_loss(&ap_pops, Region::Europe);
        let eu_to_eu = self.mean_loss(&eu_pops, Region::Europe);
        writeln!(
            f,
            "EU->AP / AP->AP = {:.2} (paper: 1.6–3.3)",
            eu_to_ap / ap_to_ap.max(1e-9)
        )?;
        writeln!(
            f,
            "AP->EU / EU->EU = {:.2} (paper: 2.1–14.2, London excluded)",
            ap_to_eu / eu_to_eu.max(1e-9)
        )?;
        let lon = self.loss("LON", Region::Europe).unwrap_or(0.0);
        writeln!(
            f,
            "LON->EU = {lon:.2}% vs other-EU->EU = {eu_to_eu:.2}% (paper: London ≈ 2×, the US-upstream detour)"
        )
    }
}
