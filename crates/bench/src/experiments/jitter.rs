//! Sec 5.1.1 — jitter.
//!
//! "Jitter is sub-10 ms in 99 % of the sent 1080p streams; 720p streams
//! experience more jitter since they consist of fewer video packets
//! (sub-10 ms in 97 %). Measured jitter is mostly below 20 ms … differences
//! between videos sent through VNS and those sent through upstreams are
//! negligible."

use vns_core::PopId;
use vns_media::VideoSpec;
use vns_netsim::{Dur, Par, SimTime};

use crate::campaign::media_campaign;
use crate::world::World;

/// Jitter summary for one definition.
#[derive(Debug, Clone, Copy)]
pub struct JitterStats {
    /// Streams measured.
    pub streams: usize,
    /// Fraction with peak smoothed jitter < 10 ms.
    pub sub_10ms: f64,
    /// Fraction with peak smoothed jitter < 20 ms.
    pub sub_20ms: f64,
    /// Mean peak jitter, ms.
    pub mean_ms: f64,
}

/// The experiment result.
#[derive(Debug)]
pub struct Jitter {
    /// 1080p stats (VNS, transit).
    pub hd1080: (JitterStats, JitterStats),
    /// 720p stats (VNS, transit).
    pub hd720: (JitterStats, JitterStats),
}

fn reduce(reports: Vec<f64>) -> JitterStats {
    let n = reports.len();
    let sub10 = reports.iter().filter(|&&j| j < 10.0).count() as f64 / n.max(1) as f64;
    let sub20 = reports.iter().filter(|&&j| j < 20.0).count() as f64 / n.max(1) as f64;
    JitterStats {
        streams: n,
        sub_10ms: sub10,
        sub_20ms: sub20,
        mean_ms: reports.iter().sum::<f64>() / n.max(1) as f64,
    }
}

/// Runs jitter measurement for both definitions; arms fan out over `par`.
pub fn run(world: &World, sessions_per_arm: usize, par: Par) -> Jitter {
    let clients = [PopId(9), PopId(1), PopId(11)];
    let start = SimTime::EPOCH + Dur::from_hours(8);
    let mut per_def = Vec::new();
    for spec in [VideoSpec::HD1080, VideoSpec::HD720] {
        let sessions = media_campaign(world, &clients, spec, sessions_per_arm, start, par);
        let grab = |via: bool| {
            reduce(
                sessions
                    .iter()
                    .filter(|(a, r)| a.via_vns == via && r.returned > 0)
                    .map(|(_, r)| r.jitter_max_ms)
                    .collect(),
            )
        };
        per_def.push((grab(true), grab(false)));
    }
    Jitter {
        hd1080: per_def[0],
        hd720: per_def[1],
    }
}

impl std::fmt::Display for Jitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## Sec 5.1.1 — jitter")?;
        for (name, (vns, transit), paper) in
            [("1080p", self.hd1080, "99%"), ("720p", self.hd720, "97%")]
        {
            writeln!(
                f,
                "{name}: sub-10ms in {} (VNS) / {} (transit), sub-20ms {} / {} — paper: sub-10ms in {paper}, VNS ≈ transit",
                vns_stats::pct(vns.sub_10ms),
                vns_stats::pct(transit.sub_10ms),
                vns_stats::pct(vns.sub_20ms),
                vns_stats::pct(transit.sub_20ms),
            )?;
        }
        Ok(())
    }
}
