//! Adversarial — the attack corpus vs the two-stage verifier, with a
//! measured catch rate.
//!
//! PR-5's fault campaigns established that the network *recovers from
//! accidents*; this campaign asks whether the verifier *detects malice*.
//! Each work unit builds a fresh converged geo world, launches one attack
//! from [`vns_core::AttackKind`]'s corpus (prefix hijacks, sub-prefix
//! interception with forged registry cover, a valley-violating route leak,
//! GeoIP feed poisoning, an eBGP flap storm, Byzantine RIB corruptions),
//! reconverges incrementally, and then measures two planes:
//!
//! * **data-plane damage** — monitored client→echo flows are re-resolved
//!   and the affected ones replay an HD session over the post-attack path
//!   (lost packets, path stretch); every external client prefix's anycast
//!   landing is re-resolved (shifted / lost landings); a short live call
//!   slice runs on the attacked service plane (rejected / unreachable
//!   arrivals);
//! * **detection** — both verifier stages re-run on the post-attack RIBs
//!   and the campaign records *which* invariant fired, per attack — the
//!   detection matrix. An attack counts as detected only when every
//!   invariant its kind declares ([`AttackKind::expected_invariants`])
//!   produced at least one error-severity finding.
//!
//! Two un-attacked control rows (geo and hot-potato) pin the
//! false-positive side: a verifier that cries wolf on a clean world would
//! make every detection above meaningless. The flap storm is the corpus's
//! documented honest miss — it fully restores every session, so a clean
//! converged verdict is *correct*, and the headline catch rate charges it
//! against the corpus anyway (9/10 = 90%).
//!
//! Each unit builds its own world from the shared [`WorldConfig`] and
//! derives its RNG streams from `(seed, "adversarial", attack name)`, so
//! the artefact is byte-identical at any `--threads N`.

use std::collections::BTreeMap;
use std::fmt;

use vns_bgp::{ConvergenceStats, Prefix};
use vns_core::{launch_attack, AttackKind, PopId, RoutingMode};
use vns_media::VideoSpec;
use vns_netsim::diurnal::DiurnalShape;
use vns_netsim::{DiurnalProfile, Dur, Par, RngTree, SimTime};
use vns_service::{EndpointTable, Orchestrator, PathTable, ServiceConfig, ServiceEnv};
use vns_topo::ResolvedPath;
use vns_verify::{
    verify_dataplane_scoped, verify_scoped, DataplaneConfig, Invariant, Severity, VerifyScope,
};

use crate::campaign::{assert_control_plane, assert_data_plane, channel_pair_args};
use crate::world::{World, WorldConfig};

/// Replayed session length per affected flow (~427 pkt/s at HD1080).
const SESSION: Dur = Dur::from_secs(10);

/// Monitored clients (the failover campaign's three vantage PoPs).
const CLIENTS: [(&str, u8); 3] = [("AMS", 9), ("SJS", 1), ("SYD", 11)];

/// External last-mile prefixes sampled as egress targets per client PoP
/// (geo poisoning and Byzantine corruptions damage egress paths, which
/// the intra-VNS echo flows never cross).
const EXTERNAL_TARGETS: usize = 6;

/// Live-call slice sizing: two 2-minute windows against a modest target,
/// enough to surface rejected/unreachable arrivals without fig9-scale
/// cost.
const CALL_TARGET: u64 = 1200;
const CALL_HOLD: Dur = Dur::from_mins(4);
const CALL_WINDOW: Dur = Dur::from_mins(2);
const CALL_WINDOWS: u64 = 2;

/// Error-severity finding counts per invariant code, in report order.
pub type FiredCounts = Vec<(&'static str, usize)>;

/// An un-attacked control row (the false-positive side of the matrix).
#[derive(Debug, Clone)]
pub struct CleanRow {
    /// Hot-potato mode (else geo cold-potato).
    pub hot: bool,
    /// Error-severity findings on the clean world (must be empty).
    pub fired: FiredCounts,
}

impl CleanRow {
    /// Stable row label.
    pub fn label(&self) -> &'static str {
        if self.hot {
            "clean-hot"
        } else {
            "clean-geo"
        }
    }

    /// Total error-severity findings (any finding is a false positive).
    pub fn findings(&self) -> usize {
        self.fired.iter().map(|(_, n)| n).sum()
    }
}

/// Everything measured for one attack.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Which attack ran.
    pub kind: AttackKind,
    /// Concrete staging (victim, attacker, sessions touched).
    pub detail: String,
    /// Aggregated reconvergence work across the attack's incremental runs.
    pub stats: ConvergenceStats,
    /// Discrete adversarial actions applied.
    pub events: usize,
    /// Error-severity finding counts per invariant, post-attack.
    pub fired: FiredCounts,
    /// Monitored client→echo flows.
    pub flows_monitored: usize,
    /// Flows whose forwarding path changed across the attack.
    pub flows_rerouted: usize,
    /// Flows that lost all routes.
    pub flows_unroutable: usize,
    /// Packets sent replaying affected flows post-attack.
    pub replay_sent: u64,
    /// Packets lost in those replays (unroutable flows lose everything).
    pub replay_lost: u64,
    /// Worst post/pre path-length stretch over rerouted flows.
    pub worst_stretch: Option<f64>,
    /// External client prefixes with a pre-attack anycast landing.
    pub landings_total: usize,
    /// Landings that moved to a different PoP.
    pub landings_shifted: usize,
    /// Landings lost entirely (no PoP reachable, or delivery off-VNS).
    pub landings_lost: usize,
    /// Call-slice arrivals offered post-attack.
    pub calls_offered: u64,
    /// Arrivals rejected for capacity.
    pub calls_rejected: u64,
    /// Arrivals that could not reach any relay PoP.
    pub calls_unreachable: u64,
}

impl AttackRow {
    /// Error-severity findings recorded under `code`.
    pub fn fired_count(&self, code: &str) -> usize {
        self.fired
            .iter()
            .find(|(c, _)| *c == code)
            .map_or(0, |(_, n)| *n)
    }

    /// Whether every invariant this attack is expected to trip fired.
    /// Attacks with an empty expectation (the self-healing flap storm)
    /// report `false` — they are the corpus's documented misses.
    pub fn detected(&self) -> bool {
        let expected = self.kind.expected_invariants();
        !expected.is_empty() && expected.iter().all(|code| self.fired_count(code) > 0)
    }
}

/// The adversarial campaign artefact.
#[derive(Debug, Clone)]
pub struct Adversarial {
    /// Un-attacked control rows (geo, hot), in artefact order.
    pub clean: Vec<CleanRow>,
    /// Per-attack rows in [`AttackKind::ALL`] order.
    pub attacks: Vec<AttackRow>,
}

impl Adversarial {
    /// The row for a specific attack kind.
    pub fn row(&self, kind: AttackKind) -> Option<&AttackRow> {
        self.attacks.iter().find(|r| r.kind == kind)
    }

    /// Attacks whose declared expectation fired in full.
    pub fn detected_count(&self) -> usize {
        self.attacks.iter().filter(|r| r.detected()).count()
    }

    /// Attacks that declare at least one expected invariant.
    pub fn detectable_count(&self) -> usize {
        self.attacks
            .iter()
            .filter(|r| !r.kind.expected_invariants().is_empty())
            .count()
    }

    /// Headline catch rate: detected attacks over the *whole* corpus —
    /// the self-healing rows charge as misses.
    pub fn catch_rate(&self) -> f64 {
        if self.attacks.is_empty() {
            return 0.0;
        }
        self.detected_count() as f64 / self.attacks.len() as f64
    }

    /// Total error-severity findings across the clean control rows
    /// (each one is a false positive; must be zero).
    pub fn false_positives(&self) -> usize {
        self.clean.iter().map(CleanRow::findings).sum()
    }
}

/// One parallel work unit.
#[derive(Debug, Clone, Copy)]
enum Unit {
    Clean { hot: bool },
    Attack(AttackKind),
}

/// A unit's result (units run in canonical order, so the partition back
/// into clean/attack rows is positional).
enum UnitResult {
    Clean(CleanRow),
    Attack(Box<AttackRow>),
}

/// Runs the campaign: two clean control rows plus every attack in
/// [`AttackKind::ALL`], one parallel unit each.
pub fn run(config: &WorldConfig, par: Par) -> Adversarial {
    let mut units: Vec<Unit> = vec![Unit::Clean { hot: false }, Unit::Clean { hot: true }];
    units.extend(AttackKind::ALL.into_iter().map(Unit::Attack));
    let results = par.map(&units, |_, &unit| match unit {
        Unit::Clean { hot } => UnitResult::Clean(run_clean(config, hot)),
        Unit::Attack(kind) => UnitResult::Attack(Box::new(run_attack(config, kind))),
    });
    let mut clean = Vec::new();
    let mut attacks = Vec::new();
    for r in results {
        match r {
            UnitResult::Clean(row) => clean.push(row),
            UnitResult::Attack(row) => attacks.push(*row),
        }
    }
    Adversarial { clean, attacks }
}

/// World config for one unit: attacks always run geo cold-potato (half
/// the corpus targets the geo machinery); clean rows pin both modes.
fn unit_config(config: &WorldConfig, hot: bool) -> WorldConfig {
    let mut cfg = config.clone();
    cfg.vns.mode = if hot {
        RoutingMode::HotPotato
    } else {
        RoutingMode::GeoColdPotato
    };
    cfg
}

/// Error-severity finding counts from both verifier stages, in report
/// order.
fn fired_invariants(world: &World) -> FiredCounts {
    let scope = VerifyScope::default();
    let control = verify_scoped(&world.internet, &world.vns, &scope);
    let data = verify_dataplane_scoped(
        &world.internet,
        &world.vns,
        &scope,
        &DataplaneConfig::default(),
    );
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let errors = control
        .violations()
        .iter()
        .chain(data.report.violations())
        .filter(|v| v.severity == Severity::Error);
    for v in errors {
        *counts.entry(v.invariant.code()).or_insert(0) += 1;
    }
    // Report order, not alphabetical.
    Invariant::ALL
        .iter()
        .filter_map(|inv| counts.get(inv.code()).map(|&n| (inv.code(), n)))
        .collect()
}

fn run_clean(config: &WorldConfig, hot: bool) -> CleanRow {
    let world = World::build(unit_config(config, hot));
    CleanRow {
        hot,
        fired: fired_invariants(&world),
    }
}

/// One monitored client→echo flow.
struct FlowSpec {
    label: String,
    client: PopId,
    addr: u32,
}

/// Monitored flows: every client PoP towards every non-colocated echo
/// server (intra-VNS damage) plus an even sample of external last-mile
/// prefixes (egress damage).
fn monitor_flows(world: &World, externals: &[(Prefix, u32)]) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    let step = (externals.len() / EXTERNAL_TARGETS).max(1);
    for (code, id) in CLIENTS {
        for echo in world.vns.echo_servers() {
            if echo.pop == PopId(id) {
                continue; // co-located: no long-haul path to disturb
            }
            flows.push(FlowSpec {
                label: format!("{code}->{}", world.vns.pop(echo.pop).spec.code),
                client: PopId(id),
                addr: echo.address(),
            });
        }
        for (prefix, ip) in externals.iter().step_by(step).take(EXTERNAL_TARGETS) {
            flows.push(FlowSpec {
                label: format!("{code}=>{prefix}"),
                client: PopId(id),
                addr: *ip,
            });
        }
    }
    flows
}

/// Every external last-mile prefix with its representative host (the
/// anycast landing sample, and the egress-target pool).
fn client_prefixes(world: &World) -> Vec<(Prefix, u32)> {
    world
        .internet
        .prefixes()
        .filter(|p| p.last_mile && p.origin != world.vns.as_id())
        .map(|p| (p.prefix, p.prefix.first_host()))
        .collect()
}

fn landing(world: &World, ip: u32) -> Option<PopId> {
    world
        .vns
        .anycast_landing(&world.internet, ip)
        .ok()
        .map(|(pop, _)| pop)
}

#[allow(clippy::too_many_lines)] // one linear measurement recipe
fn run_attack(config: &WorldConfig, kind: AttackKind) -> AttackRow {
    let mut world = World::build(unit_config(config, false));
    assert_control_plane(&world);
    assert_data_plane(&world);
    let tree = RngTree::new(config.seed)
        .subtree("adversarial")
        .subtree(kind.name());

    // Pre-attack reference state.
    let externals = client_prefixes(&world);
    let flows = monitor_flows(&world, &externals);
    let pre: Vec<Option<ResolvedPath>> = flows
        .iter()
        .map(|f| {
            world
                .vns
                .path_via_vns(&world.internet, f.client, f.addr)
                .ok()
        })
        .collect();
    let pre_land: Vec<Option<PopId>> = externals
        .iter()
        .map(|&(_, ip)| landing(&world, ip))
        .collect();
    // The endpoint inventory is the service plane's *pre-attack* knowledge
    // — a hijack redirects its traffic, it does not erase the endpoints
    // (and a total landing collapse must surface as unreachable arrivals,
    // not as an empty table).
    let endpoints = EndpointTable::build(&world.internet, &world.vns);

    // Launch and reconverge.
    let launched = launch_attack(kind, &mut world.internet, &world.vns, config.seed)
        .unwrap_or_else(|e| panic!("{kind}: launch failed: {e}"));
    assert!(launched.quiescent, "{kind}: net left torn after attack");

    // Detection: both verifier stages on the post-attack RIBs.
    let fired = fired_invariants(&world);

    // Flow damage: re-resolve every monitored flow; affected ones replay
    // an HD session over the post-attack path (an unroutable flow loses
    // the whole session).
    let mut flows_rerouted = 0usize;
    let mut flows_unroutable = 0usize;
    let mut replay_sent = 0u64;
    let mut replay_lost = 0u64;
    let mut worst_stretch: Option<f64> = None;
    for (fi, (flow, pre_path)) in flows.iter().zip(&pre).enumerate() {
        let Some(pre_path) = pre_path else { continue };
        let post_path = world
            .vns
            .path_via_vns(&world.internet, flow.client, flow.addr)
            .ok();
        let changed = post_path
            .as_ref()
            .is_none_or(|p| p.routers != pre_path.routers);
        if !changed {
            continue;
        }
        match &post_path {
            None => flows_unroutable += 1,
            Some(p) => {
                flows_rerouted += 1;
                if pre_path.total_km() > 0.0 {
                    let s = p.total_km() / pre_path.total_km();
                    worst_stretch = Some(worst_stretch.map_or(s, |w| w.max(s)));
                }
            }
        }
        let mut pair = post_path.as_ref().map(|p| {
            channel_pair_args(
                &world,
                p,
                format_args!("adv:{}:{}", kind.name(), flow.label),
            )
        });
        let mut rng = tree.stream_args(format_args!("flow:{fi}"));
        let t0 = SimTime::EPOCH + Dur::from_hours(6);
        for pkt in VideoSpec::HD1080.packets(t0, SESSION, &mut rng) {
            replay_sent += 1;
            let Some((fwd, rev)) = pair.as_mut() else {
                replay_lost += 1;
                continue;
            };
            let ok = match fwd.send(pkt.sent) {
                vns_netsim::PathOutcome::Delivered { arrival, .. } => {
                    matches!(rev.send(arrival), vns_netsim::PathOutcome::Delivered { .. })
                }
                vns_netsim::PathOutcome::Lost { .. } => false,
            };
            if !ok {
                replay_lost += 1;
            }
        }
    }

    // Anycast landing shifts over the client-prefix sample.
    let mut landings_total = 0usize;
    let mut landings_shifted = 0usize;
    let mut landings_lost = 0usize;
    for (&(_, ip), pre_pop) in externals.iter().zip(&pre_land) {
        let Some(pre_pop) = pre_pop else { continue };
        landings_total += 1;
        match landing(&world, ip) {
            None => landings_lost += 1,
            Some(post_pop) if post_pop != *pre_pop => landings_shifted += 1,
            Some(_) => {}
        }
    }

    // A short live call slice on the attacked service plane: the path
    // table is rebuilt for the post-attack routing epoch.
    let paths = PathTable::build(&world.internet, &world.vns, &endpoints);
    let profile = DiurnalProfile::new(DiurnalShape::Mixed, 0.55, 0.35, 0.0);
    let mut scfg = ServiceConfig::sized(CALL_TARGET, CALL_HOLD, CALL_WINDOW, profile);
    scfg.warmup_windows = 0;
    scfg.setup_stride = 8;
    scfg.qos_stride = 64;
    let mut orch = Orchestrator::new(&world.vns, scfg, tree.subtree("calls"));
    let env = ServiceEnv {
        internet: &world.internet,
        vns: &world.vns,
        factory: &world.factory,
        endpoints: &endpoints,
        paths: &paths,
    };
    // The unit itself is one parallel task; the slice stays sequential.
    orch.run_windows(&env, CALL_WINDOWS, Par::seq());
    let telemetry = orch.into_telemetry();
    let (mut calls_offered, mut calls_rejected, mut calls_unreachable) = (0u64, 0u64, 0u64);
    for w in &telemetry.windows {
        calls_offered += w.arrivals;
        calls_rejected += w.rejected;
        calls_unreachable += w.unreachable;
    }

    AttackRow {
        kind,
        detail: launched.detail,
        stats: launched.stats,
        events: launched.events,
        fired,
        flows_monitored: flows.len(),
        flows_rerouted,
        flows_unroutable,
        replay_sent,
        replay_lost,
        worst_stretch,
        landings_total,
        landings_shifted,
        landings_lost,
        calls_offered,
        calls_rejected,
        calls_unreachable,
    }
}

/// The six matrix columns the threat model names (DESIGN.md §12), with
/// short headers; everything else folds into `other`.
const MATRIX: [(Invariant, &str); 6] = [
    (Invariant::ValleyFree, "V-FREE"),
    (Invariant::HiddenRoute, "H-ROUTE"),
    (Invariant::GeoPreference, "G-PREF"),
    (Invariant::LoopFree, "L-FREE"),
    (Invariant::NoBlackhole, "NO-BH"),
    (Invariant::AnycastNearest, "A-NEAR"),
];

impl fmt::Display for Adversarial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Adversarial: attack corpus vs the two-stage verifier (detection matrix)"
        )?;
        writeln!(f, "\ncontrol rows (no attack):")?;
        for row in &self.clean {
            let verdict = if row.findings() == 0 {
                "clean".to_string()
            } else {
                format!("FALSE POSITIVE ({} findings)", row.findings())
            };
            writeln!(f, "  {}: {verdict}", row.label())?;
        }
        for row in &self.attacks {
            writeln!(f, "\nattack {}: {}", row.kind.name(), row.detail)?;
            writeln!(
                f,
                "  reconvergence: {} events, {} msgs, {} activations",
                row.events, row.stats.messages, row.stats.activations
            )?;
            let stretch = row
                .worst_stretch
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x"));
            writeln!(
                f,
                "  damage: flows {}/{} rerouted, {} unroutable (replay loss {}/{}, \
                 worst stretch {stretch}) | landings {}/{} shifted, {} lost | \
                 calls {} offered, {} rejected, {} unreachable",
                row.flows_rerouted,
                row.flows_monitored,
                row.flows_unroutable,
                row.replay_lost,
                row.replay_sent,
                row.landings_shifted,
                row.landings_total,
                row.landings_lost,
                row.calls_offered,
                row.calls_rejected,
                row.calls_unreachable,
            )?;
            let fired = if row.fired.is_empty() {
                "none".to_string()
            } else {
                row.fired
                    .iter()
                    .map(|(c, n)| format!("{c}({n})"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            let expected = row.kind.expected_invariants();
            let verdict = if row.detected() {
                "DETECTED"
            } else if expected.is_empty() {
                "undetected (self-healing; documented miss)"
            } else {
                "MISSED"
            };
            writeln!(f, "  fired: {fired} | expected {expected:?} -> {verdict}")?;
        }

        writeln!(f, "\ndetection matrix (error findings per invariant):")?;
        write!(f, "  {:<24}", "attack")?;
        for (_, hdr) in MATRIX {
            write!(f, " {hdr:>7}")?;
        }
        writeln!(f, " {:>7} verdict", "other")?;
        for row in &self.attacks {
            write!(f, "  {:<24}", row.kind.name())?;
            let mut named = 0usize;
            for (inv, _) in MATRIX {
                let n = row.fired_count(inv.code());
                named += n;
                if n == 0 {
                    write!(f, " {:>7}", ".")?;
                } else {
                    write!(f, " {n:>7}")?;
                }
            }
            let other: usize = row.fired.iter().map(|(_, n)| n).sum::<usize>() - named;
            if other == 0 {
                write!(f, " {:>7}", ".")?;
            } else {
                write!(f, " {other:>7}")?;
            }
            let verdict = if row.detected() {
                "DETECTED"
            } else if row.kind.expected_invariants().is_empty() {
                "n/a"
            } else {
                "MISSED"
            };
            writeln!(f, " {verdict}")?;
        }
        writeln!(
            f,
            "\nsummary: catch rate {}/{} ({:.0}%) over the corpus, {}/{} over \
             detectable attacks; false positives: {} findings on {} clean rows",
            self.detected_count(),
            self.attacks.len(),
            100.0 * self.catch_rate(),
            self.detected_count(),
            self.detectable_count(),
            self.false_positives(),
            self.clean.len(),
        )
    }
}
