//! Fig 6 — delay difference: RTT through VNS vs through upstreams.
//!
//! Method (Sec 4.3): one address per origin AS, probed simultaneously
//! through VNS and through the local upstream from six PoPs; CDF of
//! `avgRTT(VNS) − avgRTT(upstream)`. The paper plots Singapore, Amsterdam
//! and San Jose: Singapore is ≤ 0 in ~65 % of cases (direct dedicated
//! links), and across PoPs 87–93 % of destinations are stretched by less
//! than 50 ms.

use std::collections::BTreeSet;

use vns_core::PopId;
use vns_netsim::{Dur, Par, SimTime};
use vns_stats::{Cdf, Figure, Series};

use crate::campaign::{prefix_metas, rtt_via_upstream, rtt_via_vns};
use crate::world::World;

/// Per-PoP delay-difference distribution.
#[derive(Debug)]
pub struct Fig6 {
    /// `(pop code, CDF of RTT difference ms, fraction <= 0, fraction <= 50)`.
    pub per_pop: Vec<(String, Cdf, f64, f64)>,
    /// The printable figure.
    pub figure: Figure,
}

/// The six vantage PoPs of Sec 4.3 (EU, US and AP).
pub const VANTAGES: [(&str, u8); 6] = [
    ("SIN", 7),
    ("AMS", 9),
    ("SJS", 1),
    ("LON", 10),
    ("ASH", 5),
    ("HKG", 8),
];

/// Runs the experiment: `rounds` probe rounds spread across a day are
/// averaged per destination. Per-target probes fan out over `par` within
/// each vantage.
pub fn run(world: &World, rounds: usize, par: Par) -> Fig6 {
    let metas = prefix_metas(world);
    // One address per origin AS.
    let mut seen = BTreeSet::new();
    let targets: Vec<u32> = metas
        .iter()
        .filter(|m| seen.insert(m.origin_asn))
        .map(|m| m.ip)
        .collect();

    let mut figure = Figure::new(
        "Fig 6",
        "CDF of RTT(VNS) − RTT(upstream) per vantage PoP",
        "RTT difference (ms)",
        "CDF",
    );
    let mut per_pop = Vec::new();
    for (code, id) in VANTAGES {
        let pop = PopId(id);
        let diffs: Vec<f64> = par
            .map(&targets, |_, &ip| {
                let mut v_acc = (0.0, 0u32);
                let mut u_acc = (0.0, 0u32);
                for r in 0..rounds.max(1) {
                    let t = SimTime::EPOCH + Dur::from_hours((3 + r * 7) as u64 % 24);
                    if let Some(v) = rtt_via_vns(world, pop, ip, t) {
                        v_acc = (v_acc.0 + v, v_acc.1 + 1);
                    }
                    if let Some(u) = rtt_via_upstream(world, pop, ip, t) {
                        u_acc = (u_acc.0 + u, u_acc.1 + 1);
                    }
                }
                (v_acc.1 > 0 && u_acc.1 > 0)
                    .then(|| v_acc.0 / f64::from(v_acc.1) - u_acc.0 / f64::from(u_acc.1))
            })
            .into_iter()
            .flatten()
            .collect();
        let cdf = Cdf::new(diffs);
        let le0 = cdf.at(0.0);
        let le50 = cdf.at(50.0);
        figure.push(Series::new(
            code,
            cdf.sample_at(&[
                -300.0, -200.0, -100.0, -50.0, 0.0, 50.0, 100.0, 200.0, 300.0,
            ]),
        ));
        per_pop.push((code.to_string(), cdf, le0, le50));
    }
    Fig6 { per_pop, figure }
}

impl Fig6 {
    /// Lookup by PoP code.
    pub fn pop(&self, code: &str) -> Option<&(String, Cdf, f64, f64)> {
        self.per_pop.iter().find(|(c, _, _, _)| c == code)
    }
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.figure)?;
        for (code, _, le0, le50) in &self.per_pop {
            writeln!(
                f,
                "{code}: VNS ≤ upstream in {}, stretch ≤ 50 ms in {}",
                vns_stats::pct(*le0),
                vns_stats::pct(*le50)
            )?;
        }
        writeln!(f, "(paper: SIN ~65% ≤ 0; 87–93% within 50 ms)")
    }
}
