//! Ablations beyond the paper — quantifying the design choices DESIGN.md
//! calls out.
//!
//! * `lp_shape` — the paper only requires `lp = f(d)` to be decreasing and
//!   ≫ 100; how much does the shape matter?
//! * `best_external` — reproduce the Sec 3.2 hidden-routes pathology by
//!   turning the fix off.
//! * `geoip` — what geo-routing costs when the GeoIP database is wrong,
//!   and how much the management overrides claw back.
//! * `fec_arq` — the Sec 2 discussion: FEC fixes random loss but not
//!   bursts; retransmission needs a nearby relay.
//! * `l2_topology` — regional clusters + 5 long-haul circuits vs a full
//!   PoP mesh: delay stretch vs circuit kilometres (the cost driver the
//!   paper's Sec 6 economics discussion identifies).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use vns_core::{LocalPrefFn, PopId, Vns};
use vns_netsim::{Dur, HopChannel, LossModel, LossProcess, PathChannel, SimTime};
use vns_stats::Table;
use vns_topo::Internet;

use crate::campaign::prefix_metas;
use crate::world::{World, WorldConfig};

/// Egress-selection quality over well-geolocated prefixes: fraction of
/// choices within 500 km of optimal, and the mean excess distance (km).
pub fn egress_precision(world: &World) -> (f64, f64) {
    let mut good = 0usize;
    let mut total = 0usize;
    let mut excess = 0.0;
    for m in prefix_metas(world) {
        if !m.geoip_err_km.is_finite() || m.geoip_err_km > 150.0 {
            continue;
        }
        let Some(egress) = world.vns.egress_pop(&world.internet, PopId(10), m.ip) else {
            continue;
        };
        let d_sel = world.vns.pop(egress).location().distance_km(&m.truth);
        let nearest = world.vns.nearest_pop(m.truth);
        let d_best = world.vns.pop(nearest).location().distance_km(&m.truth);
        total += 1;
        excess += (d_sel - d_best).max(0.0);
        if d_sel <= d_best + 500.0 {
            good += 1;
        }
    }
    // One ledger unit per prefix judged.
    vns_netsim::ledger::add_units(total as u64);
    (
        good as f64 / total.max(1) as f64,
        excess / total.max(1) as f64,
    )
}

/// One ablation table.
#[derive(Debug)]
pub struct Ablation {
    /// Name.
    pub name: &'static str,
    /// Result rows.
    pub table: Table,
    /// Key numbers for assertions: `(label, value)`.
    pub values: Vec<(String, f64)>,
}

impl std::fmt::Display for Ablation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## Ablation — {}", self.name)?;
        writeln!(f, "{}", self.table)
    }
}

/// LOCAL_PREF shape ablation.
pub fn lp_shape(seed: u64, scale: f64) -> Ablation {
    let shapes: [(&str, LocalPrefFn); 4] = [
        ("banded-25km (default)", LocalPrefFn::default()),
        (
            "banded-2000km",
            LocalPrefFn::BandedLinear {
                floor: 1_000,
                band_km: 2_000.0,
            },
        ),
        (
            "inverse",
            LocalPrefFn::Inverse {
                floor: 1_000,
                scale: 2_000_000.0,
            },
        ),
        ("stepped", LocalPrefFn::Stepped),
    ];
    let mut table = Table::new(["f(d) shape", "near-optimal egress", "mean excess km"]);
    let mut values = Vec::new();
    for (name, lp_fn) in shapes {
        let mut cfg = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        cfg.vns.lp_fn = lp_fn;
        let world = World::build(cfg);
        let (frac, excess) = egress_precision(&world);
        table.push([
            name.to_string(),
            vns_stats::pct(frac),
            format!("{excess:.0}"),
        ]);
        values.push((name.to_string(), frac));
    }
    Ablation {
        name: "LOCAL_PREF shape lp = f(d)",
        table,
        values,
    }
}

/// Best-external on/off (the hidden-routes fix).
pub fn best_external(seed: u64, scale: f64) -> Ablation {
    let mut table = Table::new(["best-external", "near-optimal egress", "mean excess km"]);
    let mut values = Vec::new();
    for on in [true, false] {
        let mut cfg = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        cfg.vns.best_external = on;
        let world = World::build(cfg);
        let (frac, excess) = egress_precision(&world);
        table.push([
            if on { "on (paper)" } else { "off" }.to_string(),
            vns_stats::pct(frac),
            format!("{excess:.0}"),
        ]);
        values.push((format!("{on}"), frac));
    }
    Ablation {
        name: "best-external (hidden routes, Sec 3.2)",
        table,
        values,
    }
}

/// GeoIP errors on/off, plus the management fix for the two documented
/// pathologies.
pub fn geoip(seed: u64, scale: f64) -> Ablation {
    let mut table = Table::new(["GeoIP database", "near-optimal egress", "mean excess km"]);
    let mut values = Vec::new();

    // Perfect database.
    let mut cfg = WorldConfig {
        seed,
        scale,
        ..WorldConfig::default()
    };
    let mut topo = cfg.topo();
    topo.geoip_errors = false;
    let mut internet = vns_topo::generate(&topo).expect("generate");
    let vns = vns_core::build_vns(&mut internet, &cfg.vns).expect("vns");
    let world_perfect = world_from(internet, vns, cfg.clone());
    let (frac, excess) = precision_all(&world_perfect);
    table.push([
        "perfect".into(),
        vns_stats::pct(frac),
        format!("{excess:.0}"),
    ]);
    values.push(("perfect".into(), frac));

    // Erroneous database (default).
    cfg = WorldConfig {
        seed,
        scale,
        ..WorldConfig::default()
    };
    let world_err = World::build(cfg.clone());
    let (frac, excess) = precision_all(&world_err);
    table.push([
        "with errors".into(),
        vns_stats::pct(frac),
        format!("{excess:.0}"),
    ]);
    values.push(("with errors".into(), frac));

    // Erroneous + management overrides: exempt every prefix whose GeoIP
    // error exceeds 1000 km (what an operator does after spotting the
    // Fig 3 outlier clusters).
    let mut world_fixed = World::build(cfg);
    let bad: Vec<vns_bgp::Prefix> = prefix_metas(&world_fixed)
        .iter()
        .filter(|m| m.geoip_err_km.is_finite() && m.geoip_err_km > 1_000.0)
        .map(|m| m.prefix)
        .collect();
    let n_bad = bad.len();
    for p in bad {
        world_fixed
            .vns
            .mgmt_exempt(&mut world_fixed.internet, p)
            .expect("reconverges");
    }
    let (frac, excess) = precision_all(&world_fixed);
    table.push([
        format!("with errors + {n_bad} exemptions"),
        vns_stats::pct(frac),
        format!("{excess:.0}"),
    ]);
    values.push(("fixed".into(), frac));

    Ablation {
        name: "GeoIP quality (Fig 3 outlier clusters)",
        table,
        values,
    }
}

/// Precision over *all* prefixes (not just well-geolocated ones) — the
/// metric that exposes GeoIP damage.
fn precision_all(world: &World) -> (f64, f64) {
    let mut good = 0usize;
    let mut total = 0usize;
    let mut excess = 0.0;
    for m in prefix_metas(world) {
        let Some(egress) = world.vns.egress_pop(&world.internet, PopId(10), m.ip) else {
            continue;
        };
        let d_sel = world.vns.pop(egress).location().distance_km(&m.truth);
        let nearest = world.vns.nearest_pop(m.truth);
        let d_best = world.vns.pop(nearest).location().distance_km(&m.truth);
        total += 1;
        excess += (d_sel - d_best).max(0.0);
        if d_sel <= d_best + 500.0 {
            good += 1;
        }
    }
    // One ledger unit per prefix judged.
    vns_netsim::ledger::add_units(total as u64);
    (
        good as f64 / total.max(1) as f64,
        excess / total.max(1) as f64,
    )
}

fn world_from(internet: Internet, vns: Vns, config: WorldConfig) -> World {
    World {
        internet,
        vns,
        factory: vns_topo::ChannelFactory::new(
            vns_topo::CalibrationConfig::default(),
            vns_netsim::RngTree::new(config.seed).subtree("channels"),
        ),
        config,
    }
}

/// FEC vs deadline-bounded retransmission under random vs bursty loss.
pub fn fec_arq(seed: u64) -> Ablation {
    // Enough packets at 10 ms spacing to span many Gilbert–Elliott burst
    // cycles (the bursty channel's mean burst gap is ~100 s).
    let packets = 120_000u32;
    let mk_channel = |model: LossModel, s: u64, base_ms: f64| {
        let mut hop = HopChannel::ideal(base_ms);
        hop.loss = LossProcess::new(model, SmallRng::seed_from_u64(s));
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(s + 1))
    };
    let random = LossModel::Bernoulli { p: 0.01 };
    let bursty = LossModel::bursty(0.01, 0.5, 2.0);

    let mut table = Table::new([
        "loss type",
        "raw loss",
        "FEC k=10 residual",
        "ARQ 20ms-hop residual",
        "ARQ 150ms-hop residual",
    ]);
    let mut values = Vec::new();
    for (name, model) in [("random 1%", random), ("bursty 1%", bursty)] {
        // Raw + FEC: sample delivery vector at media cadence (~2.4 ms).
        let mut ch = mk_channel(model.clone(), seed, 20.0);
        let mut delivered = Vec::with_capacity(packets as usize);
        let mut parity = Vec::new();
        let mut t = SimTime::EPOCH;
        for i in 0..packets {
            delivered.push(ch.send(t).delivered());
            t += Dur::from_millis(10);
            if (i + 1) % 10 == 0 {
                parity.push(ch.send(t).delivered());
                t += Dur::from_millis(10);
            }
        }
        let raw = delivered.iter().filter(|d| !**d).count() as f64 / delivered.len() as f64;
        let fec = vns_media::FecConfig::K10.residual_loss(&delivered, &parity);
        // One ledger unit per channel replay (raw+FEC counts as one).
        vns_netsim::ledger::add_units(1);
        // ARQ at two relay distances.
        let mut arq_residual = Vec::new();
        for (s_off, base_ms) in [(100, 20.0), (200, 150.0)] {
            let mut ch = mk_channel(model.clone(), seed + s_off, base_ms);
            let mut lost = 0u32;
            let mut t = SimTime::EPOCH;
            for _ in 0..packets {
                let out = vns_media::send_with_arq(&mut ch, t, Dur::from_millis(200), 2);
                if !out.delivered {
                    lost += 1;
                }
                t += Dur::from_millis(10);
            }
            arq_residual.push(lost as f64 / packets as f64);
            vns_netsim::ledger::add_units(1);
        }
        table.push([
            name.to_string(),
            vns_stats::pct(raw),
            vns_stats::pct(fec),
            vns_stats::pct(arq_residual[0]),
            vns_stats::pct(arq_residual[1]),
        ]);
        values.push((format!("{name}:raw"), raw));
        values.push((format!("{name}:fec"), fec));
        values.push((format!("{name}:arq20"), arq_residual[0]));
        values.push((format!("{name}:arq150"), arq_residual[1]));
    }
    Ablation {
        name: "FEC vs selective retransmission (Sec 2 countermeasures)",
        table,
        values,
    }
}

/// Cluster topology vs full L2 mesh: circuit cost vs delay stretch.
pub fn l2_topology(seed: u64, scale: f64) -> Ablation {
    let mut table = Table::new([
        "L2 topology",
        "circuits",
        "circuit km (cost proxy)",
        "mean internal stretch",
    ]);
    let mut values = Vec::new();
    for full_mesh in [false, true] {
        let mut cfg = WorldConfig {
            seed,
            scale,
            ..WorldConfig::default()
        };
        cfg.vns.full_mesh_l2 = full_mesh;
        let world = World::build(cfg);
        let igp = world
            .internet
            .as_info(world.vns.as_id())
            .igp
            .as_ref()
            .expect("vns igp");
        // Count only real circuits (cost > 1 filters intra-PoP links).
        let circuits: Vec<_> = igp.edges().into_iter().filter(|(_, _, c)| *c > 1).collect();
        let total_km: u64 = circuits.iter().map(|(_, _, c)| c).sum();
        // Internal delay stretch: PoP-to-PoP IGP cost vs great circle.
        let mut stretch = 0.0;
        let mut pairs = 0;
        for a in world.vns.pops() {
            for b in world.vns.pops() {
                if a.id() >= b.id() {
                    continue;
                }
                let costs = igp.shortest_costs(a.borders[0]);
                let Some(&c) = costs.get(&b.borders[0]) else {
                    continue;
                };
                let gc = a.location().distance_km(&b.location()).max(1.0);
                stretch += c as f64 / gc;
                pairs += 1;
            }
        }
        let mean_stretch = stretch / pairs.max(1) as f64;
        // One ledger unit per PoP pair measured.
        vns_netsim::ledger::add_units(pairs as u64);
        let name = if full_mesh {
            "full mesh"
        } else {
            "clusters (paper)"
        };
        table.push([
            name.to_string(),
            circuits.len().to_string(),
            total_km.to_string(),
            format!("{mean_stretch:.2}"),
        ]);
        values.push((format!("{name}:km"), total_km as f64));
        values.push((format!("{name}:stretch"), mean_stretch));
    }
    Ablation {
        name: "dedicated L2 topology (Sec 3.1 cost argument)",
        table,
        values,
    }
}

/// Hot-potato vs cold-potato delay cost inside VNS: how much extra RTT the
/// cold-potato detour adds before traffic exits (complementary to Fig 6).
pub fn mode_delay(seed: u64, scale: f64) -> Ablation {
    let geo = World::geo(seed, scale);
    let hot = World::hot(seed, scale);
    let mut table = Table::new(["mode", "mean path km (PoP10 -> all prefixes)"]);
    let mut values = Vec::new();
    for (name, world) in [("geo cold potato", &geo), ("hot potato", &hot)] {
        let mut km = 0.0;
        let mut n = 0;
        for m in prefix_metas(world) {
            if let Ok(p) = world.vns.path_via_vns(&world.internet, PopId(10), m.ip) {
                km += p.total_km();
                n += 1;
            }
        }
        let mean = km / n.max(1) as f64;
        // One ledger unit per prefix resolved.
        vns_netsim::ledger::add_units(n as u64);
        table.push([name.to_string(), format!("{mean:.0}")]);
        values.push((name.to_string(), mean));
    }
    Ablation {
        name: "routing mode path-length cost",
        table,
        values,
    }
}

/// The alternative the paper rejected (Sec 3.2): pick the egress by
/// active RTT measurement instead of GeoIP distance. Compares precision
/// (fraction of prefixes whose selected egress is delay-best within
/// 10 ms) against the control-plane overhead (probe packets per routing
/// decision — the geo metric needs none).
pub fn geo_vs_measurement(seed: u64, scale: f64, par: vns_netsim::Par) -> Ablation {
    use crate::campaign::{prefix_metas, rtt_matrix};
    use vns_netsim::{Dur, SimTime};

    let world = World::geo(seed, scale);
    let metas = prefix_metas(&world);
    let pops: Vec<PopId> = world.vns.pops().iter().map(|p| p.id()).collect();
    let t = SimTime::EPOCH + Dur::from_hours(10);
    let matrix = rtt_matrix(&world, &metas, &pops, t, par);

    let mut geo_good = 0usize;
    let mut meas_good = 0usize;
    let mut judged = 0usize;
    for (mi, m) in metas.iter().enumerate() {
        let Some(reported) = m.reported else { continue };
        let rtts = &matrix[mi];
        let Some(best) = rtts.iter().flatten().cloned().reduce(f64::min) else {
            continue;
        };
        // Geo pick: nearest PoP by reported location.
        let geo_idx = pops
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = world.vns.pop(**a).location().distance_km(&reported);
                let db = world.vns.pop(**b).location().distance_km(&reported);
                da.partial_cmp(&db).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("pops");
        // Measurement pick: argmin of the probed RTTs (this IS the truth
        // here, modulo probe-time queueing noise — re-probing at another
        // time may differ).
        let meas_idx = rtts
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|x| (i, x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("reachable");
        judged += 1;
        if rtts[geo_idx].is_some_and(|r| r - best <= 10.0) {
            geo_good += 1;
        }
        if rtts[meas_idx].is_some_and(|r| r - best <= 10.0) {
            meas_good += 1;
        }
    }
    // Overhead: the paper's method is 5 pings per (prefix, PoP) per
    // routing decision; geo needs one GeoIP lookup.
    let probes_per_decision = (pops.len() * 5 * 2) as f64; // RTT = echo + reply
    let mut table = Table::new([
        "egress selector",
        "delay-best within 10 ms",
        "probe pkts / decision",
    ]);
    table.push([
        "GeoIP distance (paper)".to_string(),
        vns_stats::pct(geo_good as f64 / judged.max(1) as f64),
        "0".to_string(),
    ]);
    table.push([
        "active measurement".to_string(),
        vns_stats::pct(meas_good as f64 / judged.max(1) as f64),
        format!("{probes_per_decision:.0}"),
    ]);
    Ablation {
        name: "geo metric vs active measurement (Sec 3.2's rejected alternative)",
        table,
        values: vec![
            ("geo".into(), geo_good as f64 / judged.max(1) as f64),
            (
                "measurement".into(),
                meas_good as f64 / judged.max(1) as f64,
            ),
        ],
    }
}

/// The paper's operational loop (Sec 3.2): "prefixes that suffer from
/// these shortcomings are identified using continuous, low-overhead active
/// measurements" and fixed through the management interface. Probes every
/// prefix once, force-exits the ones whose geo egress is ≥ `threshold_ms`
/// worse than the best PoP, and reports precision before/after.
pub fn auto_override(seed: u64, scale: f64, threshold_ms: f64, par: vns_netsim::Par) -> Ablation {
    use crate::campaign::{prefix_metas, rtt_matrix};
    use vns_netsim::{Dur, SimTime};

    let mut world = World::geo(seed, scale);
    let metas = prefix_metas(&world);
    let pops: Vec<PopId> = world.vns.pops().iter().map(|p| p.id()).collect();
    let t = SimTime::EPOCH + Dur::from_hours(10);
    let matrix = rtt_matrix(&world, &metas, &pops, t, par);

    let displaced = |world: &World, mi: usize, m: &crate::campaign::PrefixMeta| -> Option<f64> {
        let egress = world.vns.egress_pop(&world.internet, PopId(10), m.ip)?;
        let idx = pops.iter().position(|p| *p == egress)?;
        let sel = matrix[mi][idx]?;
        let best = matrix[mi].iter().flatten().cloned().reduce(f64::min)?;
        Some(sel - best)
    };

    let count_bad = |world: &World| {
        metas
            .iter()
            .enumerate()
            .filter(|(mi, m)| displaced(world, *mi, m).is_some_and(|d| d > threshold_ms))
            .count()
    };
    let bad_before = count_bad(&world);

    // Apply the overrides: force each bad prefix out of its delay-best PoP.
    let mut fixed = 0usize;
    for (mi, m) in metas.iter().enumerate() {
        if displaced(&world, mi, m).is_none_or(|d| d <= threshold_ms) {
            continue;
        }
        let best_idx = matrix[mi]
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|x| (i, x)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("reachable");
        world
            .vns
            .mgmt_force_exit(&mut world.internet, m.prefix, pops[best_idx])
            .expect("reconverges");
        fixed += 1;
    }
    let bad_after = count_bad(&world);

    let mut table = Table::new(["state", "prefixes displaced beyond threshold"]);
    table.push(["before overrides".to_string(), bad_before.to_string()]);
    table.push([
        format!("after {fixed} force-exit overrides"),
        bad_after.to_string(),
    ]);
    Ablation {
        name: "continuous-measurement auto-overrides (Sec 3.2 ops loop)",
        table,
        values: vec![
            ("bad_before".into(), bad_before as f64),
            ("bad_after".into(), bad_after as f64),
            ("fixed".into(), fixed as f64),
        ],
    }
}

/// The Sec 6 economics analysis: cost per Mbps vs traffic volume, geo vs
/// hot-potato, with the cost breakdown.
pub fn economics(seed: u64, scale: f64) -> Ablation {
    use vns_core::economics::{analyze, sample_demands, CostModel};

    let geo = World::geo(seed, scale);
    let hot = World::hot(seed, scale);
    let model = CostModel::default();
    let mut table = Table::new([
        "calls (4 Mbps each)",
        "cost/Mbps (geo)",
        "L2 share",
        "commit util (geo)",
        "commit util (hot)",
    ]);
    let mut values = Vec::new();
    for n in [100usize, 400, 1600, 6400] {
        let demands = sample_demands(&geo.internet, n, 4.0, seed);
        let cb = analyze(&geo.vns, &geo.internet, &model, &demands);
        let demands_hot = sample_demands(&hot.internet, n, 4.0, seed);
        let cb_hot = analyze(&hot.vns, &hot.internet, &model, &demands_hot);
        // One ledger unit per demand routed through the cost model.
        vns_netsim::ledger::add_units((demands.len() + demands_hot.len()) as u64);
        table.push([
            n.to_string(),
            format!("{:.2}", cb.per_mbps()),
            vns_stats::pct(cb.l2 / cb.total()),
            vns_stats::pct(cb.l2_commit_utilization),
            vns_stats::pct(cb_hot.l2_commit_utilization),
        ]);
        values.push((format!("per_mbps@{n}"), cb.per_mbps()));
        values.push((format!("l2_util@{n}"), cb.l2_commit_utilization));
        values.push((format!("l2_util_hot@{n}"), cb_hot.l2_commit_utilization));
    }
    Ablation {
        name: "VNS economics (Sec 6: scale, L2 dominance, cold-potato utilisation)",
        table,
        values,
    }
}

/// Call-setup latency through VNS vs raw transit — signalling loss turns
/// into SIP retransmission delay (beyond-paper second-order effect).
pub fn setup_time(seed: u64, scale: f64) -> Ablation {
    use vns_media::setup_call;
    use vns_netsim::{Dur, SimTime};

    let world = World::geo(seed, scale);
    let clients = [PopId(9), PopId(1), PopId(11)];
    let mut table = Table::new([
        "path",
        "median setup ms",
        "p95 setup ms",
        "setups needing retransmission",
    ]);
    let mut values = Vec::new();
    for via_vns in [true, false] {
        let mut setups = Vec::new();
        let mut retrans = 0usize;
        for &client in &clients {
            for echo in world.vns.echo_servers().to_vec() {
                let path = if via_vns {
                    world
                        .vns
                        .path_via_vns(&world.internet, client, echo.address())
                } else {
                    world
                        .vns
                        .path_via_upstream(&world.internet, client, echo.address())
                };
                let Ok(path) = path else { continue };
                let label = format!("sip:{}:{}:{}", client.0, echo.prefix, via_vns);
                let mut fwd = world.factory.channel(&path, &label);
                let mut rev = world
                    .factory
                    .channel(&path.reversed(), &format!("{label}:r"));
                for s in 0..40u64 {
                    let t = SimTime::EPOCH + Dur::from_mins(31 * s);
                    let r = setup_call(&mut fwd, &mut rev, t);
                    if r.established {
                        setups.push(r.setup_ms);
                    }
                    if r.invite_retransmissions > 0 {
                        retrans += 1;
                    }
                }
                // One ledger unit per call setup attempted.
                vns_netsim::ledger::add_units(40);
            }
        }
        let cdf = vns_stats::Cdf::new(setups);
        let name = if via_vns { "via VNS" } else { "via transit" };
        table.push([
            name.to_string(),
            format!("{:.0}", cdf.median().unwrap_or(f64::NAN)),
            format!("{:.0}", cdf.quantile(0.95).unwrap_or(f64::NAN)),
            retrans.to_string(),
        ]);
        values.push((format!("{name}:retrans"), retrans as f64));
        values.push((
            format!("{name}:p95"),
            cdf.quantile(0.95).unwrap_or(f64::NAN),
        ));
    }
    Ablation {
        name: "call-setup latency (SIP over lossy signalling paths)",
        table,
        values,
    }
}
