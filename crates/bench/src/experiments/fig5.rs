//! Fig 5 — transit vs peer routes, before vs after geo-based routing.
//!
//! Outer plot: the percentage of routes exiting through each of the
//! top-20 neighbours (the first seven are upstreams, the rest peers).
//! Inner plot: the fraction of prefixes reached through upstreams, which
//! the paper finds stable at ~80 % across the change. After the change,
//! upstream 1 (strong North-American presence) gains share.

use std::collections::BTreeMap;

use vns_bgp::Asn;
use vns_stats::{Figure, Series};

use crate::campaign::prefix_metas;
use crate::world::World;

/// Result of the neighbour-share analysis.
#[derive(Debug)]
pub struct Fig5 {
    /// `(asn, is_upstream, before %, after %)` for the top neighbours,
    /// upstreams first (paper order).
    pub neighbors: Vec<(Asn, bool, f64, f64)>,
    /// Fraction of prefixes exiting through an upstream, before.
    pub transit_share_before: f64,
    /// Same, after.
    pub transit_share_after: f64,
    /// Share of upstream 1 before/after (the paper sees it grow).
    pub upstream1: (f64, f64),
    /// The printable figure.
    pub figure: Figure,
}

/// Counts selected exit neighbours over every (PoP, prefix) pair — the
/// AS-wide view of which neighbours carry routes.
fn neighbor_counts(world: &World) -> (BTreeMap<Asn, usize>, usize) {
    let mut counts = BTreeMap::new();
    let mut total = 0usize;
    let metas = prefix_metas(world);
    for pop in world.vns.pops() {
        for m in &metas {
            if let Some(asn) = world.vns.exit_neighbor(&world.internet, pop.id(), m.ip) {
                *counts.entry(asn).or_default() += 1;
                total += 1;
            }
        }
    }
    // One ledger unit per routed (PoP, prefix) pair.
    vns_netsim::ledger::add_units(total as u64);
    (counts, total)
}

/// Runs the before/after comparison (AS-wide).
pub fn run(before_world: &World, after_world: &World) -> Fig5 {
    let (cb, tb) = neighbor_counts(before_world);
    let (ca, ta) = neighbor_counts(after_world);
    let upstream_asns: Vec<Asn> = after_world
        .vns
        .upstreams()
        .iter()
        .map(|&id| after_world.internet.as_info(id).asn)
        .collect();

    let pct = |c: &BTreeMap<Asn, usize>, t: usize, asn: Asn| {
        100.0 * c.get(&asn).copied().unwrap_or(0) as f64 / t.max(1) as f64
    };

    // Order: the seven upstreams first (paper's layout), then peers by
    // combined share.
    let mut rows: Vec<(Asn, bool, f64, f64)> = upstream_asns
        .iter()
        .map(|&asn| (asn, true, pct(&cb, tb, asn), pct(&ca, ta, asn)))
        .collect();
    let mut peer_rows: Vec<(Asn, bool, f64, f64)> = ca
        .keys()
        .chain(cb.keys())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .filter(|asn| !upstream_asns.contains(asn))
        .map(|&asn| (asn, false, pct(&cb, tb, asn), pct(&ca, ta, asn)))
        .collect();
    peer_rows.sort_by(|a, b| (b.2 + b.3).partial_cmp(&(a.2 + a.3)).expect("finite"));
    rows.extend(peer_rows.into_iter().take(13));

    let transit_share = |c: &BTreeMap<Asn, usize>, t: usize| {
        let up: usize = upstream_asns
            .iter()
            .map(|asn| c.get(asn).copied().unwrap_or(0))
            .sum();
        up as f64 / t.max(1) as f64
    };

    let mut figure = Figure::new(
        "Fig 5",
        "Percentage of routes per top-20 neighbour (1–7 upstreams, 8–20 peers), PoP 10 view",
        "Neighbor ID",
        "percentage of routes",
    );
    figure.push(Series::new(
        "Before",
        rows.iter()
            .enumerate()
            .map(|(i, r)| ((i + 1) as f64, r.2))
            .collect(),
    ));
    figure.push(Series::new(
        "After",
        rows.iter()
            .enumerate()
            .map(|(i, r)| ((i + 1) as f64, r.3))
            .collect(),
    ));

    let upstream1 = rows.first().map_or((0.0, 0.0), |r| (r.2, r.3));
    Fig5 {
        neighbors: rows,
        transit_share_before: transit_share(&cb, tb),
        transit_share_after: transit_share(&ca, ta),
        upstream1,
        figure,
    }
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.figure)?;
        writeln!(
            f,
            "transit (upstream) share: before {} → after {} (paper: stable ~80%)",
            vns_stats::pct(self.transit_share_before),
            vns_stats::pct(self.transit_share_after)
        )?;
        writeln!(
            f,
            "upstream 1 share: before {:.1}% → after {:.1}% (paper: grows)",
            self.upstream1.0, self.upstream1.1
        )
    }
}
