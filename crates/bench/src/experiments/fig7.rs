//! Fig 7 — incoming traffic: where anycast service requests land.
//!
//! Method (Sec 4.4): authentication requests to the anycast TURN address,
//! classified by the seven source world regions and the four PoP regions
//! that received them. "The incoming traffic follows geography to a large
//! extent."

use vns_geo::{PopRegion, Region};
use vns_netsim::Par;
use vns_stats::Table;

use crate::campaign::prefix_metas;
use crate::world::World;

/// The landing matrix.
#[derive(Debug)]
pub struct Fig7 {
    /// `matrix[source region][pop region]` as request fractions per source
    /// region (rows sum to 1).
    pub matrix: Vec<Vec<f64>>,
    /// Requests per source region.
    pub requests: Vec<usize>,
    /// The printable table.
    pub table: Table,
}

/// Runs the experiment: one request per external prefix (a scaled stand-in
/// for the paper's 60k auth requests). Per-prefix resolutions fan out over
/// `par`; the landing matrix is reduced in prefix order.
pub fn run(world: &World, par: Par) -> Fig7 {
    let metas = prefix_metas(world);
    let landings: Vec<Option<(usize, usize)>> = par.map(&metas, |_, m| {
        let (pop, _) = world.vns.anycast_landing(&world.internet, m.ip).ok()?;
        let src = Region::ALL
            .iter()
            .position(|r| *r == m.region)
            .expect("region");
        let dst = PopRegion::ALL
            .iter()
            .position(|r| *r == world.vns.pop(pop).spec.region)
            .expect("pop region");
        Some((src, dst))
    });
    let mut matrix = vec![vec![0usize; PopRegion::ALL.len()]; Region::ALL.len()];
    let mut requests = vec![0usize; Region::ALL.len()];
    for (src, dst) in landings.into_iter().flatten() {
        matrix[src][dst] += 1;
        requests[src] += 1;
    }
    let frac: Vec<Vec<f64>> = matrix
        .iter()
        .zip(&requests)
        .map(|(row, &n)| row.iter().map(|&c| c as f64 / n.max(1) as f64).collect())
        .collect();

    let mut table = Table::new(
        std::iter::once("Source \\ PoP".to_string())
            .chain(PopRegion::ALL.iter().map(|r| r.code().to_string()))
            .chain(std::iter::once("requests".to_string())),
    );
    for (si, region) in Region::ALL.iter().enumerate() {
        let mut row = vec![region.code().to_string()];
        row.extend(frac[si].iter().map(|f| vns_stats::pct(*f)));
        row.push(requests[si].to_string());
        table.push(row);
    }
    Fig7 {
        matrix: frac,
        requests,
        table,
    }
}

impl Fig7 {
    /// Fraction of a source region's requests landing in its home PoP
    /// region.
    pub fn home_fraction(&self, region: Region) -> f64 {
        let si = Region::ALL
            .iter()
            .position(|r| *r == region)
            .expect("region");
        let home = region.home_pop_region();
        let di = PopRegion::ALL
            .iter()
            .position(|r| *r == home)
            .expect("pop region");
        self.matrix[si][di]
    }

    /// Request-weighted average home fraction.
    pub fn overall_home_fraction(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (si, region) in Region::ALL.iter().enumerate() {
            num += self.home_fraction(*region) * self.requests[si] as f64;
            den += self.requests[si] as f64;
        }
        num / den.max(1.0)
    }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## Fig 7 — anycast request landing matrix")?;
        writeln!(f, "{}", self.table)?;
        writeln!(
            f,
            "requests landing in their home PoP region: {} (paper: 'follows geography to a large extent')",
            vns_stats::pct(self.overall_home_fraction())
        )
    }
}
