//! Fig 12 — diurnal patterns in last-mile loss, by AS type and region.
//!
//! From the San Jose vantage: for each hour of the day (CET, as in the
//! paper), the number of probe rounds that saw any loss, split by
//! destination AS type and region. Expected shapes: loss towards EU/NA
//! destinations peaks with the *destination's* busy hours, while loss
//! towards AP destinations follows AP's own clock regardless (its transit
//! is hot enough to mask remote congestion); CAHPs show the strongest
//! diurnal swing.

use vns_core::PopId;
use vns_geo::Region;
use vns_stats::{Figure, Histogram, Series};
use vns_topo::AsType;

use crate::experiments::fig11::LastMileData;

/// CET offset used for the x axis (the paper plots CET).
const CET_OFFSET_HOURS: f64 = 1.0;

/// The four panels (one per destination AS type).
#[derive(Debug)]
pub struct Fig12 {
    /// `(type, figure with one series per destination region)`.
    pub panels: Vec<(AsType, Figure)>,
    /// Peak-to-trough ratio of lossy-round counts per (type, region).
    pub swing: Vec<(AsType, Region, f64)>,
}

/// Reduces the shared campaign from the SJS perspective.
pub fn run(data: &LastMileData) -> Fig12 {
    // One ledger unit per probe-train record reduced.
    vns_netsim::ledger::add_units(data.records.len() as u64);
    let sjs = PopId(1);
    let mut panels = Vec::new();
    let mut swing = Vec::new();
    for ty in AsType::ALL {
        let mut fig = Figure::new(
            format!("Fig 12 (SJS to {ty}s)"),
            format!("Lossy probe rounds per hour of day (CET), SJS to {ty} destinations"),
            "Hour of the day (CET)",
            "Loss frequency",
        );
        for region in [Region::AsiaPacific, Region::Europe, Region::NorthAmerica] {
            let mut hist = Histogram::hourly();
            for rec in &data.records {
                if rec.pop != sjs {
                    continue;
                }
                let host = &data.hosts[rec.host];
                if host.ty != ty || host.region != region {
                    continue;
                }
                if rec.train.lossy() {
                    hist.record(rec.train.at.local_hour(CET_OFFSET_HOURS));
                }
            }
            let rows: Vec<(f64, f64)> = hist
                .rows()
                .into_iter()
                .map(|(h, c)| (h, c as f64))
                .collect();
            let peak = rows.iter().map(|r| r.1).fold(0.0, f64::max);
            let trough = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
            swing.push((ty, region, peak / trough.max(1.0)));
            fig.push(Series::new(region.code(), rows));
        }
        panels.push((ty, fig));
    }
    Fig12 { panels, swing }
}

impl Fig12 {
    /// Peak/trough swing for one (type, region).
    pub fn swing_of(&self, ty: AsType, region: Region) -> f64 {
        self.swing
            .iter()
            .find(|(t, r, _)| *t == ty && *r == region)
            .map_or(0.0, |(_, _, s)| *s)
    }

    /// Hour (CET) of peak loss frequency for one (type, region).
    pub fn peak_hour(&self, ty: AsType, region: Region) -> Option<f64> {
        let fig = &self.panels.iter().find(|(t, _)| *t == ty)?.1;
        let series = fig.series_named(region.code())?;
        series
            .points
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|p| p.0)
    }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (_, fig) in &self.panels {
            writeln!(f, "{fig}")?;
        }
        writeln!(f, "peak/trough swing per (type, destination region):")?;
        for (ty, region, s) in &self.swing {
            writeln!(f, "  {ty} in {region}: {s:.1}x")?;
        }
        writeln!(
            f,
            "(paper: clear diurnal patterns; AP destinations follow AP's own clock; CAHP swings hardest)"
        )
    }
}
