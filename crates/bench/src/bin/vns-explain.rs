//! `vns-explain` — prints how traffic flows, hop by hop, for a sample of
//! destinations, with each hop's loss-model mean. Useful for understanding
//! the simulated world and for debugging calibration.
//!
//! ```sh
//! vns-explain [--seed N] [--scale F] [--pop CODE] [--count N]
//! ```

use vns_bench::campaign::prefix_metas;
use vns_bench::World;
use vns_core::PopId;

fn main() {
    let mut seed = 77u64;
    let mut scale = 0.6f64;
    let mut pop_code = "AMS".to_string();
    let mut count = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().expect("flag value");
        match a.as_str() {
            "--seed" => seed = val().parse().expect("seed"),
            "--scale" => scale = val().parse().expect("scale"),
            "--pop" => pop_code = val(),
            "--count" => count = val().parse().expect("count"),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(1);
            }
        }
    }

    let w = World::geo(seed, scale);
    let pop = w
        .vns
        .pop_by_code(&pop_code)
        .unwrap_or_else(|| panic!("unknown PoP code {pop_code}"))
        .id();
    let metas = prefix_metas(&w);
    println!(
        "world: {} ASes, {} prefixes; vantage {}",
        w.internet.as_count(),
        metas.len(),
        pop_code
    );
    for m in metas
        .iter()
        .step_by((metas.len() / count).max(1))
        .take(count)
    {
        println!(
            "\n=== {} ({} {}, geoip err {:.0} km)",
            m.prefix,
            m.ty,
            m.region.code(),
            m.geoip_err_km
        );
        for (tag, path) in [
            ("via VNS     ", w.vns.path_via_vns(&w.internet, pop, m.ip)),
            (
                "local exit  ",
                w.vns.path_via_local_exit(&w.internet, pop, m.ip),
            ),
        ] {
            match path {
                Ok(p) => {
                    println!("  {tag} ({:.0} km):", p.total_km());
                    for h in &p.hops {
                        let mean = w.factory.loss_model(h).mean_rate();
                        println!(
                            "    {:>7.0} km  loss {:>8.5}%  {}",
                            h.km,
                            mean * 100.0,
                            h.label
                        );
                    }
                }
                Err(e) => println!("  {tag}: unroutable ({e})"),
            }
        }
        if let Some(egress) = w.vns.egress_pop(&w.internet, PopId(10), m.ip) {
            println!("  egress from London's view: {}", w.vns.pop(egress).code());
        }
    }
}
