//! `vns-bench` — regenerates every table and figure of the paper.
//!
//! ```text
//! vns-bench [--seed N] [--scale F] [--sessions N] [--hosts N] [--days F]
//!           [--threads N] [--out DIR] <cmd>
//!
//! cmd: fig3 | as-congruence | fig4 | fig5 | fig6 | fig7 | fig9 | fig10 |
//!      fig11 | fig12 | table1 | jitter | steady-state | failover |
//!      adversarial | ablate-lp | ablate-best-external | ablate-geoip |
//!      ablate-fec | ablate-l2 | ablate-mode | ablate-measurement |
//!      ablate-auto-override | economics | setup-time | scale-curve | all
//! ```
//!
//! `scale-curve` sweeps a ladder of world scales up to `--scale` (e.g.
//! `--scale 10 scale-curve` measures scales 1, 2, 5, 10), building each
//! world with sharded delta convergence, running both verifier stages,
//! and tabulating AS/prefix/session counts, convergence messages and
//! rounds, wall clock, and peak RSS per rung.
//!
//! ```text
//! ```
//!
//! Results print to stdout as labelled series/tables (see EXPERIMENTS.md
//! for paper-vs-measured). Run with `--release`; the default scales finish
//! in a few minutes combined.
//!
//! Campaigns fan their work units out over `--threads N` workers
//! (default: all hardware threads; `--threads 1` is the sequential path).
//! Output artefacts are byte-identical at any thread count — the thread
//! count only moves wall-clock, which is recorded per experiment in
//! `BENCH_campaigns.json` (written next to the artefacts with `--out`;
//! without it, only a full baseline run — `all` at scale 1 — takes that
//! name in the working directory, anything else writes
//! `BENCH_campaigns.local.json` so the committed baseline stays intact).

use std::process::ExitCode;
use std::time::Instant;

use vns_bench::experiments::{
    ablate, adversarial, congruence, failover, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig7,
    fig9, jitter, steady_state, table1,
};
use vns_bench::{World, WorldConfig};
use vns_netsim::{Dur, Par};
use vns_service::{EndpointTable, PathTable};
use vns_verify::{verify_dataplane_with_service, DataplaneConfig, VerifyScope};

#[derive(Debug, Clone)]
struct Opts {
    seed: u64,
    scale: f64,
    sessions: usize,
    hosts_per_cell: usize,
    days: f64,
    threads: usize,
    out: Option<std::path::PathBuf>,
    cmd: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 77,
        scale: 1.0,
        sessions: 40,
        hosts_per_cell: 10,
        days: 2.0,
        threads: 0,
        out: None,
        cmd: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value after {name}"))
        };
        match a.as_str() {
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                opts.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--sessions" => {
                opts.sessions = take("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
            }
            "--hosts" => {
                opts.hosts_per_cell = take("--hosts")?
                    .parse()
                    .map_err(|e| format!("--hosts: {e}"))?;
            }
            "--days" => {
                opts.days = take("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--threads" => {
                opts.threads = take("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => opts.out = Some(std::path::PathBuf::from(take("--out")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            cmd if !cmd.starts_with('-') && opts.cmd.is_empty() => opts.cmd = cmd.to_string(),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.cmd.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

const USAGE: &str = "usage: vns-bench [--seed N] [--scale F] [--sessions N] [--hosts N] [--days F] [--threads N] [--out DIR] <experiment>\n\
experiments: fig3 as-congruence fig4 fig5 fig6 fig7 fig9 fig10 fig11 fig12 table1 jitter\n\
             steady-state failover adversarial ablate-lp ablate-best-external ablate-geoip ablate-fec\n\
             ablate-l2 ablate-mode ablate-measurement ablate-auto-override economics setup-time\n\
             scale-curve all\n\
--threads 0 (default) uses every hardware thread; artefacts are byte-identical at any count";

fn campaign_span(opts: &Opts) -> Dur {
    Dur::from_mins((opts.days * 24.0 * 60.0) as u64)
}

/// One timed experiment for `BENCH_campaigns.json`.
#[derive(Debug)]
struct ExpRecord {
    name: &'static str,
    scale: f64,
    wall_s: f64,
    units: u64,
    packets: u64,
}

/// Times `f` and samples the global work-unit and packet counters around
/// it. Channels flush their packet tallies on drop, and every experiment
/// drops its channels before returning, so the delta is complete.
/// `scale` is recorded per row — experiments at the invocation's scale
/// pass `opts.scale`; the scale-curve sweep stamps each rung's own value.
fn timed<T>(
    records: &mut Vec<ExpRecord>,
    name: &'static str,
    scale: f64,
    f: impl FnOnce() -> T,
) -> T {
    let units0 = vns_netsim::par::units_processed();
    let packets0 = vns_netsim::packets_sent();
    let t0 = Instant::now();
    let out = f();
    records.push(ExpRecord {
        name,
        scale,
        wall_s: t0.elapsed().as_secs_f64(),
        units: vns_netsim::par::units_processed() - units0,
        packets: vns_netsim::packets_sent() - packets0,
    });
    out
}

/// Renders the perf ledger. Hand-formatted JSON: the workspace has no
/// serde, and the schema is flat.
fn campaigns_json(opts: &Opts, par: Par, records: &[ExpRecord], total_s: f64) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"cmd\": \"{}\",\n", opts.cmd));
    s.push_str(&format!("  \"seed\": {},\n", opts.seed));
    s.push_str(&format!("  \"scale\": {},\n", opts.scale));
    s.push_str(&format!("  \"threads\": {},\n", par.threads()));
    s.push_str(&format!("  \"total_wall_s\": {total_s:.3},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        let tput = if r.wall_s > 0.0 {
            r.units as f64 / r.wall_s
        } else {
            0.0
        };
        let pkt_tput = if r.wall_s > 0.0 {
            r.packets as f64 / r.wall_s
        } else {
            0.0
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"scale\": {}, \"wall_s\": {:.3}, \"units\": {}, \"units_per_s\": {tput:.1}, \"packets\": {}, \"packets_per_s\": {pkt_tput:.0}}}{}\n",
            r.name,
            r.scale,
            r.wall_s,
            r.units,
            r.packets,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes the perf ledger to `--out`, or the working directory without it.
///
/// Without `--out` the working directory is typically the repo root, where
/// `BENCH_campaigns.json` is the committed full-campaign baseline that the
/// CI perf gate compares against. Only a run with the baseline's shape
/// (`all` at scale 1) may take that name; anything else — a single
/// experiment, a reduced scale — lands in `BENCH_campaigns.local.json`
/// (gitignored) so scratch runs cannot clobber the baseline.
fn write_campaigns(
    opts: &Opts,
    par: Par,
    records: &[ExpRecord],
    total_s: f64,
) -> Result<(), String> {
    let (dir, name) = match opts.out.clone() {
        Some(dir) => (dir, "BENCH_campaigns.json"),
        None if opts.cmd == "all" && opts.scale == 1.0 => {
            (std::path::PathBuf::from("."), "BENCH_campaigns.json")
        }
        None => {
            eprintln!(
                "note: not a full baseline run (cmd {}, scale {}); writing \
                 BENCH_campaigns.local.json — pass --out DIR to name it \
                 BENCH_campaigns.json elsewhere",
                opts.cmd, opts.scale
            );
            (std::path::PathBuf::from("."), "BENCH_campaigns.local.json")
        }
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, campaigns_json(opts, par, records, total_s))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Peak resident set (`VmHWM`) in MiB from `/proc/self/status`, `0.0`
/// where unavailable. Monotonic over the process lifetime, so in a sweep
/// the per-rung value is the high-water mark *up to* that rung.
fn peak_rss_mib() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The control-plane scale sweep: builds the world at each rung of a
/// fixed ladder up to `--scale`, runs both verifier stages on it, and
/// tabulates size, convergence cost, wall clock and peak memory. Each
/// rung lands in the perf ledger as `scale-build` / `scale-verify` rows
/// stamped with the rung's own scale.
fn scale_curve(opts: &Opts, rec: &mut Vec<ExpRecord>) -> Result<String, String> {
    const LADDER: [f64; 7] = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];
    let mut rungs: Vec<f64> = LADDER.iter().copied().filter(|s| *s < opts.scale).collect();
    rungs.push(opts.scale);
    let mut body = String::from(
        "scale-curve: control-plane cost vs world scale (sharded delta convergence)\n\
         scale    ases  prefixes  sessions  conv_msgs    rounds  build_s  verify_s  peak_rss_mib  verdict\n",
    );
    for &s in &rungs {
        let t0 = Instant::now();
        let w = timed(rec, "scale-build", s, || World::geo(opts.seed, s));
        let build_s = t0.elapsed().as_secs_f64();
        let ases = w.internet.as_count();
        let prefixes = w.internet.prefixes().count();
        let sessions = w
            .internet
            .net
            .speaker_ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|id| {
                w.internet
                    .net
                    .speaker(*id)
                    .map_or(0, |sp| sp.peer_ids().count())
            })
            .sum::<usize>()
            / 2;
        let msgs: u64 = w.internet.convergence_log.iter().map(|c| c.messages).sum();
        let rounds: u64 = w.internet.convergence_log.iter().map(|c| c.rounds).sum();
        let t1 = Instant::now();
        let ok = timed(rec, "scale-verify", s, || {
            let control = vns_verify::verify(&w.internet, &w.vns);
            let endpoints = EndpointTable::build(&w.internet, &w.vns);
            let paths = PathTable::build(&w.internet, &w.vns, &endpoints);
            let data = verify_dataplane_with_service(
                &w.internet,
                &w.vns,
                &VerifyScope::default(),
                &DataplaneConfig::default(),
                &endpoints,
                &paths,
            );
            control.passes() && data.passes()
        });
        let verify_s = t1.elapsed().as_secs_f64();
        let verdict = if ok { "pass" } else { "FAIL" };
        body.push_str(&format!(
            "{s:<7} {ases:<5} {prefixes:<9} {sessions:<9} {msgs:<12} {rounds:<7} {build_s:<8.2} {verify_s:<9.2} {:<13.1} {verdict}\n",
            peak_rss_mib(),
        ));
        eprintln!(
            "scale {s}: {ases} ASes, {prefixes} prefixes, {sessions} sessions, \
             {msgs} msgs / {rounds} rounds, build {build_s:.2}s, verify {verify_s:.2}s, {verdict}"
        );
        if !ok {
            return Err(format!("scale-curve: verifier failed at scale {s}\n{body}"));
        }
    }
    Ok(body)
}

/// Prints a result and, with `--out`, also writes it to `DIR/<cmd>.txt`
/// so the series can be re-plotted without re-running.
fn emit(opts: &Opts, cmd: &str, body: String) -> Result<(), String> {
    println!("{body}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("--out {}: {e}", dir.display()))?;
        let path = dir.join(format!("{cmd}.txt"));
        std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn run_one(opts: &Opts, cmd: &str, par: Par, rec: &mut Vec<ExpRecord>) -> Result<(), String> {
    let timer = std::time::Instant::now();
    eprintln!(
        "== {cmd} (seed {}, scale {}, threads {}) ==",
        opts.seed,
        opts.scale,
        par.threads()
    );
    match cmd {
        "fig3" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig3", opts.scale, || fig3::run(&w, par));
            emit(opts, cmd, r.to_string())?;
        }
        "as-congruence" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "as-congruence", opts.scale, || {
                congruence::run(&w, par)
            });
            emit(opts, cmd, r.to_string())?;
        }
        "fig4" => {
            let before = World::hot(opts.seed, opts.scale);
            let after = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig4", opts.scale, || fig4::run(&before, &after));
            emit(opts, cmd, r.to_string())?;
        }
        "fig5" => {
            let before = World::hot(opts.seed, opts.scale);
            let after = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig5", opts.scale, || fig5::run(&before, &after));
            emit(opts, cmd, r.to_string())?;
        }
        "fig6" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig6", opts.scale, || fig6::run(&w, 3, par));
            emit(opts, cmd, r.to_string())?;
        }
        "fig7" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig7", opts.scale, || fig7::run(&w, par));
            emit(opts, cmd, r.to_string())?;
        }
        "fig9" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "fig9", opts.scale, || {
                fig9::run(&w, opts.sessions, par)
            });
            emit(opts, cmd, r.to_string())?;
        }
        "fig10" => {
            let w = World::geo(opts.seed, opts.scale);
            let nine = timed(rec, "fig10", opts.scale, || {
                fig9::run(&w, opts.sessions, par)
            });
            emit(opts, cmd, fig10::run(&nine.sessions).to_string())?;
        }
        "fig11" => {
            let w = World::geo(opts.seed, opts.scale);
            let data = timed(rec, "fig11", opts.scale, || {
                fig11::run_campaign(
                    &w,
                    opts.hosts_per_cell,
                    Dur::from_mins(30),
                    campaign_span(opts),
                    par,
                )
            });
            emit(opts, cmd, fig11::run(&data).to_string())?;
        }
        "fig12" => {
            let w = World::geo(opts.seed, opts.scale);
            let data = timed(rec, "fig12", opts.scale, || {
                fig11::run_campaign(
                    &w,
                    opts.hosts_per_cell,
                    Dur::from_mins(30),
                    campaign_span(opts),
                    par,
                )
            });
            emit(opts, cmd, fig12::run(&data).to_string())?;
        }
        "table1" => {
            let w = World::geo(opts.seed, opts.scale);
            let data = timed(rec, "table1", opts.scale, || {
                fig11::run_campaign(
                    &w,
                    opts.hosts_per_cell,
                    Dur::from_mins(30),
                    campaign_span(opts),
                    par,
                )
            });
            emit(opts, cmd, table1::run(&data).to_string())?;
        }
        "failover" => {
            // Every scenario mutates its own world, so only the shared
            // config crosses into the parallel units.
            let cfg = WorldConfig {
                seed: opts.seed,
                scale: opts.scale,
                ..WorldConfig::default()
            };
            let r = timed(rec, "failover", opts.scale, || failover::run(&cfg, par));
            emit(opts, cmd, r.to_string())?;
        }
        "adversarial" => {
            // Every unit mutates its own world (attacks rewrite the
            // control plane), so only the shared config crosses into the
            // parallel units.
            let cfg = WorldConfig {
                seed: opts.seed,
                scale: opts.scale,
                ..WorldConfig::default()
            };
            let r = timed(rec, "adversarial", opts.scale, || {
                adversarial::run(&cfg, par)
            });
            emit(opts, cmd, r.to_string())?;
        }
        "jitter" => {
            let w = World::geo(opts.seed, opts.scale);
            let r = timed(rec, "jitter", opts.scale, || {
                jitter::run(&w, opts.sessions.min(20), par)
            });
            emit(opts, cmd, r.to_string())?;
        }
        "steady-state" => {
            // Builds its own world: the churn-under-failure phase mutates
            // the control plane.
            let cfg = WorldConfig {
                seed: opts.seed,
                scale: opts.scale,
                ..WorldConfig::default()
            };
            let ss = steady_state::SteadyStateOpts::from_cli(opts.sessions, opts.days);
            let r = timed(rec, "steady-state", opts.scale, || {
                steady_state::run(&cfg, ss, par)
            });
            emit(opts, cmd, r.to_string())?;
        }
        "ablate-lp" => emit(
            opts,
            cmd,
            timed(rec, "ablate-lp", opts.scale, || {
                ablate::lp_shape(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "ablate-best-external" => {
            emit(
                opts,
                cmd,
                timed(rec, "ablate-best-external", opts.scale, || {
                    ablate::best_external(opts.seed, opts.scale)
                })
                .to_string(),
            )?;
        }
        "ablate-geoip" => emit(
            opts,
            cmd,
            timed(rec, "ablate-geoip", opts.scale, || {
                ablate::geoip(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "ablate-fec" => emit(
            opts,
            cmd,
            timed(rec, "ablate-fec", opts.scale, || ablate::fec_arq(opts.seed)).to_string(),
        )?,
        "ablate-l2" => emit(
            opts,
            cmd,
            timed(rec, "ablate-l2", opts.scale, || {
                ablate::l2_topology(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "ablate-mode" => emit(
            opts,
            cmd,
            timed(rec, "ablate-mode", opts.scale, || {
                ablate::mode_delay(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "ablate-measurement" => {
            emit(
                opts,
                cmd,
                timed(rec, "ablate-measurement", opts.scale, || {
                    ablate::geo_vs_measurement(opts.seed, opts.scale, par)
                })
                .to_string(),
            )?;
        }
        "ablate-auto-override" => {
            emit(
                opts,
                cmd,
                timed(rec, "ablate-auto-override", opts.scale, || {
                    ablate::auto_override(opts.seed, opts.scale, 30.0, par)
                })
                .to_string(),
            )?;
        }
        "economics" => emit(
            opts,
            cmd,
            timed(rec, "economics", opts.scale, || {
                ablate::economics(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "setup-time" => emit(
            opts,
            cmd,
            timed(rec, "setup-time", opts.scale, || {
                ablate::setup_time(opts.seed, opts.scale)
            })
            .to_string(),
        )?,
        "scale-curve" => {
            let body = scale_curve(opts, rec)?;
            emit(opts, cmd, body)?;
        }
        "all" => {
            // Share worlds/campaigns where possible to keep `all` fast.
            let before = World::hot(opts.seed, opts.scale);
            let w = World::geo(opts.seed, opts.scale);
            println!("{}", timed(rec, "fig3", opts.scale, || fig3::run(&w, par)));
            println!(
                "{}",
                timed(rec, "as-congruence", opts.scale, || congruence::run(
                    &w, par
                ))
            );
            println!(
                "{}",
                timed(rec, "fig4", opts.scale, || fig4::run(&before, &w))
            );
            println!(
                "{}",
                timed(rec, "fig5", opts.scale, || fig5::run(&before, &w))
            );
            println!(
                "{}",
                timed(rec, "fig6", opts.scale, || fig6::run(&w, 3, par))
            );
            println!("{}", timed(rec, "fig7", opts.scale, || fig7::run(&w, par)));
            let nine = timed(rec, "fig9", opts.scale, || {
                fig9::run(&w, opts.sessions, par)
            });
            println!("{nine}");
            println!(
                "{}",
                timed(rec, "fig10", opts.scale, || fig10::run(&nine.sessions))
            );
            let data = timed(rec, "fig11", opts.scale, || {
                fig11::run_campaign(
                    &w,
                    opts.hosts_per_cell,
                    Dur::from_mins(30),
                    campaign_span(opts),
                    par,
                )
            });
            emit(opts, cmd, fig11::run(&data).to_string())?;
            emit(
                opts,
                cmd,
                timed(rec, "fig12", opts.scale, || fig12::run(&data)).to_string(),
            )?;
            emit(
                opts,
                cmd,
                timed(rec, "table1", opts.scale, || table1::run(&data)).to_string(),
            )?;
            println!(
                "{}",
                timed(rec, "jitter", opts.scale, || jitter::run(
                    &w,
                    opts.sessions.min(20),
                    par
                ))
            );
            println!(
                "{}",
                timed(rec, "failover", opts.scale, || failover::run(
                    &w.config, par
                ))
            );
            println!(
                "{}",
                timed(rec, "adversarial", opts.scale, || adversarial::run(
                    &w.config, par
                ))
            );
            let ss = steady_state::SteadyStateOpts::from_cli(opts.sessions, opts.days);
            emit(
                opts,
                "steady-state",
                timed(rec, "steady-state", opts.scale, || {
                    steady_state::run(&w.config, ss, par)
                })
                .to_string(),
            )?;
            println!(
                "{}",
                timed(rec, "ablate-lp", opts.scale, || ablate::lp_shape(
                    opts.seed, opts.scale
                ))
            );
            println!(
                "{}",
                timed(rec, "ablate-best-external", opts.scale, || {
                    ablate::best_external(opts.seed, opts.scale)
                })
            );
            println!(
                "{}",
                timed(rec, "ablate-geoip", opts.scale, || ablate::geoip(
                    opts.seed, opts.scale
                ))
            );
            println!(
                "{}",
                timed(rec, "ablate-fec", opts.scale, || ablate::fec_arq(opts.seed))
            );
            println!(
                "{}",
                timed(rec, "ablate-l2", opts.scale, || {
                    ablate::l2_topology(opts.seed, opts.scale)
                })
            );
            println!(
                "{}",
                timed(rec, "ablate-mode", opts.scale, || {
                    ablate::mode_delay(opts.seed, opts.scale)
                })
            );
            println!(
                "{}",
                timed(rec, "ablate-measurement", opts.scale, || {
                    ablate::geo_vs_measurement(opts.seed, opts.scale, par)
                })
            );
            println!(
                "{}",
                timed(rec, "ablate-auto-override", opts.scale, || {
                    ablate::auto_override(opts.seed, opts.scale, 30.0, par)
                })
            );
            println!(
                "{}",
                timed(rec, "economics", opts.scale, || ablate::economics(
                    opts.seed, opts.scale
                ))
            );
            println!(
                "{}",
                timed(rec, "setup-time", opts.scale, || {
                    ablate::setup_time(opts.seed, opts.scale)
                })
            );
        }
        other => return Err(format!("unknown experiment {other}\n{USAGE}")),
    }
    eprintln!("== {cmd} done in {:.1}s ==", timer.elapsed().as_secs_f64());
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Ok(opts) => {
            let par = Par::new(opts.threads);
            let mut records = Vec::new();
            let t0 = Instant::now();
            match run_one(&opts, &opts.cmd.clone(), par, &mut records) {
                Ok(()) => {
                    let total = t0.elapsed().as_secs_f64();
                    if let Err(msg) = write_campaigns(&opts, par, &records, total) {
                        eprintln!("{msg}");
                        return ExitCode::FAILURE;
                    }
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
