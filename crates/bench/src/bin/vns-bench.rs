//! `vns-bench` — regenerates every table and figure of the paper.
//!
//! ```text
//! vns-bench [--seed N] [--scale F] [--sessions N] [--hosts N] [--days F] <cmd>
//!
//! cmd: fig3 | as-congruence | fig4 | fig5 | fig6 | fig7 | fig9 | fig10 |
//!      fig11 | fig12 | table1 | jitter |
//!      ablate-lp | ablate-best-external | ablate-geoip | ablate-fec |
//!      ablate-l2 | ablate-mode | ablate-measurement | ablate-auto-override |
//!      economics | setup-time | all
//! ```
//!
//! Results print to stdout as labelled series/tables (see EXPERIMENTS.md
//! for paper-vs-measured). Run with `--release`; the default scales finish
//! in a few minutes combined.

use std::process::ExitCode;

use vns_bench::experiments::{
    ablate, congruence, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig7, fig9, jitter, table1,
};
use vns_bench::World;
use vns_netsim::Dur;

#[derive(Debug, Clone)]
struct Opts {
    seed: u64,
    scale: f64,
    sessions: usize,
    hosts_per_cell: usize,
    days: f64,
    out: Option<std::path::PathBuf>,
    cmd: String,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 77,
        scale: 1.0,
        sessions: 40,
        hosts_per_cell: 10,
        days: 2.0,
        out: None,
        cmd: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value after {name}"))
        };
        match a.as_str() {
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                opts.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--sessions" => {
                opts.sessions = take("--sessions")?
                    .parse()
                    .map_err(|e| format!("--sessions: {e}"))?;
            }
            "--hosts" => {
                opts.hosts_per_cell = take("--hosts")?
                    .parse()
                    .map_err(|e| format!("--hosts: {e}"))?;
            }
            "--days" => {
                opts.days = take("--days")?
                    .parse()
                    .map_err(|e| format!("--days: {e}"))?;
            }
            "--out" => opts.out = Some(std::path::PathBuf::from(take("--out")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            cmd if !cmd.starts_with('-') && opts.cmd.is_empty() => opts.cmd = cmd.to_string(),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.cmd.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(opts)
}

const USAGE: &str = "usage: vns-bench [--seed N] [--scale F] [--sessions N] [--hosts N] [--days F] [--out DIR] <experiment>\n\
experiments: fig3 as-congruence fig4 fig5 fig6 fig7 fig9 fig10 fig11 fig12 table1 jitter\n\
             ablate-lp ablate-best-external ablate-geoip ablate-fec ablate-l2 ablate-mode\n\
             ablate-measurement ablate-auto-override economics setup-time all";

fn campaign_span(opts: &Opts) -> Dur {
    Dur::from_mins((opts.days * 24.0 * 60.0) as u64)
}

/// Prints a result and, with `--out`, also writes it to `DIR/<cmd>.txt`
/// so the series can be re-plotted without re-running.
fn emit(opts: &Opts, cmd: &str, body: String) -> Result<(), String> {
    println!("{body}");
    if let Some(dir) = &opts.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("--out {}: {e}", dir.display()))?;
        let path = dir.join(format!("{cmd}.txt"));
        std::fs::write(&path, body).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

fn run_one(opts: &Opts, cmd: &str) -> Result<(), String> {
    let timer = std::time::Instant::now();
    eprintln!("== {cmd} (seed {}, scale {}) ==", opts.seed, opts.scale);
    match cmd {
        "fig3" => {
            let mut w = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig3::run(&mut w).to_string())?;
        }
        "as-congruence" => {
            let mut w = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, congruence::run(&mut w).to_string())?;
        }
        "fig4" => {
            let before = World::hot(opts.seed, opts.scale);
            let after = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig4::run(&before, &after).to_string())?;
        }
        "fig5" => {
            let before = World::hot(opts.seed, opts.scale);
            let after = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig5::run(&before, &after).to_string())?;
        }
        "fig6" => {
            let mut w = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig6::run(&mut w, 3).to_string())?;
        }
        "fig7" => {
            let w = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig7::run(&w).to_string())?;
        }
        "fig9" => {
            let mut w = World::geo(opts.seed, opts.scale);
            emit(opts, cmd, fig9::run(&mut w, opts.sessions).to_string())?;
        }
        "fig10" => {
            let mut w = World::geo(opts.seed, opts.scale);
            let nine = fig9::run(&mut w, opts.sessions);
            emit(opts, cmd, fig10::run(&nine.sessions).to_string())?;
        }
        "fig11" => {
            let mut w = World::geo(opts.seed, opts.scale);
            let data = fig11::run_campaign(
                &mut w,
                opts.hosts_per_cell,
                Dur::from_mins(30),
                campaign_span(opts),
            );
            emit(opts, cmd, fig11::run(&data).to_string())?;
        }
        "fig12" => {
            let mut w = World::geo(opts.seed, opts.scale);
            let data = fig11::run_campaign(
                &mut w,
                opts.hosts_per_cell,
                Dur::from_mins(30),
                campaign_span(opts),
            );
            emit(opts, cmd, fig12::run(&data).to_string())?;
        }
        "table1" => {
            let mut w = World::geo(opts.seed, opts.scale);
            let data = fig11::run_campaign(
                &mut w,
                opts.hosts_per_cell,
                Dur::from_mins(30),
                campaign_span(opts),
            );
            emit(opts, cmd, table1::run(&data).to_string())?;
        }
        "jitter" => {
            let mut w = World::geo(opts.seed, opts.scale);
            emit(
                opts,
                cmd,
                jitter::run(&mut w, opts.sessions.min(20)).to_string(),
            )?;
        }
        "ablate-lp" => emit(
            opts,
            cmd,
            ablate::lp_shape(opts.seed, opts.scale).to_string(),
        )?,
        "ablate-best-external" => {
            emit(
                opts,
                cmd,
                ablate::best_external(opts.seed, opts.scale).to_string(),
            )?;
        }
        "ablate-geoip" => emit(opts, cmd, ablate::geoip(opts.seed, opts.scale).to_string())?,
        "ablate-fec" => emit(opts, cmd, ablate::fec_arq(opts.seed).to_string())?,
        "ablate-l2" => emit(
            opts,
            cmd,
            ablate::l2_topology(opts.seed, opts.scale).to_string(),
        )?,
        "ablate-mode" => emit(
            opts,
            cmd,
            ablate::mode_delay(opts.seed, opts.scale).to_string(),
        )?,
        "ablate-measurement" => {
            emit(
                opts,
                cmd,
                ablate::geo_vs_measurement(opts.seed, opts.scale).to_string(),
            )?;
        }
        "ablate-auto-override" => {
            emit(
                opts,
                cmd,
                ablate::auto_override(opts.seed, opts.scale, 30.0).to_string(),
            )?;
        }
        "economics" => emit(
            opts,
            cmd,
            ablate::economics(opts.seed, opts.scale).to_string(),
        )?,
        "setup-time" => emit(
            opts,
            cmd,
            ablate::setup_time(opts.seed, opts.scale).to_string(),
        )?,
        "all" => {
            // Share worlds/campaigns where possible to keep `all` fast.
            let before = World::hot(opts.seed, opts.scale);
            let mut w = World::geo(opts.seed, opts.scale);
            println!("{}", fig3::run(&mut w));
            println!("{}", congruence::run(&mut w));
            println!("{}", fig4::run(&before, &w));
            println!("{}", fig5::run(&before, &w));
            println!("{}", fig6::run(&mut w, 3));
            println!("{}", fig7::run(&w));
            let nine = fig9::run(&mut w, opts.sessions);
            println!("{nine}");
            println!("{}", fig10::run(&nine.sessions));
            let data = fig11::run_campaign(
                &mut w,
                opts.hosts_per_cell,
                Dur::from_mins(30),
                campaign_span(opts),
            );
            emit(opts, cmd, fig11::run(&data).to_string())?;
            emit(opts, cmd, fig12::run(&data).to_string())?;
            emit(opts, cmd, table1::run(&data).to_string())?;
            println!("{}", jitter::run(&mut w, opts.sessions.min(20)));
            println!("{}", ablate::lp_shape(opts.seed, opts.scale));
            println!("{}", ablate::best_external(opts.seed, opts.scale));
            println!("{}", ablate::geoip(opts.seed, opts.scale));
            println!("{}", ablate::fec_arq(opts.seed));
            println!("{}", ablate::l2_topology(opts.seed, opts.scale));
            println!("{}", ablate::mode_delay(opts.seed, opts.scale));
            println!("{}", ablate::geo_vs_measurement(opts.seed, opts.scale));
            println!("{}", ablate::auto_override(opts.seed, opts.scale, 30.0));
            println!("{}", ablate::economics(opts.seed, opts.scale));
            println!("{}", ablate::setup_time(opts.seed, opts.scale));
        }
        other => return Err(format!("unknown experiment {other}\n{USAGE}")),
    }
    eprintln!("== {cmd} done in {:.1}s ==", timer.elapsed().as_secs_f64());
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Ok(opts) => match run_one(&opts, &opts.cmd.clone()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
    }
}
