//! `vns-verify` — static control-plane invariant checker CLI.
//!
//! ```text
//! vns-verify [--seed N] [--scale F] [--mode geo|hot] [--quiet]
//! ```
//!
//! Builds the standard world (generated Internet + VNS deployment, same
//! knobs as `vns-bench`), runs every `vns-verify` invariant against the
//! converged control plane, pretty-prints the report and exits nonzero
//! when any error-severity violation exists. Use it before a long
//! campaign run, or after hand-editing deployment knobs, to catch a
//! misconfigured control plane in seconds instead of hours.

use std::process::ExitCode;

use vns_bench::{World, WorldConfig};
use vns_core::RoutingMode;

#[derive(Debug, Clone)]
struct Opts {
    seed: u64,
    scale: f64,
    mode: RoutingMode,
    quiet: bool,
}

const USAGE: &str = "usage: vns-verify [--seed N] [--scale F] [--mode geo|hot] [--quiet]";

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        seed: 77,
        scale: 1.0,
        mode: RoutingMode::GeoColdPotato,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value after {name}"))
        };
        match a.as_str() {
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                opts.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--mode" => {
                opts.mode = match take("--mode")?.as_str() {
                    "geo" => RoutingMode::GeoColdPotato,
                    "hot" => RoutingMode::HotPotato,
                    other => return Err(format!("--mode: expected geo|hot, got {other}")),
                }
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Opts) -> ExitCode {
    let timer = std::time::Instant::now();
    eprintln!(
        "== vns-verify (seed {}, scale {}, mode {:?}) ==",
        opts.seed, opts.scale, opts.mode
    );
    let mut cfg = WorldConfig {
        seed: opts.seed,
        scale: opts.scale,
        ..WorldConfig::default()
    };
    cfg.vns.mode = opts.mode;
    let world = World::build(cfg);
    let report = vns_verify::verify(&world.internet, &world.vns);
    if !opts.quiet || !report.passes() {
        print!("{}", report.render());
    }
    eprintln!(
        "== checked {} speakers in {:.2}s ==",
        world.internet.net.speaker_ids().count(),
        timer.elapsed().as_secs_f64()
    );
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Ok(opts) => run(&opts),
    }
}
