//! `vns-verify` — static two-stage checker CLI.
//!
//! ```text
//! vns-verify [control|dataplane|all] [--seed N] [--scale F] [--mode geo|hot] [--quiet]
//! ```
//!
//! Builds the standard world (generated Internet + VNS deployment, same
//! knobs as `vns-bench`) and runs the selected verification stage:
//!
//! * `control` — the per-router control-plane invariants over converged
//!   RIBs (stage 1);
//! * `dataplane` — the whole-network data-plane model checker: derives
//!   the forwarding graph and proves LOOP-FREE, NO-BLACKHOLE,
//!   ANYCAST-NEAREST, WAYPOINT (against freshly built service tables)
//!   and STRETCH-BOUND, with a per-check timing ledger (stage 2);
//! * `all` (default) — both stages.
//!
//! Exits nonzero when any error-severity violation exists. Use it before
//! a long campaign run, or after hand-editing deployment knobs, to catch
//! a misconfigured control plane in seconds instead of hours.

use std::process::ExitCode;

use vns_bench::{World, WorldConfig};
use vns_core::RoutingMode;
use vns_service::{EndpointTable, PathTable};
use vns_verify::{verify_dataplane_with_service, DataplaneConfig, VerifyScope};

/// Which verification stage(s) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Control,
    Dataplane,
    All,
}

#[derive(Debug, Clone)]
struct Opts {
    stage: Stage,
    seed: u64,
    scale: f64,
    mode: RoutingMode,
    monolithic: bool,
    quiet: bool,
}

const USAGE: &str = "usage: vns-verify [control|dataplane|all] [--seed N] [--scale F] \
     [--mode geo|hot] [--monolithic] [--quiet]\n\
     --monolithic converges with the reference activation-queue engine \
     instead of the sharded one (differential debugging)";

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        stage: Stage::All,
        seed: 77,
        scale: 1.0,
        mode: RoutingMode::GeoColdPotato,
        monolithic: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("missing value after {name}"))
        };
        match a.as_str() {
            "control" => opts.stage = Stage::Control,
            "dataplane" => opts.stage = Stage::Dataplane,
            "all" => opts.stage = Stage::All,
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--scale" => {
                opts.scale = take("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--mode" => {
                opts.mode = match take("--mode")?.as_str() {
                    "geo" => RoutingMode::GeoColdPotato,
                    "hot" => RoutingMode::HotPotato,
                    other => return Err(format!("--mode: expected geo|hot, got {other}")),
                }
            }
            "--monolithic" => opts.monolithic = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Opts) -> ExitCode {
    let timer = std::time::Instant::now();
    eprintln!(
        "== vns-verify {:?} (seed {}, scale {}, mode {:?}) ==",
        opts.stage, opts.seed, opts.scale, opts.mode
    );
    let mut cfg = WorldConfig {
        seed: opts.seed,
        scale: opts.scale,
        ..WorldConfig::default()
    };
    cfg.vns.mode = opts.mode;
    cfg.vns.monolithic_convergence = opts.monolithic;
    let world = World::build(cfg);

    let mut ok = true;
    if opts.stage != Stage::Dataplane {
        let report = vns_verify::verify(&world.internet, &world.vns);
        if !opts.quiet || !report.passes() {
            print!("{}", report.render());
        }
        ok &= report.passes();
    }
    if opts.stage != Stage::Control {
        // Build the service plane's cached tables so WAYPOINT has
        // something to cross-check, exactly as the steady-state campaign
        // would hold them.
        let endpoints = EndpointTable::build(&world.internet, &world.vns);
        let paths = PathTable::build(&world.internet, &world.vns, &endpoints);
        let report = verify_dataplane_with_service(
            &world.internet,
            &world.vns,
            &VerifyScope::default(),
            &DataplaneConfig::default(),
            &endpoints,
            &paths,
        );
        if !opts.quiet || !report.passes() {
            print!("{}", report.render());
        }
        ok &= report.passes();
    }
    eprintln!(
        "== checked {} speakers in {:.2}s ==",
        world.internet.net.speaker_ids().count(),
        timer.elapsed().as_secs_f64()
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
        Ok(opts) => run(&opts),
    }
}
