//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation against the simulated world.
//!
//! Each experiment module builds (or receives) a [`World`] — a generated
//! Internet plus a VNS deployment — runs the paper's measurement
//! methodology at a configurable scale, and returns a result struct that
//! both prints the figure's series/rows and exposes the headline numbers
//! for assertions. The `vns-bench` binary drives them; the integration
//! tests assert the paper's qualitative shapes hold (who wins, roughly by
//! how much, where the crossovers are).
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`experiments::fig3`] | Fig 3 — geo-routing precision (CDF + scatter) |
//! | [`experiments::congruence`] | Sec 4.1 — same-AS prefix congruence stats |
//! | [`experiments::fig4`] | Fig 4 — egress PoP distribution before/after |
//! | [`experiments::fig5`] | Fig 5 — neighbour shares and transit fraction |
//! | [`experiments::fig6`] | Fig 6 — RTT via VNS vs via upstreams |
//! | [`experiments::fig7`] | Fig 7 — anycast landing matrix |
//! | [`experiments::fig9`] | Fig 9 — stream loss CCDF, VNS vs transit |
//! | [`experiments::fig10`] | Fig 10 — loss magnitude vs lossy slots |
//! | [`experiments::fig11`] | Fig 11 — last-mile loss by PoP and region |
//! | [`experiments::fig12`] | Fig 12 — diurnal loss patterns by AS type |
//! | [`experiments::table1`] | Table 1 — last-mile loss by AS type/region |
//! | [`experiments::jitter`] | Sec 5.1.1 — jitter percentiles |
//! | [`experiments::ablate`] | beyond-paper ablations (lp shape, best-external, GeoIP errors, FEC/ARQ, L2 topology) |
//! | [`experiments::failover`] | beyond-paper failure & reconvergence campaign (link/PoP/RR faults, outage windows) |
//! | [`experiments::steady_state`] | beyond-paper live call churn with a churn-under-failure phase |
//! | [`experiments::adversarial`] | beyond-paper attack corpus vs the verifier — detection matrix and catch rate |

pub mod campaign;
pub mod experiments;
pub mod world;

pub use world::{World, WorldConfig};
