//! Criterion microbenchmarks for the performance-critical substrate:
//! event engine throughput, BGP machinery, path resolution, channel
//! sampling and topology generation/convergence.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_bench::campaign::prefix_metas;
use vns_bench::World;
use vns_bgp::{compare_routes, Candidate, DecisionContext, Prefix, PrefixTrie};
use vns_core::PopId;
use vns_geo::GeoPoint;
use vns_netsim::{Dur, Engine, LossModel, LossProcess, SimTime};

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("engine/1M_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            for i in 0..1000u32 {
                eng.schedule(SimTime::EPOCH + Dur::from_micros(u64::from(i)), i);
            }
            let mut n = 0u64;
            eng.run_to_completion(|ctx, ev| {
                n += 1;
                if n < 1_000_000 {
                    ctx.schedule_in(Dur::from_micros(1), ev);
                }
            });
            black_box(n);
        });
    });
}

fn bench_great_circle(c: &mut Criterion) {
    let a = GeoPoint::new(52.37, 4.90);
    let bpt = GeoPoint::new(1.35, 103.82);
    c.bench_function("geo/great_circle", |b| {
        b.iter(|| black_box(vns_geo::great_circle_km(black_box(a), black_box(bpt))));
    });
}

fn bench_trie_lpm(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    let mut rng = SmallRng::seed_from_u64(5);
    use rand::Rng;
    for i in 0..10_000u32 {
        let len = rng.gen_range(12..=24);
        trie.insert(Prefix::new(rng.gen(), len), i);
    }
    c.bench_function("bgp/trie_lpm_10k", |b| {
        let mut ip = 0u32;
        b.iter(|| {
            ip = ip.wrapping_add(0x9e37_79b9);
            black_box(trie.lookup(black_box(ip)));
        });
    });
}

fn bench_decision(c: &mut Criterion) {
    use vns_bgp::{Asn, Origin, Relation, RouteAttrs, RouteSource, SpeakerId};
    let mk = |lp: u32, path_len: usize, peer: u32| Candidate {
        attrs: RouteAttrs {
            local_pref: lp,
            as_path: (0..path_len as u32).map(Asn).collect(),
            origin: Origin::Igp,
            med: 0,
            communities: vec![],
            next_hop: SpeakerId(peer),
            originator_id: None,
            cluster_list: vec![],
        },
        source: RouteSource::Ebgp {
            peer: SpeakerId(peer),
            peer_as: Asn(peer),
            relation: Relation::Provider,
        },
    };
    let a = mk(100, 3, 7);
    let b2 = mk(100, 3, 9);
    let ctx = DecisionContext::no_igp();
    c.bench_function("bgp/compare_routes", |b| {
        b.iter(|| black_box(compare_routes(black_box(&a), black_box(&b2), &ctx)));
    });
}

fn bench_loss_process(c: &mut Criterion) {
    let model = LossModel::bursty(0.01, 0.4, 2.0);
    c.bench_function("netsim/ge_loss_sample", |b| {
        let mut p = LossProcess::new(model.clone(), SmallRng::seed_from_u64(1));
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_millis(2);
            black_box(p.packet_lost(t));
        });
    });
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("generate+converge", "scale0.45"), |b| {
        b.iter(|| black_box(World::geo(black_box(3), 0.45)));
    });
    g.finish();
}

fn bench_path_resolution(c: &mut Criterion) {
    let world = World::geo(11, 0.45);
    let metas = prefix_metas(&world);
    c.bench_function("path/resolve_via_vns", |b| {
        let mut i = 0;
        b.iter(|| {
            let m = &metas[i % metas.len()];
            i += 1;
            black_box(world.vns.path_via_vns(&world.internet, PopId(9), m.ip).ok());
        });
    });
}

fn bench_path_channel_send(c: &mut Criterion) {
    use vns_netsim::diurnal::{DiurnalProfile, DiurnalShape};
    use vns_netsim::{DelaySampler, HopChannel, PathChannel};
    // A realistic three-hop path: last mile + congested haul + clean edge.
    let hops = || {
        let mut lm = HopChannel::ideal(3.0);
        lm.loss = LossProcess::new(
            LossModel::Congestion {
                profile: DiurnalProfile::new(DiurnalShape::Residential, 0.5, 0.42, 1.0),
                knee: 0.7,
                max_p: 0.05,
                fluctuation_sigma: 0.35,
            },
            SmallRng::seed_from_u64(21),
        );
        lm.delay = DelaySampler::contended(
            3.0,
            DiurnalProfile::new(DiurnalShape::Residential, 0.5, 0.42, 1.0),
        );
        let mut haul = HopChannel::ideal(40.0);
        haul.loss = LossProcess::new(
            LossModel::bursty(0.002, 0.3, 1.5),
            SmallRng::seed_from_u64(22),
        );
        vec![lm, haul, HopChannel::ideal(2.0)]
    };
    let mut g = c.benchmark_group("channel");
    g.bench_function("send_exact", |b| {
        let mut ch = PathChannel::exact(hops(), SmallRng::seed_from_u64(23));
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_micros(100);
            black_box(ch.send(t));
        });
    });
    g.bench_function("send_fast", |b| {
        let mut ch = PathChannel::new(hops(), SmallRng::seed_from_u64(23));
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_micros(100);
            black_box(ch.send(t));
        });
    });
    g.bench_function("send_many_fast_1k", |b| {
        let mut ch = PathChannel::new(hops(), SmallRng::seed_from_u64(23));
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_millis(100);
            let base = t;
            let train = (0..1000u64).map(|i| base + Dur::from_micros(i * 100));
            black_box(ch.send_many(train).filter(|(_, o)| o.delivered()).count());
        });
    });
    g.finish();
}

fn bench_diurnal(c: &mut Criterion) {
    use vns_netsim::diurnal::{DiurnalProfile, DiurnalShape};
    let profile = DiurnalProfile::new(DiurnalShape::Mixed, 0.4, 0.2, 5.5);
    c.bench_function("netsim/diurnal_utilization", |b| {
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_secs(61);
            black_box(profile.utilization(black_box(t)));
        });
    });
}

fn bench_media_session(c: &mut Criterion) {
    use vns_media::{run_echo_session, SessionConfig, VideoSpec};
    let world = World::geo(13, 0.45);
    let echo = world.vns.echo_servers()[0];
    let path = world
        .vns
        .path_via_upstream(&world.internet, PopId(1), echo.address())
        .expect("path");
    let mut fwd = world.factory.channel(&path, "bench-f");
    let mut rev = world.factory.channel(&path.reversed(), "bench-r");
    let cfg = SessionConfig::default();
    let mut rng = SmallRng::seed_from_u64(2);
    let mut g = c.benchmark_group("media");
    g.sample_size(20);
    g.bench_function("echo_session_2min_1080p", |b| {
        let mut t = SimTime::EPOCH;
        b.iter(|| {
            t += Dur::from_mins(30);
            let sched = VideoSpec::HD1080.schedule(t, cfg.duration, &mut rng);
            black_box(run_echo_session(&sched, &cfg, &mut fwd, &mut rev));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_great_circle,
    bench_trie_lpm,
    bench_decision,
    bench_loss_process,
    bench_path_channel_send,
    bench_diurnal,
    bench_topology,
    bench_path_resolution,
    bench_media_session
);
criterion_main!(benches);
