//! Shared world-building support for the integration tests.
//!
//! Every suite used to roll its own near-identical helper (a tiny world at
//! a pinned seed, a seed-sweep world per routing mode, a tiny world with a
//! mode override, a raw `(Internet, Vns)` pair). They live here once; each
//! test binary pulls this in with `mod testworld;`.

#![allow(dead_code)] // each test binary uses its own subset

use vns_bench::{World, WorldConfig};
use vns_core::{build_vns, RoutingMode, Vns, VnsConfig};
use vns_topo::{generate, Internet, TopoConfig};

/// Fixed seed of the cross-thread reproducibility suite.
pub const REPRO_SEED: u64 = 2024;

/// The certification seed sweep (matches the CI verify-dataplane leg).
pub const SWEEP_SEEDS: [u64; 3] = [21, 77, 1234];

/// Scale the certification sweep builds at (large enough for every PoP and
/// prefix class, small enough to sweep quickly).
pub const SWEEP_SCALE: f64 = 0.35;

/// The routing mode a `hot` flag selects.
pub fn mode(hot: bool) -> RoutingMode {
    if hot {
        RoutingMode::HotPotato
    } else {
        RoutingMode::GeoColdPotato
    }
}

/// A tiny world at `seed` with default (geo) routing.
pub fn tiny(seed: u64) -> World {
    World::build(WorldConfig::tiny(seed))
}

/// A tiny world at `seed` with an explicit routing mode.
pub fn tiny_mode(seed: u64, hot: bool) -> World {
    let mut config = WorldConfig::tiny(seed);
    config.vns.mode = mode(hot);
    World::build(config)
}

/// A seed-sweep world at [`SWEEP_SCALE`] in the given mode.
pub fn sweep(seed: u64, hot: bool) -> World {
    if hot {
        World::hot(seed, SWEEP_SCALE)
    } else {
        World::geo(seed, SWEEP_SCALE)
    }
}

/// A raw `(Internet, Vns)` pair from a tiny topology — for suites that
/// mutate the control plane directly and don't need `World`'s channel
/// factory or RNG tree.
pub fn raw_tiny(seed: u64) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    (internet, vns)
}
