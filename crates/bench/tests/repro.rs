//! Cross-thread reproducibility: the whole point of the deterministic
//! campaign engine. Every experiment artefact must be **byte-identical**
//! whether a campaign runs on one worker or eight — the work units'
//! RNG streams derive from (seed, unit label), never from walk order, and
//! results merge in canonical unit order.
//!
//! Each check renders the experiment's full `Display` artefact (the thing
//! `vns-bench` prints and writes with `--out`) at `--threads 1` and
//! `--threads 8` from freshly built worlds and compares the strings.

mod testworld;

use vns_bench::experiments::{
    adversarial, failover, fig10, fig11, fig3, fig9, steady_state, table1,
};
use vns_bench::World;
use vns_netsim::{Dur, Par};

fn tiny_world() -> World {
    testworld::tiny(testworld::REPRO_SEED)
}

/// Renders one artefact at a given thread count, world built fresh so no
/// state leaks between runs.
fn render(par: Par, run: impl Fn(&World, Par) -> String) -> String {
    let w = tiny_world();
    run(&w, par)
}

fn assert_identical(name: &str, run: impl Fn(&World, Par) -> String) {
    let seq = render(Par::seq(), &run);
    assert!(!seq.is_empty(), "{name}: empty artefact");
    for threads in [2, 8] {
        let par = render(Par::new(threads), &run);
        assert_eq!(
            seq, par,
            "{name}: artefact differs between --threads 1 and --threads {threads}"
        );
    }
    // And a second sequential run from scratch reproduces too (guards
    // against hidden global state masquerading as thread-sensitivity).
    let seq2 = render(Par::seq(), &run);
    assert_eq!(seq, seq2, "{name}: sequential rerun differs");
}

#[test]
fn fig3_artefact_is_byte_identical_across_thread_counts() {
    assert_identical("fig3", |w, par| fig3::run(w, par).to_string());
}

#[test]
fn fig9_artefact_is_byte_identical_across_thread_counts() {
    assert_identical("fig9", |w, par| fig9::run(w, 6, par).to_string());
}

#[test]
fn fig11_artefact_is_byte_identical_across_thread_counts() {
    assert_identical("fig11", |w, par| {
        let data = fig11::run_campaign(w, 3, Dur::from_mins(60), Dur::from_hours(12), par);
        fig11::run(&data).to_string()
    });
}

#[test]
fn fig10_artefact_is_byte_identical_across_thread_counts() {
    // fig10 reuses fig9's raw sessions, so this also pins the per-slot
    // loss counts (not just the aggregated CCDF) across thread counts.
    assert_identical("fig10", |w, par| {
        let nine = fig9::run(w, 6, par);
        fig10::run(&nine.sessions).to_string()
    });
}

#[test]
fn table1_artefact_is_byte_identical_across_thread_counts() {
    assert_identical("table1", |w, par| {
        let data = fig11::run_campaign(w, 3, Dur::from_mins(60), Dur::from_hours(12), par);
        table1::run(&data).to_string()
    });
}

#[test]
fn failover_artefact_is_byte_identical_across_thread_counts() {
    // Failover units each mutate their own world built from the shared
    // config, so this also pins the incremental-reconvergence engine
    // (disconnect/reconnect, fault injection, scoped verify) across
    // thread counts.
    assert_identical("failover", |w, par| {
        failover::run(&w.config, par).to_string()
    });
}

#[test]
fn adversarial_artefact_is_byte_identical_across_thread_counts() {
    // Each unit rebuilds and attacks its own world; this pins the whole
    // corpus — attack staging, incremental reconvergence, both verifier
    // stages, flow replay and the live call slice — across thread counts.
    assert_identical("adversarial", |w, par| {
        adversarial::run(&w.config, par).to_string()
    });
}

#[test]
fn steady_state_artefact_is_byte_identical_across_thread_counts() {
    // The full three-phase campaign: Poisson churn, PoP failure with
    // reconvergence + path-table rebuild, recovery. Per-call measurement
    // fans out over the workers, so this pins the service plane's
    // label-derived RNG streams and canonical-order folds end to end.
    let opts = steady_state::SteadyStateOpts {
        target_concurrent: 900,
        windows: 6,
    };
    assert_identical("steady-state", |w, par| {
        steady_state::run(&w.config, opts, par).to_string()
    });
}

#[test]
fn rr_failover_reconverges_clean_with_bounded_outage() {
    // The acceptance scenario: a route-reflector failover must reconverge
    // to quiescence with zero scoped-verify violations, and no monitored
    // flow's outage window may exceed a sane bound.
    let w = tiny_world();
    let result = failover::run(&w.config, Par::seq());
    let rr = result.scenario("rr-failover").expect("scenario present");
    assert!(!rr.steps.is_empty());
    for step in &rr.steps {
        assert!(step.quiescent, "{}: not quiescent", step.event);
        assert_eq!(step.verify_errors, 0, "{}: verify errors", step.event);
    }
    // RR loss is control-plane only: the redundant reflector keeps every
    // data path alive (the paper's Sec 3.2 fn. 1 redundancy claim).
    assert!(
        rr.steps[0].affected.is_empty(),
        "RR failover perturbed data paths: {:?}",
        rr.steps[0].affected
    );
    assert!(result.all_verified());
    let max_outage = result.max_outage_ms();
    assert!(
        max_outage < 30_000.0,
        "unbounded outage window: {max_outage} ms"
    );
}

#[test]
fn media_sub_units_are_per_session_and_ledger_counted() {
    // The batch engine splits media arms into (arm × session) sub-units:
    // the ledger must count one unit per session, and the merged report
    // list must be in canonical (arm, session) order — byte-identical at
    // threads 1/2/8 — because every sub-unit's RNG state derives from its
    // stable label, never from walk order.
    use vns_bench::campaign::media_campaign;
    use vns_core::PopId;
    use vns_media::VideoSpec;
    use vns_netsim::SimTime;

    let w = tiny_world();
    let clients = [PopId(1), PopId(2)];
    let sessions_per_arm = 7usize;
    let run = |par: Par| {
        media_campaign(
            &w,
            &clients,
            VideoSpec::HD720,
            sessions_per_arm,
            SimTime::EPOCH + Dur::from_hours(8),
            par,
        )
    };
    let u0 = vns_netsim::ledger::units_processed();
    let seq = run(Par::seq());
    let expected_units = clients.len() * w.vns.echo_servers().len() * 2 * sessions_per_arm;
    assert_eq!(
        vns_netsim::ledger::units_processed() - u0,
        expected_units as u64,
        "one ledger unit per (arm, session) sub-unit"
    );
    assert_eq!(seq.len(), expected_units, "every sub-unit routed");
    for threads in [2, 8] {
        assert_eq!(
            seq,
            run(Par::new(threads)),
            "media sub-unit reports differ at --threads {threads}"
        );
    }
}

#[test]
fn odd_thread_counts_agree_too() {
    // 3 workers over a unit count that does not divide evenly exercises
    // uneven work stealing; the artefact must still match.
    let a = render(Par::new(3), |w, par| fig9::run(w, 5, par).to_string());
    let b = render(Par::seq(), |w, par| fig9::run(w, 5, par).to_string());
    assert_eq!(a, b, "fig9 differs at --threads 3");
}
