//! Verifier catch-rate gate for the adversarial corpus: every attack whose
//! kind declares expected invariants must trip **exactly those** checks on
//! a converged geo world, and clean worlds in both modes must stay
//! finding-free. This is the committed detection baseline — if a refactor
//! weakens a check and an attack stops being caught, this suite fails the
//! build before the campaign artefact ever drifts.

mod testworld;

use std::collections::BTreeSet;

use vns_bench::World;
use vns_core::{launch_attack, AttackKind};
use vns_topo::Internet;
use vns_verify::{verify_dataplane_scoped, DataplaneConfig, Severity, VerifyScope};

/// Seed the gate pins its matrix at (part of the CI sweep).
const GATE_SEED: u64 = 77;

/// Runs both verifier stages and collects the codes of every
/// error-severity finding.
fn fired_invariants(internet: &Internet, vns: &vns_core::Vns) -> BTreeSet<&'static str> {
    let mut fired = BTreeSet::new();
    let control = vns_verify::verify_scoped(internet, vns, &VerifyScope::default());
    for v in control.violations() {
        if v.severity == Severity::Error {
            fired.insert(v.invariant.code());
        }
    }
    let data = verify_dataplane_scoped(
        internet,
        vns,
        &VerifyScope::default(),
        &DataplaneConfig::default(),
    );
    for v in data.report.violations() {
        if v.severity == Severity::Error {
            fired.insert(v.invariant.code());
        }
    }
    fired
}

/// Launches `kind` on a fresh geo world and returns the fired codes.
fn attack_and_verify(kind: AttackKind) -> BTreeSet<&'static str> {
    let mut world: World = testworld::sweep(GATE_SEED, false);
    let launched = launch_attack(kind, &mut world.internet, &world.vns, GATE_SEED)
        .unwrap_or_else(|e| panic!("{kind}: launch failed: {e}"));
    assert!(launched.quiescent, "{kind}: net left torn after attack");
    fired_invariants(&world.internet, &world.vns)
}

/// The committed detection baseline: every expected invariant fires for
/// its attack. A regression below this matrix fails the build.
#[test]
fn every_expected_invariant_fires() {
    let mut caught = 0usize;
    let mut detectable = 0usize;
    let mut missed: Vec<String> = Vec::new();
    for kind in AttackKind::ALL {
        let expected = kind.expected_invariants();
        if expected.is_empty() {
            continue; // the declared-miss rows (flap storm) are pinned below
        }
        detectable += 1;
        let fired = attack_and_verify(kind);
        let all_fired = expected.iter().all(|code| fired.contains(code));
        if all_fired {
            caught += 1;
        } else {
            missed.push(format!("{kind}: expected {expected:?}, fired {fired:?}"));
        }
    }
    assert!(
        missed.is_empty(),
        "detection regressed below baseline:\n{}",
        missed.join("\n")
    );
    assert_eq!(caught, detectable);
    // The corpus-wide catch rate the campaign reports: 9 of 10 attacks
    // detected (the flap storm is the documented honest miss).
    let rate = caught as f64 / AttackKind::ALL.len() as f64;
    assert!(rate >= 0.9, "catch rate {rate:.2} below the 0.90 gate");
}

/// The flap storm is the corpus's honest miss: it fully restores every
/// session, so a converged verifier pass *should* be clean — a finding
/// here would be a false positive on a healed network.
#[test]
fn flap_storm_is_clean_after_restoration() {
    let fired = attack_and_verify(AttackKind::FlapStorm);
    assert!(
        fired.is_empty(),
        "healed flap storm raised findings: {fired:?}"
    );
}

/// Zero false positives: un-attacked worlds in both modes have no
/// error-severity findings from either stage.
#[test]
fn clean_worlds_fire_nothing() {
    for hot in [false, true] {
        let world = testworld::sweep(GATE_SEED, hot);
        let fired = fired_invariants(&world.internet, &world.vns);
        assert!(
            fired.is_empty(),
            "false positive on clean world (hot {hot}): {fired:?}"
        );
    }
}

/// The campaign-level gate: the full adversarial campaign's own detection
/// accounting must meet the committed baseline — ≥ 90% catch rate over
/// the corpus, 100% over detectable attacks, zero false positives — and
/// every per-attack verdict must match the per-kind expectation.
#[test]
fn campaign_catch_rate_meets_the_committed_baseline() {
    let config = vns_bench::WorldConfig {
        seed: GATE_SEED,
        scale: testworld::SWEEP_SCALE,
        ..vns_bench::WorldConfig::default()
    };
    let result = vns_bench::experiments::adversarial::run(&config, vns_netsim::Par::seq());
    for row in &result.attacks {
        let expected_detected = !row.kind.expected_invariants().is_empty();
        assert_eq!(
            row.detected(),
            expected_detected,
            "{}: detection verdict regressed (fired {:?})",
            row.kind,
            row.fired
        );
    }
    assert_eq!(
        result.detected_count(),
        result.detectable_count(),
        "a detectable attack was missed"
    );
    assert!(
        result.catch_rate() >= 0.9,
        "catch rate {:.2} below the 0.90 gate",
        result.catch_rate()
    );
    assert_eq!(
        result.false_positives(),
        0,
        "clean control rows raised findings"
    );
}
