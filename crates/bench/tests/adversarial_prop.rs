//! Property: the verifier survives *arbitrary* adversarial pressure.
//! Random attack sequences — any kinds, any order, stacked on one world
//! in either routing mode — must never panic either verifier stage, and
//! the control plane must stay quiescent after every launched attack.
//! On geo worlds, a converged anycast hijack must always be caught: the
//! exact hijack by NO-BLACKHOLE, the forged-registry interception by
//! ANYCAST-NEAREST.

mod testworld;

use proptest::prelude::*;
use vns_core::{launch_attack, AttackKind};
use vns_verify::{verify_dataplane_scoped, DataplaneConfig, Severity, VerifyScope};

/// Error-severity invariant codes fired by both stages.
fn fired(world: &vns_bench::World) -> std::collections::BTreeSet<&'static str> {
    let scope = VerifyScope::default();
    let control = vns_verify::verify_scoped(&world.internet, &world.vns, &scope);
    let data = verify_dataplane_scoped(
        &world.internet,
        &world.vns,
        &scope,
        &DataplaneConfig::default(),
    );
    control
        .violations()
        .iter()
        .chain(data.report.violations())
        .filter(|v| v.severity == Severity::Error)
        .map(|v| v.invariant.code())
        .collect()
}

proptest! {
    // Each case builds and converges a full world, then reconverges it
    // after every attack; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Attack sequences of any composition leave a quiescent net and a
    /// checker that completes both stages without panicking. Attacks may
    /// legitimately fail to stage (`Err` on a world with no target); they
    /// must never tear the net or kill the verifier.
    #[test]
    fn random_attack_sequences_never_panic_the_checker(
        seed in 0u64..64,
        hot in any::<bool>(),
        picks in prop::collection::vec(0usize..AttackKind::ALL.len(), 1..4),
    ) {
        let mut world = testworld::tiny_mode(seed, hot);
        for pick in picks {
            let kind = AttackKind::ALL[pick];
            match launch_attack(kind, &mut world.internet, &world.vns, seed) {
                Ok(launched) => prop_assert!(
                    launched.quiescent,
                    "{kind} left the net torn (seed {seed}, hot {hot})"
                ),
                Err(e) => {
                    // No viable target on this world — legal; the world
                    // must be unchanged enough to keep converging.
                    prop_assert!(
                        world.internet.net.is_quiescent(),
                        "{kind} failed ({e}) but left the net torn"
                    );
                }
            }
            // Both stages must complete on every intermediate state.
            let _ = fired(&world);
        }
    }

    /// Every converged anycast hijack on a geo world is detected: the
    /// checker has no blind spot anywhere in the seed space, not just on
    /// the seeds the example tests sweep.
    #[test]
    fn converged_anycast_hijacks_are_always_detected_on_geo(
        seed in 0u64..64,
        interception in any::<bool>(),
    ) {
        let kind = if interception {
            AttackKind::AnycastInterception
        } else {
            AttackKind::AnycastExactHijack
        };
        let mut world = testworld::tiny_mode(seed, false);
        let launched = launch_attack(kind, &mut world.internet, &world.vns, seed)
            .expect("anycast attacks always stage (the VNS always has an upstream)");
        prop_assert!(launched.quiescent);
        let codes = fired(&world);
        for code in kind.expected_invariants() {
            prop_assert!(
                codes.contains(code),
                "{kind} escaped {code} on seed {seed} (fired {codes:?})"
            );
        }
    }
}
