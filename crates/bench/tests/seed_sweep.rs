//! Seed-sweep smoke test: the simulator must not be tuned to the default
//! seed. Three seeds × both routing modes must build, converge, and come
//! out of `vns-verify` without error-severity findings.

use vns_bench::World;

const SEEDS: [u64; 3] = [21, 77, 1234];

fn sweep(mode: &str, build: impl Fn(u64) -> World) {
    for seed in SEEDS {
        let w = build(seed);
        assert!(
            !w.vns.pops().is_empty(),
            "{mode} seed {seed}: no PoPs built"
        );
        let report = vns_verify::verify(&w.internet, &w.vns);
        assert!(
            report.passes(),
            "{mode} seed {seed}: control plane not clean:\n{report}"
        );
    }
}

#[test]
fn geo_mode_converges_clean_across_seeds() {
    sweep("geo", |seed| World::geo(seed, 0.35));
}

#[test]
fn hot_mode_converges_clean_across_seeds() {
    sweep("hot", |seed| World::hot(seed, 0.35));
}
