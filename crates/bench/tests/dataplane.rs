//! Data-plane model-checker certification: zero false positives on every
//! clean seed-sweep×mode world, and a measured 100% catch rate over the
//! planted-defect corpus — each defect reported under the right check
//! name at the planted location. A checker proves nothing until it has
//! demonstrably caught something.

mod testworld;

use vns_bench::World;
use vns_service::{EndpointTable, PathTable};
use vns_verify::{
    plant_defect, verify_dataplane_scoped, verify_dataplane_with_service, DataplaneConfig,
    DataplaneReport, Invariant, VerifyScope, DEFECT_NAMES,
};

use testworld::SWEEP_SEEDS as SEEDS;

fn verify_world(world: &World) -> DataplaneReport {
    let endpoints = EndpointTable::build(&world.internet, &world.vns);
    let paths = PathTable::build(&world.internet, &world.vns, &endpoints);
    verify_dataplane_with_service(
        &world.internet,
        &world.vns,
        &VerifyScope::default(),
        &DataplaneConfig::default(),
        &endpoints,
        &paths,
    )
}

/// Zero false positives: every clean world in the seed sweep, in both
/// routing modes, verifies with no findings at all — and fast enough to
/// run as a campaign pre-flight.
#[test]
fn clean_worlds_have_zero_findings() {
    for seed in SEEDS {
        for hot in [false, true] {
            let world = testworld::sweep(seed, hot);
            let report = verify_world(&world);
            assert!(
                report.report.is_clean(),
                "false positive on clean world (seed {seed}, hot {hot}):\n{}",
                report.render()
            );
            assert!(
                report.total_seconds() < 2.0,
                "pre-flight budget blown: {:.3}s (seed {seed}, hot {hot})",
                report.total_seconds()
            );
        }
    }
}

/// Plants `name` into a fresh world and returns the planted description
/// plus the checker's report. Table-corruption defects verify against the
/// corrupted service tables; RIB defects verify graph-only so the finding
/// attribution stays crisp.
fn plant_and_verify(
    world: &mut World,
    name: &'static str,
) -> (vns_verify::PlantedDefect, DataplaneReport) {
    let needs_tables = matches!(name, "poisoned-landing-table" | "swapped-tails");
    if needs_tables {
        let endpoints = EndpointTable::build(&world.internet, &world.vns);
        let mut paths = PathTable::build(&world.internet, &world.vns, &endpoints);
        let planted = plant_defect(
            name,
            &mut world.internet,
            &world.vns,
            Some((&endpoints, &mut paths)),
        )
        .unwrap_or_else(|| panic!("defect {name} found no site"));
        let report = verify_dataplane_with_service(
            &world.internet,
            &world.vns,
            &VerifyScope::default(),
            &DataplaneConfig::default(),
            &endpoints,
            &paths,
        );
        (planted, report)
    } else {
        let planted = plant_defect(name, &mut world.internet, &world.vns, None)
            .unwrap_or_else(|| panic!("defect {name} found no site"));
        let report = verify_dataplane_scoped(
            &world.internet,
            &world.vns,
            &VerifyScope::default(),
            &DataplaneConfig::default(),
        );
        (planted, report)
    }
}

fn assert_caught(planted: &vns_verify::PlantedDefect, report: &DataplaneReport, ctx: &str) {
    let hits: Vec<_> = report.report.of(planted.expect).collect();
    assert!(
        !hits.is_empty(),
        "{ctx}: defect {} not caught — expected {} to fire\n{}",
        planted.name,
        planted.expect.code(),
        report.render()
    );
    if let Some(speaker) = planted.speaker {
        assert!(
            hits.iter().any(|v| v.speaker == Some(speaker)),
            "{ctx}: defect {} caught by {} but never located at planted {speaker}\n{}",
            planted.name,
            planted.expect.code(),
            report.render()
        );
    }
    if let Some(prefix) = planted.prefix {
        assert!(
            hits.iter().any(|v| v.prefix == Some(prefix)),
            "{ctx}: defect {} caught by {} but never named planted prefix {prefix}\n{}",
            planted.name,
            planted.expect.code(),
            report.render()
        );
    }
}

/// 100% catch rate on geo worlds: all twelve corpus defects are caught,
/// each under its expected check name at the planted location.
#[test]
fn geo_catch_rate_is_total() {
    for seed in SEEDS {
        let mut caught = 0;
        for name in DEFECT_NAMES {
            let mut world = testworld::sweep(seed, false);
            let (planted, report) = plant_and_verify(&mut world, name);
            assert_caught(&planted, &report, &format!("geo seed {seed}"));
            caught += 1;
        }
        assert_eq!(
            caught,
            DEFECT_NAMES.len(),
            "corpus incomplete on seed {seed}"
        );
    }
}

/// The mode-independent defects are also caught on hot-potato worlds.
/// The geo-gated checks (ANYCAST-NEAREST, STRETCH-BOUND) don't run under
/// hot-potato — far landings and detours are the paper's measured
/// baseline there, not deployment defects.
#[test]
fn hot_catch_rate_covers_mode_independent_defects() {
    let geo_only = ["anycast-far-landing", "echo-detour", "echo-detour-return"];
    for name in DEFECT_NAMES {
        if geo_only.contains(&name) {
            continue;
        }
        let mut world = testworld::sweep(77, true);
        let (planted, report) = plant_and_verify(&mut world, name);
        assert_caught(&planted, &report, "hot seed 77");
    }
}

/// A planted defect never leaks into the *other* checks' clean verdicts
/// on the graph-only stage: LOOP-FREE defects don't fabricate blackhole
/// findings for unrelated prefixes and vice versa. (The same defect may
/// legitimately surface under several checks — a cycle also denies
/// delivery — so this asserts the expected check fires, not exclusivity.)
#[test]
fn defect_reports_carry_check_name_and_location() {
    let mut world = testworld::sweep(77, false);
    let (planted, report) = plant_and_verify(&mut world, "ibgp-border-cycle");
    assert_eq!(planted.expect, Invariant::LoopFree);
    let hit = report
        .report
        .of(Invariant::LoopFree)
        .next()
        .expect("LOOP-FREE fired");
    assert_eq!(hit.speaker, planted.speaker);
    assert_eq!(hit.prefix, planted.prefix);
    assert!(
        hit.message.contains("cycle"),
        "message should describe the ring: {}",
        hit.message
    );
}

/// Scoped verification accepts the fault vocabulary: a world with a dead
/// border verifies clean when the scope declares the router dead (its
/// traffic is an explicit DeadSink, not a blackhole).
#[test]
fn scoped_verification_accepts_declared_dead_routers() {
    let world = testworld::sweep(21, false);
    let dead = world.vns.pops()[0].borders[0];
    // Without the scope the dead router is just... alive, so the graph is
    // clean either way here; the point is that declaring routers dead
    // must never *create* findings on a healthy world.
    let report = verify_dataplane_scoped(
        &world.internet,
        &world.vns,
        &VerifyScope::with_dead_routers([dead]),
        &DataplaneConfig::default(),
    );
    assert!(
        report.passes(),
        "declaring a dead router created findings:\n{}",
        report.render()
    );
}
