//! Property: the control plane survives *any* scripted sequence of
//! session cut/restore events. After every event the net reconverges
//! within budget to true quiescence and the data plane stays loop-free;
//! after restoring every severed session, the vns-verify invariant suite
//! still passes — churn must leave no residue.

mod testworld;

use proptest::prelude::*;
use vns_bgp::{PathError, SpeakerId};
use vns_core::{FaultEvent, FaultInjector, Vns};
use vns_topo::Internet;

use testworld::raw_tiny as world;

/// Every BGP session touching a VNS router (eBGP to upstreams/peers and
/// iBGP to the reflectors), canonically ordered and deduplicated.
fn vns_sessions(internet: &Internet, vns: &Vns) -> Vec<(SpeakerId, SpeakerId)> {
    let mut out = std::collections::BTreeSet::new();
    let routers: Vec<SpeakerId> = vns
        .pops()
        .iter()
        .flat_map(|p| p.borders)
        .chain(vns.reflectors())
        .collect();
    for &r in &routers {
        let sp = internet.net.speaker(r).expect("VNS router exists");
        for peer in sp.peer_ids() {
            out.insert(if r <= peer { (r, peer) } else { (peer, r) });
        }
    }
    out.into_iter().collect()
}

/// No forwarding loop from any border towards any VNS service prefix;
/// `NoRoute` is legal mid-churn, a loop never is.
fn assert_loop_free(internet: &Internet, vns: &Vns, context: &str) {
    let targets: Vec<vns_bgp::Prefix> = std::iter::once(vns.anycast_prefix())
        .chain(vns.echo_servers().iter().map(|e| e.prefix))
        .collect();
    for pop in vns.pops() {
        for border in pop.borders {
            for prefix in &targets {
                if let Err(PathError::ForwardingLoop) = internet.net.forwarding_path(border, prefix)
                {
                    panic!("{context}: forwarding loop at {border} towards {prefix}");
                }
            }
        }
    }
}

proptest! {
    // Each case rebuilds and reconverges a world per event; keep it small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_session_churn_reconverges_clean(
        seed in 0u64..64,
        choices in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let (mut internet, vns) = world(seed);
        let sessions = vns_sessions(&internet, &vns);
        prop_assert!(!sessions.is_empty());

        let mut inj = FaultInjector::new();
        let mut severed = std::collections::BTreeSet::new();
        for (i, &c) in choices.iter().enumerate() {
            let (a, b) = sessions[c as usize % sessions.len()];
            let event = if severed.contains(&(a, b)) {
                severed.remove(&(a, b));
                FaultEvent::SessionRestore { a, b }
            } else {
                severed.insert((a, b));
                FaultEvent::SessionCut { a, b }
            };
            inj.apply(&mut internet, &vns, event).expect("event applies");
            let stats = internet
                .net
                .run(vns.message_budget())
                .expect("reconverges within budget");
            prop_assert!(
                internet.net.is_quiescent(),
                "event {i} ({event}) left the net torn ({} msgs)",
                stats.messages
            );
            assert_loop_free(&internet, &vns, &format!("after event {i} ({event})"));
        }

        // Heal everything and demand a spotless control plane.
        for (a, b) in inj.severed_sessions().collect::<Vec<_>>() {
            inj.apply(&mut internet, &vns, FaultEvent::SessionRestore { a, b })
                .expect("restore applies");
            internet
                .net
                .run(vns.message_budget())
                .expect("restore reconverges");
        }
        prop_assert!(inj.fully_restored());
        prop_assert!(internet.net.is_quiescent());
        assert_loop_free(&internet, &vns, "after full restoration");
        let report = vns_verify::verify(&internet, &vns);
        prop_assert!(
            report.passes(),
            "invariants violated after churn + full restore:\n{}",
            report.render()
        );
    }
}
