//! Property: the two structural data-plane invariants — LOOP-FREE and
//! NO-BLACKHOLE — hold on *every* converged world, not just the seeds the
//! example tests happen to sweep. Seed and routing mode are drawn
//! arbitrarily; a single counterexample world is a checker bug or a
//! convergence bug, and proptest will shrink the seed for the postmortem.

mod testworld;

use proptest::prelude::*;
use vns_verify::{verify_dataplane, Invariant};

use testworld::tiny_mode as world;

proptest! {
    // Each case generates and converges a full world; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn every_converged_world_is_loop_free_and_blackhole_free(
        seed in 1u64..10_000,
        hot in any::<bool>(),
    ) {
        let world = world(seed, hot);
        let report = verify_dataplane(&world.internet, &world.vns);
        for inv in [Invariant::LoopFree, Invariant::NoBlackhole] {
            prop_assert!(
                report.report.of(inv).next().is_none(),
                "{inv} violated on converged world (seed {seed}, hot {hot}):\n{}",
                report.render()
            );
        }
    }
}
