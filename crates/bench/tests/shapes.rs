//! The reproduction's acceptance tests: do the paper's qualitative shapes
//! hold? Each test runs a scaled-down version of one experiment and
//! asserts the direction/ordering the paper reports — who wins, roughly by
//! what factor, where the crossovers are.

use vns_bench::experiments::{
    ablate, congruence, fig10, fig11, fig3, fig4, fig5, fig7, fig9, jitter, steady_state, table1,
};
use vns_bench::{World, WorldConfig};
use vns_core::PopId;
use vns_geo::Region;
use vns_netsim::{Dur, Par};
use vns_topo::AsType;

const SCALE: f64 = 0.45;

#[test]
fn fig3_geo_metric_mostly_matches_network_proximity() {
    let w = World::geo(101, SCALE);
    let r = fig3::run(&w, Par::seq());
    assert!(r.measured > 80, "measured {}", r.measured);
    // Paper: 90% of prefixes displaced <= 20 ms. Shape bar: >= 75%.
    assert!(
        r.within_20ms_all > 0.75,
        "within 20 ms: {}",
        r.within_20ms_all
    );
    // The GeoIP pathologies put a visible outlier population beyond 100 ms
    // (the Fig 3 scatter clusters).
    assert!(
        r.outliers_beyond(100.0) >= 3,
        "outlier clusters missing: {}",
        r.outliers_beyond(100.0)
    );
}

#[test]
fn sec41_same_as_prefixes_are_congruent() {
    let w = World::geo(102, SCALE);
    let c = congruence::run(&w, Par::seq());
    assert!(c.ases_measured > 20);
    // Paper: >= 25% match in 99% of ASes; >= 90% match in 60%.
    assert!(
        c.frac_ases_quarter_match > 0.9,
        "quarter match {}",
        c.frac_ases_quarter_match
    );
    assert!(
        c.frac_ases_ninety_match > 0.45,
        "ninety match {}",
        c.frac_ases_ninety_match
    );
}

#[test]
fn fig4_geo_routing_spreads_egress() {
    let before = World::hot(103, SCALE);
    let after = World::geo(103, SCALE);
    let r = fig4::run(&before, &after);
    // Paper: ~70% local exit before; a spread distribution after.
    assert!(
        r.local_share_before() > 45.0,
        "before local {}",
        r.local_share_before()
    );
    assert!(
        r.local_share_after() < r.local_share_before() / 2.0,
        "after local {} vs before {}",
        r.local_share_after(),
        r.local_share_before()
    );
    assert!(
        r.max_share_after() < r.local_share_before(),
        "after distribution must be more even"
    );
}

#[test]
fn fig5_transit_share_high_and_stable() {
    let before = World::hot(104, SCALE);
    let after = World::geo(104, SCALE);
    let r = fig5::run(&before, &after);
    // Paper: ~80% of prefixes reached through upstreams, stable across the
    // change (we tolerate a modest shift).
    assert!(
        r.transit_share_before > 0.6,
        "before transit {}",
        r.transit_share_before
    );
    assert!(
        r.transit_share_after > 0.6,
        "after transit {}",
        r.transit_share_after
    );
    assert!(
        (r.transit_share_after - r.transit_share_before).abs() < 0.2,
        "transit share should not swing wildly"
    );
    // After the change, upstream 1 (the NA-heavy Tier-1) is the most-used
    // upstream — the paper's "emerged as more preferred". (Its *growth*
    // relative to before is seed-sensitive at test scale; the harness
    // reports it at full scale.)
    let best_other_after = r
        .neighbors
        .iter()
        .skip(1)
        .filter(|n| n.1)
        .map(|n| n.3)
        .fold(0.0, f64::max);
    assert!(
        r.upstream1.1 >= 0.8 * best_other_after,
        "upstream 1 after {} vs best other upstream {}",
        r.upstream1.1,
        best_other_after
    );
}

#[test]
fn fig7_anycast_follows_geography() {
    let w = World::geo(105, SCALE);
    let r = fig7::run(&w, Par::seq());
    assert!(
        r.overall_home_fraction() > 0.6,
        "home fraction {}",
        r.overall_home_fraction()
    );
    // The big three regions must be strongly home-routed.
    for region in [Region::Europe, Region::NorthAmerica, Region::AsiaPacific] {
        assert!(
            r.home_fraction(region) > 0.6,
            "{region}: {}",
            r.home_fraction(region)
        );
    }
}

#[test]
fn fig9_vns_eliminates_stream_loss() {
    let w = World::geo(106, SCALE);
    let r = fig9::run(&w, 10, Par::seq());
    // Paper: VNS consistently below transit; AP is the lossy destination.
    assert!(
        r.mean_loss(true) < r.mean_loss(false) / 5.0,
        "VNS {} vs transit {}",
        r.mean_loss(true),
        r.mean_loss(false)
    );
    // Streams to AP through transit exceed 0.15% far more often than
    // through VNS, from every client.
    for client in ["AMS", "SJS", "SYD"] {
        let t = r.frac_over_150m(client, "AP", false);
        let i = r.frac_over_150m(client, "AP", true);
        assert!(t > i, "{client}: transit {t} should exceed VNS {i}");
    }
}

#[test]
fn table1_and_fig11_last_mile_shapes() {
    let w = World::geo(107, SCALE);
    let data = fig11::run_campaign(&w, 5, Dur::from_mins(60), Dur::from_days(1), Par::seq());
    let t1 = table1::run(&data);
    // Table 1 orderings: AP & EU rank CAHP > EC > LTP and STP > LTP;
    // NA is flat (max/min < 2.5).
    for region in [Region::AsiaPacific, Region::Europe] {
        assert!(
            t1.loss(region, AsType::Cahp) > t1.loss(region, AsType::Ec),
            "{region} CAHP vs EC"
        );
        assert!(
            t1.loss(region, AsType::Ec) > t1.loss(region, AsType::Ltp),
            "{region} EC vs LTP"
        );
        assert!(
            t1.loss(region, AsType::Stp) > t1.loss(region, AsType::Ltp),
            "{region} STP vs LTP"
        );
    }
    let na: Vec<f64> = AsType::ALL
        .iter()
        .map(|t| t1.loss(Region::NorthAmerica, *t))
        .collect();
    let spread = na.iter().cloned().fold(f64::MIN, f64::max)
        / na.iter().cloned().fold(f64::MAX, f64::min).max(1e-9);
    assert!(spread < 2.5, "NA spread {spread}");

    // Fig 11: distance raises loss; the London misconfiguration doubles
    // its EU loss relative to the other European PoPs.
    let f11 = fig11::run(&data);
    let lon_eu = f11.loss("LON", Region::Europe).unwrap();
    let other_eu = f11.mean_loss(&["AMS", "FRA", "OSL"], Region::Europe);
    assert!(
        lon_eu > 1.4 * other_eu,
        "London anomaly: LON {lon_eu} vs others {other_eu}"
    );
    // Loss to AP from anywhere exceeds loss to EU from EU.
    let to_ap = f11.mean_loss(&["AMS", "FRA", "OSL", "ATL", "SJS"], Region::AsiaPacific);
    assert!(
        to_ap > 1.5 * other_eu,
        "to AP {to_ap} vs EU-local {other_eu}"
    );
}

#[test]
fn ablation_fec_vs_arq_crossover() {
    let a = ablate::fec_arq(108);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // FEC repairs random loss well but bursty loss poorly (paper Sec 2).
    assert!(get("random 1%:fec") < get("random 1%:raw") / 5.0);
    assert!(get("bursty 1%:fec") > get("bursty 1%:raw") / 3.0);
    // Retransmission over a short hop fixes both; over a long hop it
    // cannot meet the deadline.
    assert!(get("random 1%:arq20") < get("random 1%:raw") / 10.0);
    assert!(get("bursty 1%:arq20") < get("bursty 1%:raw") / 2.0);
    assert!(get("random 1%:arq150") > get("random 1%:arq20"));
}

#[test]
fn ablation_l2_topology_cost() {
    let a = ablate::l2_topology(109, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap()
    };
    // The paper's cluster topology spends far fewer circuit-km than a full
    // mesh at a modest internal delay stretch.
    assert!(get("clusters (paper):km") < 0.6 * get("full mesh:km"));
    assert!(get("clusters (paper):stretch") < 2.5 * get("full mesh:stretch"));
}

#[test]
fn ablation_best_external_never_hurts() {
    let a = ablate::best_external(110, SCALE);
    let on = a.values.iter().find(|(l, _)| l == "true").unwrap().1;
    let off = a.values.iter().find(|(l, _)| l == "false").unwrap().1;
    assert!(on + 1e-9 >= off, "best-external on {on} vs off {off}");
}

#[test]
fn world_config_scales() {
    let small = WorldConfig::tiny(111);
    let big = WorldConfig {
        seed: 111,
        scale: 1.0,
        ..WorldConfig::default()
    };
    let ws = World::build(small);
    let wb = World::build(big);
    assert!(wb.internet.as_count() > ws.internet.as_count());
    assert_eq!(ws.vns.pops().len(), 11);
    assert_eq!(wb.vns.pops().len(), 11);
    let _ = PopId(1);
}

#[test]
fn fig6_cold_potato_does_not_stretch_delay() {
    let w = World::geo(112, SCALE);
    let r = vns_bench::experiments::fig6::run(&w, 2, Par::seq());
    for (code, _, le0, le50) in &r.per_pop {
        // Paper: VNS ≤ upstream in 10–65% of cases; ≤ 50 ms stretch in
        // 87–93%. Shape bars: a meaningful win fraction, and most
        // destinations within 50 ms.
        assert!(*le0 > 0.15, "{code}: win fraction {le0}");
        assert!(*le50 > 0.6, "{code}: within-50ms {le50}");
    }
    // Singapore's direct circuits put it among the best PoPs.
    let sin = r.pop("SIN").expect("SIN measured").2;
    let max_other = r
        .per_pop
        .iter()
        .filter(|(c, _, _, _)| c != "SIN")
        .map(|(_, _, le0, _)| *le0)
        .fold(0.0, f64::max);
    assert!(
        sin > 0.6 * max_other,
        "SIN {sin} should be competitive with the best ({max_other})"
    );
}

#[test]
fn fig12_ap_masking_effect() {
    let w = World::geo(113, SCALE);
    let data = fig11::run_campaign(&w, 5, Dur::from_mins(60), Dur::from_days(2), Par::seq());
    let r = vns_bench::experiments::fig12::run(&data);
    // Every (type, region) shows a diurnal swing.
    for (ty, region, swing) in &r.swing {
        assert!(
            *swing > 1.5,
            "{ty} {region}: diurnal swing {swing} too flat"
        );
    }
    // The masking effect: loss toward AP destinations concentrates in AP's
    // waking hours (~09:00–24:00 local ≈ 02:00–17:00 CET), not in AP's
    // night — regardless of the SJS vantage's own clock.
    for ty in [AsType::Cahp, AsType::Stp] {
        let panel = &r.panels.iter().find(|(t, _)| *t == ty).expect("panel").1;
        let series = panel
            .series_named(Region::AsiaPacific.code())
            .expect("AP series");
        let (mut waking, mut night) = (0.0, 0.0);
        for (h, c) in &series.points {
            if (2.0..17.0).contains(h) {
                waking += c;
            } else {
                night += c;
            }
        }
        // Waking covers 15 of 24 hours; normalise per hour.
        assert!(
            waking / 15.0 > night / 9.0,
            "{ty}: AP losses should follow AP's clock (waking {waking}, night {night})"
        );
    }
}

#[test]
fn steady_state_holds_target_and_survives_failure() {
    let cfg = WorldConfig {
        seed: 124,
        scale: SCALE,
        ..WorldConfig::default()
    };
    let opts = steady_state::SteadyStateOpts {
        target_concurrent: 1500,
        windows: 6,
    };
    let r = steady_state::run(&cfg, opts, Par::seq());
    // Little's law holds through the diurnal trough.
    assert!(
        r.steady_sustained as f64 > 0.7 * r.target_concurrent as f64,
        "sustained {} vs target {}",
        r.steady_sustained,
        r.target_concurrent
    );
    // The failure phase tears down the victim's sessions, keeps routing
    // verified, and the denial rate stays bounded (spill absorbs most of
    // the landing traffic).
    assert!(r.torn_down > 0, "no sessions torn by the PoP failure");
    assert!(r.all_verified(), "verify errors {}", r.verify_errors);
    let denied = r.fault_denied_pct();
    assert!(denied < 60.0, "fault-phase denial {denied}%");
    // Recovery refills: the last window's concurrency is back above the
    // fault phase's low point.
    let windows = &r.telemetry.windows;
    let fault_low = windows[opts.windows as usize..]
        .iter()
        .map(|w| w.concurrent_end)
        .min()
        .expect("fault windows");
    let final_conc = windows.last().expect("windows").concurrent_end;
    assert!(
        final_conc >= fault_low,
        "recovery did not refill: final {final_conc} vs low {fault_low}"
    );
    // Telemetry measured real setups and QoS bursts in every phase.
    assert!(r.telemetry.setup_overall().count() > 100);
    assert!(r.telemetry.loss_overall().count() > 0);
}

#[test]
fn economics_shapes() {
    let a = ablate::economics(114, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // Economies of scale: cost/Mbps falls steeply with volume.
    assert!(get("per_mbps@6400") < get("per_mbps@100") / 10.0);
    // Cold potato fills the circuit commits far better than hot potato
    // (compare below saturation).
    assert!(get("l2_util@400") > 1.5 * get("l2_util_hot@400"));
}

#[test]
fn setup_time_shapes() {
    let a = ablate::setup_time(115, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // Lossy transit signalling needs at least as many SIP retransmissions
    // as VNS signalling.
    assert!(get("via transit:retrans") >= get("via VNS:retrans"));
}

#[test]
fn auto_override_closes_the_gap() {
    let a = ablate::auto_override(116, SCALE, 30.0, Par::seq());
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(get("bad_after") <= get("bad_before") * 0.25 + 1.0);
}

#[test]
fn definitions_do_not_change_the_loss_story() {
    // Paper Sec 5.1.1: "there are no qualitative differences in loss when
    // sending 1080p compared to 720p video".
    use vns_bench::campaign::media_campaign;
    use vns_media::VideoSpec;
    use vns_netsim::{Dur, SimTime};
    let w = World::geo(117, SCALE);
    let start = SimTime::EPOCH + Dur::from_hours(6);
    let mut means = Vec::new();
    for spec in [VideoSpec::HD1080, VideoSpec::HD720] {
        let sessions = media_campaign(&w, &[PopId(9), PopId(11)], spec, 12, start, Par::seq());
        let mean = |via: bool| {
            let l: Vec<f64> = sessions
                .iter()
                .filter(|(a, _)| a.via_vns == via)
                .map(|(_, r)| r.rt_loss_pct())
                .collect();
            l.iter().sum::<f64>() / l.len().max(1) as f64
        };
        means.push((mean(true), mean(false)));
    }
    // Both definitions: VNS far below transit.
    for (vns_loss, transit_loss) in &means {
        assert!(
            *vns_loss < transit_loss / 3.0,
            "VNS {vns_loss} vs transit {transit_loss}"
        );
    }
    // And the transit loss rates of the two definitions are the same
    // order of magnitude.
    let (t1080, t720) = (means[0].1, means[1].1);
    let ratio = t1080.max(t720) / t1080.min(t720).max(1e-9);
    assert!(
        ratio < 5.0,
        "definitions diverge: 1080p {t1080} vs 720p {t720}"
    );
}

#[test]
fn fig10_vns_removes_baseline_and_outliers() {
    let w = World::geo(118, SCALE);
    let nine = fig9::run(&w, 12, Par::seq());
    let r = fig10::run(&nine.sessions);
    let ups = r.upstream_nature;
    let vns = r.vns_nature;
    assert!(ups.total() > 0 && vns.total() > 0, "both arms measured");
    // Upstream sessions show the lossy population the paper plots.
    let ups_lossy = ups.total() - ups.clean;
    assert!(ups_lossy > 0, "no lossy upstream sessions at all");
    // Through VNS both the multi-slot baseline and the outliers shrink
    // away: fewer lossy sessions, and a higher clean fraction.
    let vns_lossy = vns.total() - vns.clean;
    assert!(
        (vns_lossy as f64) < 0.8 * ups_lossy as f64,
        "VNS lossy {vns_lossy} vs upstream lossy {ups_lossy}"
    );
    assert!(
        vns.clean as f64 / vns.total() as f64 > ups.clean as f64 / ups.total() as f64,
        "VNS clean fraction should exceed upstream's"
    );
    assert!(
        vns.sustained_outliers <= ups.sustained_outliers,
        "sustained congestion outliers must not appear through VNS"
    );
}

#[test]
fn jitter_stays_low_and_vns_is_not_worse() {
    let w = World::geo(119, SCALE);
    let r = jitter::run(&w, 12, Par::seq());
    for (name, (vns, transit)) in [("1080p", r.hd1080), ("720p", r.hd720)] {
        assert!(vns.streams > 0 && transit.streams > 0, "{name}: streams");
        // Paper: measured jitter is mostly below 20 ms in both arms.
        assert!(vns.sub_20ms > 0.8, "{name}: VNS sub-20ms {}", vns.sub_20ms);
        assert!(
            transit.sub_20ms > 0.6,
            "{name}: transit sub-20ms {}",
            transit.sub_20ms
        );
        // "Differences between videos sent through VNS and through
        // upstreams are negligible" — VNS must not be worse.
        assert!(
            vns.sub_10ms + 0.1 >= transit.sub_10ms,
            "{name}: VNS sub-10ms {} vs transit {}",
            vns.sub_10ms,
            transit.sub_10ms
        );
    }
    // 720p streams carry fewer packets and so jitter more (99% vs 97%).
    assert!(
        r.hd1080.0.sub_10ms + 0.1 >= r.hd720.0.sub_10ms,
        "1080p {} should not jitter more than 720p {}",
        r.hd1080.0.sub_10ms,
        r.hd720.0.sub_10ms
    );
}

#[test]
fn ablation_lp_shape_default_is_near_optimal() {
    let a = ablate::lp_shape(120, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    let default = get("banded-25km (default)");
    // The paper's banded shape keeps egress selection near-optimal …
    assert!(default > 0.5, "default precision {default}");
    // … and no alternative shape beats it by a meaningful margin.
    for alt in ["banded-2000km", "inverse", "stepped"] {
        assert!(
            default + 0.05 >= get(alt),
            "{alt} ({}) should not beat the default ({default})",
            get(alt)
        );
    }
}

#[test]
fn ablation_geoip_errors_cost_precision_and_mgmt_recovers_it() {
    let a = ablate::geoip(121, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // A perfect database can only help, and the exemption workflow must
    // keep precision in the same band as before (its win concentrates on
    // the pathological prefixes, which are a small share of the total —
    // a few points of seed noise on the rest is acceptable).
    assert!(
        get("perfect") + 0.02 >= get("with errors"),
        "perfect {} vs with errors {}",
        get("perfect"),
        get("with errors")
    );
    assert!(
        get("fixed") + 0.05 >= get("with errors"),
        "fixed {} vs with errors {}",
        get("fixed"),
        get("with errors")
    );
    assert!(get("fixed") > 0.8, "fixed precision {}", get("fixed"));
}

#[test]
fn ablation_mode_delay_cold_potato_detours() {
    let a = ablate::mode_delay(122, SCALE);
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // Cold potato hauls traffic internally to the geographically right
    // exit, which shortens the *total* delivery path (that is the point
    // of geo routing) — but only by a detour-sized margin, not a rewrite
    // of the map.
    let (cold, hot) = (get("geo cold potato"), get("hot potato"));
    assert!(cold > 0.0 && hot > 0.0, "degenerate path lengths");
    assert!(
        cold <= hot * 1.05,
        "cold {cold} should not exceed hot {hot}"
    );
    assert!(
        cold > 0.5 * hot,
        "cold {cold} implausibly short vs hot {hot}"
    );
}

#[test]
fn ablation_measurement_beats_geo_on_precision() {
    let a = ablate::geo_vs_measurement(123, SCALE, Par::seq());
    let get = |label: &str| {
        a.values
            .iter()
            .find(|(l, _)| l == label)
            .map_or_else(|| panic!("missing {label}"), |(_, v)| *v)
    };
    // Active measurement is the precision ceiling (it probes the truth);
    // the geo metric must land close behind it at zero probe cost.
    assert!(
        get("measurement") + 1e-9 >= get("geo"),
        "measurement {} vs geo {}",
        get("measurement"),
        get("geo")
    );
    assert!(get("geo") > 0.5, "geo precision {}", get("geo"));
}
