//! End-to-end service-plane tests on a tiny world.

use vns_core::{build_vns, Vns, VnsConfig};
use vns_netsim::diurnal::DiurnalShape;
use vns_netsim::{DiurnalProfile, Dur, Par, RngTree};
use vns_service::{
    AdmissionController, EndpointTable, Orchestrator, PathTable, ServiceConfig, ServiceEnv,
};
use vns_topo::channels::{CalibrationConfig, ChannelFactory};
use vns_topo::{generate, Internet, TopoConfig};

struct World {
    internet: Internet,
    vns: Vns,
    factory: ChannelFactory,
    endpoints: EndpointTable,
    paths: PathTable,
}

fn world(seed: u64) -> World {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("generate");
    let vns = build_vns(&mut internet, &VnsConfig::default()).expect("converge");
    let tree = RngTree::new(seed);
    let factory = ChannelFactory::new(CalibrationConfig::default(), tree.subtree("channels"));
    let endpoints = EndpointTable::build(&internet, &vns);
    let paths = PathTable::build(&internet, &vns, &endpoints);
    World {
        internet,
        vns,
        factory,
        endpoints,
        paths,
    }
}

fn env(w: &World) -> ServiceEnv<'_> {
    ServiceEnv {
        internet: &w.internet,
        vns: &w.vns,
        factory: &w.factory,
        endpoints: &w.endpoints,
        paths: &w.paths,
    }
}

fn small_config() -> ServiceConfig {
    let profile = DiurnalProfile::new(DiurnalShape::Mixed, 0.6, 0.3, 0.0);
    let mut cfg = ServiceConfig::sized(300, Dur::from_secs(240), Dur::from_secs(300), profile);
    cfg.qos_stride = 16;
    cfg
}

/// Fingerprint of everything determinism must pin: counts, occupancy and
/// sketch-derived percentiles per window.
fn fingerprint(o: &Orchestrator) -> String {
    let mut out = String::new();
    for w in &o.telemetry().windows {
        out.push_str(&format!(
            "{}|{}|{}|{}|{}|{}|{:?}|{:?}|{:?}|{:?}\n",
            w.window,
            w.arrivals,
            w.admitted,
            w.spilled,
            w.rejected,
            w.concurrent_end,
            w.pop_occupancy,
            w.setup.quantile(0.99),
            w.loss.quantile(0.99),
            w.jitter.quantile(0.99),
        ));
    }
    out
}

#[test]
fn endpoint_table_covers_routable_prefixes() {
    let w = world(11);
    assert!(w.endpoints.len() > 10, "endpoints {}", w.endpoints.len());
    // Weighted sampling touches many distinct endpoints.
    let mut rng = RngTree::new(9).stream("sample");
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..500 {
        let (a, b) = w.endpoints.sample_pair(&mut rng);
        assert_ne!(a, b, "caller == callee");
        seen.insert(a);
        seen.insert(b);
    }
    assert!(seen.len() > w.endpoints.len() / 4, "seen {}", seen.len());
}

#[test]
fn path_table_composes_spilled_paths() {
    let w = world(11);
    let pops: Vec<_> = w.vns.pops().iter().map(|p| p.id()).collect();
    let mut direct = 0;
    let mut spliced = 0;
    for caller in 0..w.endpoints.len().min(8) {
        let landing = w.paths.landing_pop(caller).expect("routable at build");
        let callee = (caller + 1) % w.endpoints.len();
        if let Some(p) = w.paths.call_path(caller, callee, landing) {
            direct = direct.max(p.hops.len());
        }
        for &other in &pops {
            if other == landing {
                continue;
            }
            if let Some(p) = w.paths.call_path(caller, callee, other) {
                spliced = spliced.max(p.hops.len());
                assert!(
                    p.hops.iter().any(|h| h.label.starts_with("spill:")),
                    "spilled path carries the splice leg"
                );
            }
        }
    }
    assert!(direct >= 2, "direct path hops {direct}");
    assert!(spliced > 0, "no spilled path resolved");
}

#[test]
fn admission_spills_then_rejects() {
    let w = world(11);
    let mut ctl = AdmissionController::new(&w.vns, 40, 2);
    let landing = w.vns.pops()[0].id();
    let mut primary = 0;
    let mut spilled = 0;
    let mut rejected = 0;
    for _ in 0..200 {
        match ctl.offer(landing).expect("landing is a known PoP") {
            vns_service::Admission::Primary(_) => primary += 1,
            vns_service::Admission::Spilled { .. } => spilled += 1,
            vns_service::Admission::Rejected => rejected += 1,
        }
    }
    assert!(primary > 0 && spilled > 0 && rejected > 0);
    // Spill depth 2: only landing + 2 nearest can fill.
    let filled: u64 = ctl.occupancy_rows().iter().map(|&(_, occ, _)| occ).sum();
    assert_eq!(filled, ctl.total_admitted());
    assert_eq!(ctl.total_rejected(), rejected);
}

#[test]
fn steady_state_reaches_and_holds_target() {
    let w = world(11);
    let cfg = small_config();
    let target = cfg.target_concurrent;
    let mut orch = Orchestrator::new(&w.vns, cfg, RngTree::new(7).subtree("service"));
    orch.run_windows(&env(&w), 8, Par::seq());
    let t = orch.telemetry();
    assert_eq!(t.windows.len(), 8);
    // Little's law: concurrency ramps to ~ rate*hold >= target.
    let sustained = t.sustained_concurrent();
    assert!(
        sustained as f64 > target as f64 * 0.7,
        "sustained {sustained} vs target {target}"
    );
    // Capacity is a hard ceiling.
    let budget = orch.config().capacity_budget();
    for w in &t.windows {
        assert!(w.concurrent_end <= budget);
        for &(_, occ, cap) in &w.pop_occupancy {
            assert!(occ <= cap, "occupancy over capacity");
        }
    }
    // Setup latencies were actually measured.
    assert!(t.setup_overall().count() > 100);
    assert!(t.loss_overall().count() > 0, "no QoS samples");
}

#[test]
fn thread_count_cannot_change_telemetry() {
    let run = |par: Par| {
        let w = world(11);
        let mut orch = Orchestrator::new(&w.vns, small_config(), RngTree::new(7).subtree("svc"));
        orch.run_windows(&env(&w), 4, par);
        fingerprint(&orch)
    };
    let seq = run(Par::seq());
    assert!(!seq.is_empty());
    assert_eq!(seq, run(Par::new(2)));
    assert_eq!(seq, run(Par::new(8)));
}

#[test]
fn pop_failure_tears_down_and_redirects() {
    let w = world(11);
    let mut orch = Orchestrator::new(&w.vns, small_config(), RngTree::new(7).subtree("svc"));
    let e = env(&w);
    orch.run_windows(&e, 3, Par::seq());
    // Fail the busiest PoP (lowest id on ties).
    let victim = orch
        .admission()
        .occupancy_rows()
        .iter()
        .copied()
        .max_by_key(|&(p, occ, _)| (occ, std::cmp::Reverse(p)))
        .map(|(p, _, _)| p)
        .expect("pops exist");
    let before = orch.admission().occupancy(victim);
    assert!(before > 0, "victim should be loaded");
    let (prev_cap, torn) = orch.fail_pop(victim).expect("victim is a known PoP");
    assert_eq!(torn, before, "all sessions on the dead PoP torn down");
    assert_eq!(orch.admission().occupancy(victim), 0);
    assert_eq!(orch.admission().capacity(victim), 0);
    // Churn continues: the dead PoP admits nothing, spill takes the load.
    orch.run_windows(&e, 2, Par::seq());
    assert_eq!(orch.admission().occupancy(victim), 0);
    let spilled_after = orch.telemetry().windows.last().expect("windows").spilled;
    assert!(
        spilled_after > 0,
        "landing traffic must spill off the dead PoP"
    );
    // Restore: the PoP fills up again.
    orch.restore_pop(victim, prev_cap)
        .expect("victim is a known PoP");
    orch.run_windows(&e, 2, Par::seq());
    assert!(
        orch.admission().occupancy(victim) > 0,
        "restored PoP takes calls"
    );
}

/// Exercises one admission-controller mutator with a PoP id the
/// controller does not apportion. Debug builds fail the twin
/// `debug_assert!` at the fault site; release builds degrade to the
/// typed `ServiceError::UnknownPop`.
fn assert_unknown_pop<T: std::fmt::Debug>(
    ctl: &mut AdmissionController,
    ghost: vns_core::PopId,
    op: impl FnOnce(&mut AdmissionController) -> Result<T, vns_service::ServiceError>,
) {
    if cfg!(debug_assertions) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| op(ctl)));
        assert!(
            outcome.is_err(),
            "debug build must assert at the fault site for unknown {ghost}"
        );
    } else {
        match op(ctl) {
            Err(vns_service::ServiceError::UnknownPop(p)) => assert_eq!(p, ghost),
            other => panic!("expected UnknownPop({ghost}), got {other:?}"),
        }
    }
}

#[test]
fn offer_at_unknown_pop_is_a_typed_error() {
    let w = world(11);
    let mut ctl = AdmissionController::new(&w.vns, 40, 2);
    let ghost = vns_core::PopId(200);
    assert!(!w.vns.pops().iter().any(|p| p.id() == ghost));
    assert_unknown_pop(&mut ctl, ghost, |c| c.offer(ghost));
    // The failed offer books nothing and counts nowhere.
    assert_eq!(ctl.total_admitted(), 0);
    assert_eq!(ctl.total_rejected(), 0);
    assert_eq!(ctl.total_occupancy(), 0);
}

#[test]
fn release_at_unknown_pop_is_a_typed_error() {
    let w = world(11);
    let mut ctl = AdmissionController::new(&w.vns, 40, 2);
    let ghost = vns_core::PopId(201);
    assert_unknown_pop(&mut ctl, ghost, |c| c.release(ghost));
    assert_eq!(ctl.total_occupancy(), 0);
}

#[test]
fn fail_pop_at_unknown_pop_is_a_typed_error() {
    let w = world(11);
    let mut ctl = AdmissionController::new(&w.vns, 40, 2);
    let ghost = vns_core::PopId(202);
    assert_unknown_pop(&mut ctl, ghost, |c| c.fail_pop(ghost));
    // No real PoP lost capacity as a side effect.
    for pop in w.vns.pops() {
        assert!(
            ctl.capacity(pop.id()) > 0,
            "{} capacity clobbered",
            pop.id()
        );
    }
}

#[test]
fn restore_pop_at_unknown_pop_is_a_typed_error() {
    let w = world(11);
    let mut ctl = AdmissionController::new(&w.vns, 40, 2);
    let ghost = vns_core::PopId(203);
    assert_unknown_pop(&mut ctl, ghost, |c| c.restore_pop(ghost, 7));
    // The ghost gained no capacity: a follow-up mutator still errs.
    assert_unknown_pop(&mut ctl, ghost, |c| c.fail_pop(ghost));
}
