//! The window-by-window service-plane orchestrator.
//!
//! Each telemetry window runs in three strictly separated passes:
//!
//! 1. **Arrivals** — the window's Poisson arrival instants come from the
//!    per-window stream (`arrivals:{window}` via [`ArrivalProcess`]), a
//!    pure function of (master seed, window index).
//! 2. **Bookkeeping** — the discrete-event engine processes arrivals and
//!    departures in event-time order, sequentially: endpoint draws,
//!    admission, hold-time draws, occupancy. This pass is cheap (no packet
//!    work) and is the only pass that mutates shared state.
//! 3. **Measurement** — admitted calls are measured in parallel. Each call
//!    is a pure function of its [`CallRecord`] and the read-only
//!    environment: channels are derived from `svc:{id}:*` labels, never
//!    from worker identity or order. Outcomes fold into the window report
//!    in canonical call-id order.
//!
//! Thread count therefore cannot affect any artefact byte — the invariant
//! the cross-thread reproducibility suite pins for every campaign.

use vns_core::{PopId, Vns};
use vns_media::{run_echo_session, setup_call, teardown_call, SessionConfig, VideoSpec};
use vns_netsim::{ArrivalProcess, DiurnalProfile, Dur, Par, RngTree, SimTime, Window};
use vns_topo::{ChannelFactory, Internet};

use rand::Rng;

use crate::admission::{Admission, AdmissionController};
use crate::endpoints::EndpointTable;
use crate::error::ServiceError;
use crate::lifecycle::{CallOutcome, CallRecord, ServiceEvent, SessionManager};
use crate::paths::PathTable;
use crate::telemetry::{ServiceTelemetry, WindowReport};

/// Service-plane parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrency the plane is sized to sustain at the diurnal trough.
    pub target_concurrent: u64,
    /// Relay capacity budget as a multiple of `target_concurrent`; the
    /// diurnal peak deliberately overshoots it so admission spill and
    /// rejection are exercised daily.
    pub capacity_headroom: f64,
    /// Mean call hold time (exponential).
    pub hold_mean: Dur,
    /// Telemetry window width.
    pub window: Dur,
    /// Diurnal demand shape.
    pub profile: DiurnalProfile,
    /// Peak call arrival rate, calls/s (see [`ServiceConfig::sized`]).
    pub peak_rate_per_s: f64,
    /// How many nearest PoPs admission may spill to.
    pub spill_depth: usize,
    /// Measure SIP setup on every `setup_stride`-th call (1 = all).
    pub setup_stride: u64,
    /// Run a media QoS burst on every `qos_stride`-th call.
    pub qos_stride: u64,
    /// QoS burst length.
    pub qos_burst: Dur,
    /// Windows to exclude from the sustained-concurrency figure (ramp-up
    /// from an empty system takes a few hold times).
    pub warmup_windows: usize,
}

impl ServiceConfig {
    /// Sizes the arrival process so the diurnal *trough* still offers
    /// `target_concurrent` sessions in expectation (Little's law:
    /// concurrency = rate × hold), i.e. the target is sustained around the
    /// clock rather than only at peak.
    pub fn sized(
        target_concurrent: u64,
        hold_mean: Dur,
        window: Dur,
        profile: DiurnalProfile,
    ) -> Self {
        let trough = (0..96)
            .map(|i| profile.utilization_at_hour(f64::from(i) / 4.0))
            .fold(f64::INFINITY, f64::min)
            .max(1e-6);
        let peak_rate_per_s = target_concurrent as f64 / (hold_mean.as_secs_f64() * trough);
        Self {
            target_concurrent,
            capacity_headroom: 1.25,
            hold_mean,
            window,
            profile,
            peak_rate_per_s,
            spill_depth: 3,
            setup_stride: 1,
            qos_stride: 32,
            qos_burst: Dur::from_secs(1),
            warmup_windows: 2,
        }
    }

    /// The total relay capacity budget.
    pub fn capacity_budget(&self) -> u64 {
        (self.target_concurrent as f64 * self.capacity_headroom).round() as u64
    }
}

/// The read-only world the orchestrator measures against. Borrowed per
/// [`Orchestrator::run_windows`] call rather than owned, so a campaign can
/// inject faults, reconverge routing, rebuild the [`PathTable`] and resume
/// the same orchestrator on the post-fault world.
#[derive(Debug, Clone, Copy)]
pub struct ServiceEnv<'a> {
    /// The simulated internet.
    pub internet: &'a Internet,
    /// The relay service overlay.
    pub vns: &'a Vns,
    /// Per-flow channel construction.
    pub factory: &'a ChannelFactory,
    /// Population-weighted endpoints.
    pub endpoints: &'a EndpointTable,
    /// Epoch-cached resolved paths.
    pub paths: &'a PathTable,
}

/// Drives the service plane window by window.
#[derive(Debug)]
pub struct Orchestrator {
    cfg: ServiceConfig,
    tree: RngTree,
    arrivals: ArrivalProcess,
    admission: AdmissionController,
    lifecycle: SessionManager,
    next_window: u64,
    telemetry: ServiceTelemetry,
}

impl Orchestrator {
    /// Builds the orchestrator. `tree` should be a dedicated subtree (e.g.
    /// `tree.subtree("service")`).
    pub fn new(vns: &Vns, cfg: ServiceConfig, tree: RngTree) -> Self {
        let arrivals = ArrivalProcess::new(cfg.peak_rate_per_s, cfg.profile, cfg.window);
        let admission = AdmissionController::new(vns, cfg.capacity_budget(), cfg.spill_depth);
        let warmup_windows = cfg.warmup_windows;
        Self {
            cfg,
            tree,
            arrivals,
            admission,
            lifecycle: SessionManager::new(),
            next_window: 0,
            telemetry: ServiceTelemetry {
                windows: Vec::new(),
                warmup_windows,
                pop_codes: vns.pops().iter().map(|p| (p.id(), p.code())).collect(),
            },
        }
    }

    /// The telemetry accumulated so far.
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// Consumes the orchestrator, yielding its telemetry.
    pub fn into_telemetry(self) -> ServiceTelemetry {
        self.telemetry
    }

    /// Admission state (occupancy, counters).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// The lifecycle manager (active count, clock).
    pub fn lifecycle(&self) -> &SessionManager {
        &self.lifecycle
    }

    /// Configuration access.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Fails `pop`: capacity drops to zero and every live session on it is
    /// torn down immediately. Returns `(previous capacity, sessions torn)`
    /// — hand the capacity back to [`Orchestrator::restore_pop`] later.
    pub fn fail_pop(&mut self, pop: PopId) -> Result<(u64, u64), ServiceError> {
        let prev = self.admission.capacity(pop);
        self.admission.fail_pop(pop)?;
        let torn = self.lifecycle.force_teardown(pop, &mut self.admission);
        Ok((prev, torn))
    }

    /// Restores a failed PoP to capacity `cap`.
    pub fn restore_pop(&mut self, pop: PopId, cap: u64) -> Result<(), ServiceError> {
        self.admission.restore_pop(pop, cap)
    }

    /// Runs the next `count` telemetry windows against `env`, appending one
    /// [`WindowReport`] per window.
    pub fn run_windows(&mut self, env: &ServiceEnv<'_>, count: u64, par: Par) {
        for _ in 0..count {
            let report = self.run_one_window(env, par);
            self.telemetry.windows.push(report);
        }
    }

    fn run_one_window(&mut self, env: &ServiceEnv<'_>, par: Par) -> WindowReport {
        let idx = self.next_window;
        self.next_window += 1;
        let win = Window {
            index: idx,
            width: self.cfg.window,
        };
        let mut report = WindowReport::empty(win);

        // Pass 1: this window's arrival instants (pure function of
        // (seed, idx) — no dependence on previous windows).
        for &t in &self.arrivals.window_arrivals(&self.tree, idx) {
            self.lifecycle.engine.schedule(t, ServiceEvent::Arrival);
        }

        // Pass 2: sequential bookkeeping in event-time order. Split borrows
        // by field so the engine can hand its context to a handler that
        // mutates the sibling state.
        let mut admitted_calls: Vec<CallRecord> = Vec::new();
        {
            let Self {
                cfg,
                tree,
                admission,
                lifecycle,
                ..
            } = self;
            let SessionManager {
                engine,
                active,
                next_id,
                ..
            } = lifecycle;
            // Events at exactly `win.end()` belong to the next window.
            let until = SimTime::from_nanos(win.end().as_nanos().saturating_sub(1));
            engine.run_until(until, |ctx, ev| match ev {
                ServiceEvent::Arrival => {
                    report.arrivals += 1;
                    let id = *next_id;
                    *next_id += 1;
                    let mut rng = tree.stream_args(format_args!("call:{id}"));
                    let (caller, callee) = env.endpoints.sample_pair(&mut rng);
                    let Some(landing) = env.paths.landing_pop(caller) else {
                        // Routing fault cut the caller off from the anycast
                        // address entirely: not an admission rejection.
                        report.unreachable += 1;
                        return;
                    };
                    let (admitted, spilled) = match admission.offer(landing) {
                        Ok(Admission::Primary(pop)) => (pop, false),
                        Ok(Admission::Spilled { admitted, .. }) => (admitted, true),
                        // An unknown landing PoP (Err) is an internal
                        // invariant breach — the debug_assert twin inside
                        // `offer` fires in debug builds; release builds
                        // degrade it to a rejection.
                        Ok(Admission::Rejected) | Err(_) => {
                            report.rejected += 1;
                            return;
                        }
                    };
                    report.admitted += 1;
                    if spilled {
                        report.spilled += 1;
                    }
                    let u: f64 = rng.gen();
                    let hold_ms = (-(1.0 - u).ln() * cfg.hold_mean.as_millis_f64()).max(1.0);
                    let departure = ctx.now() + Dur::from_millis_f64(hold_ms);
                    ctx.schedule_at(departure, ServiceEvent::Departure { id, pop: admitted });
                    active.insert(id, admitted);
                    admitted_calls.push(CallRecord {
                        id,
                        arrival: ctx.now(),
                        departure,
                        caller,
                        callee,
                        landing,
                        admitted,
                        spilled,
                    });
                }
                ServiceEvent::Departure { id, pop } => {
                    // Sessions force-torn by a PoP failure already left the
                    // active set; their departure events are no-ops.
                    if active.remove(&id).is_some() {
                        // The slot was booked at admission on this same
                        // controller, so release only errs on an internal
                        // id mix-up — the debug_assert twin covers it.
                        let _ = admission.release(pop);
                        report.departures += 1;
                    }
                }
            });
        }

        // Pass 3: parallel measurement of the sampled calls. Results fold
        // in canonical (call-id) order regardless of which worker measured
        // what.
        let measured: Vec<CallRecord> = admitted_calls
            .into_iter()
            .filter(|r| r.id.is_multiple_of(self.cfg.setup_stride))
            .collect();
        let outcomes = par.map(&measured, |_, rec| {
            measure_call(env, &self.cfg, &self.tree, rec)
        });
        for o in &outcomes {
            if o.no_route {
                report.no_route += 1;
                continue;
            }
            report.setup.record(o.setup_ms);
            if !o.established {
                report.setup_failures += 1;
            }
            if let Some((loss_pct, jitter_ms)) = o.qos {
                report.qos_samples += 1;
                report.loss.record(loss_pct);
                report.jitter.record(jitter_ms);
            }
            if let Some(confirmed) = o.teardown_confirmed {
                report.teardowns += 1;
                if confirmed {
                    report.teardowns_confirmed += 1;
                }
            }
        }

        report.concurrent_end = self.admission.total_occupancy();
        report.pop_occupancy = self.admission.occupancy_rows();
        report
    }
}

/// Measures one admitted call: SIP setup on the composed caller→relay→
/// callee path; for QoS-sampled calls, a short HD echo burst and the BYE
/// teardown at the scheduled departure. Pure: all randomness comes from
/// `svc:{id}:*` labels.
fn measure_call(
    env: &ServiceEnv<'_>,
    cfg: &ServiceConfig,
    tree: &RngTree,
    rec: &CallRecord,
) -> CallOutcome {
    let id = rec.id;
    let Some(path) = env.paths.call_path(rec.caller, rec.callee, rec.admitted) else {
        return CallOutcome {
            id,
            no_route: true,
            established: false,
            setup_ms: 0.0,
            qos: None,
            teardown_confirmed: None,
        };
    };
    let back = path.reversed();
    let mut fwd = env
        .factory
        .channel_args(&path, format_args!("svc:{id}:fwd"));
    let mut rev = env
        .factory
        .channel_args(&back, format_args!("svc:{id}:rev"));
    let setup = setup_call(&mut fwd, &mut rev, rec.arrival);
    let mut qos = None;
    let mut teardown_confirmed = None;
    if setup.established && id.is_multiple_of(cfg.qos_stride) {
        let media_start = rec.arrival + Dur::from_millis_f64(setup.setup_ms);
        let mut media_rng = tree.stream_args(format_args!("svc:{id}:media"));
        let session_cfg = SessionConfig {
            slot: cfg.qos_burst,
            duration: cfg.qos_burst,
        };
        let r = run_echo_session(
            VideoSpec::HD720.packets(media_start, cfg.qos_burst, &mut media_rng),
            &session_cfg,
            &mut fwd,
            &mut rev,
        );
        qos = Some((r.rt_loss_pct(), r.jitter_ms));
        // The BYE goes out when the call actually ends (the scheduled
        // departure, or right after the burst for very short holds).
        let bye_at = rec.departure.max(media_start + cfg.qos_burst);
        teardown_confirmed = Some(teardown_call(&mut fwd, &mut rev, bye_at).confirmed);
    }
    CallOutcome {
        id,
        no_route: false,
        established: setup.established,
        setup_ms: setup.setup_ms,
        qos,
        teardown_confirmed,
    }
}
