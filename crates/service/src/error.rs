//! Typed errors for the service plane.

use std::fmt;

use vns_core::PopId;

/// Error from a service-plane bookkeeping operation.
///
/// Every PoP id flowing through the orchestrator originates from the same
/// [`Vns`](vns_core::Vns) the admission controller was built over, so
/// these are internal-invariant breaches: the panicking lookups were
/// burned down to this typed error, with `debug_assert!` twins at the
/// fault site so debug builds still fail loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The PoP id is not in the admission controller's capacity table.
    UnknownPop(PopId),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownPop(pop) => {
                write!(f, "PoP {pop} is not tracked by the admission controller")
            }
        }
    }
}

impl std::error::Error for ServiceError {}
