//! PoP admission control with spill-to-nearest.
//!
//! Each PoP runs a finite relay fleet; its concurrent-session capacity is
//! apportioned from a global budget in proportion to
//! [`vns_core::pops::PopSpec::relay_units`]. A call is offered to its
//! anycast landing PoP first; when that PoP is saturated the call spills
//! to the geographically nearest PoPs (in [`Vns::spill_order`]) up to a
//! bounded depth — beyond that the call is rejected outright, so regional
//! overload shows up as rejections instead of silently teleporting calls
//! around the planet.

use std::collections::BTreeMap;

use vns_core::{PopId, Vns};

use crate::error::ServiceError;

/// Outcome of offering one call to the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted at the landing PoP itself.
    Primary(PopId),
    /// Landing PoP full; admitted at a nearby PoP over the L2 splice.
    Spilled {
        /// The saturated landing PoP.
        landing: PopId,
        /// The PoP that took the call.
        admitted: PopId,
    },
    /// Landing PoP and every spill candidate full (or dead).
    Rejected,
}

impl Admission {
    /// The admitting PoP, when admitted.
    pub fn pop(&self) -> Option<PopId> {
        match *self {
            Admission::Primary(p) => Some(p),
            Admission::Spilled { admitted, .. } => Some(admitted),
            Admission::Rejected => None,
        }
    }
}

/// Per-PoP occupancy bookkeeping. Purely sequential state — the
/// orchestrator drives it from the (deterministic) event loop, never from
/// worker threads.
#[derive(Debug)]
pub struct AdmissionController {
    /// Capacity per PoP (0 for a failed PoP).
    caps: BTreeMap<PopId, u64>,
    /// Live sessions per PoP.
    occ: BTreeMap<PopId, u64>,
    /// Pre-computed spill order per landing PoP, truncated to the depth.
    spill: BTreeMap<PopId, Vec<PopId>>,
    admitted: u64,
    spilled: u64,
    rejected: u64,
}

impl AdmissionController {
    /// Builds the controller: `total_capacity` concurrent-session slots
    /// apportioned over PoPs, spill bounded to the `spill_depth` nearest.
    pub fn new(vns: &Vns, total_capacity: u64, spill_depth: usize) -> Self {
        let caps: BTreeMap<PopId, u64> =
            vns.apportion_capacity(total_capacity).into_iter().collect();
        let occ = caps.keys().map(|&p| (p, 0)).collect();
        let spill = caps
            .keys()
            .map(|&p| {
                let mut order = vns.spill_order(p);
                order.truncate(spill_depth);
                (p, order)
            })
            .collect();
        Self {
            caps,
            occ,
            spill,
            admitted: 0,
            spilled: 0,
            rejected: 0,
        }
    }

    fn has_room(&self, pop: PopId) -> bool {
        match (self.occ.get(&pop), self.caps.get(&pop)) {
            (Some(&occ), Some(&cap)) => occ < cap,
            _ => {
                debug_assert!(false, "has_room on unknown {pop}");
                false
            }
        }
    }

    /// Books one slot at a PoP that [`AdmissionController::has_room`]
    /// just vouched for.
    fn book(&mut self, pop: PopId) {
        match self.occ.get_mut(&pop) {
            Some(occ) => {
                *occ += 1;
                self.admitted += 1;
            }
            None => debug_assert!(false, "book on unknown {pop}"),
        }
    }

    /// Offers a call landing at `landing`; books the slot on admission.
    /// Errs when `landing` is not a PoP this controller apportions.
    pub fn offer(&mut self, landing: PopId) -> Result<Admission, ServiceError> {
        if !self.caps.contains_key(&landing) {
            debug_assert!(false, "offer landing at unknown {landing}");
            return Err(ServiceError::UnknownPop(landing));
        }
        if self.has_room(landing) {
            self.book(landing);
            return Ok(Admission::Primary(landing));
        }
        let candidates = self.spill.get(&landing).cloned().unwrap_or_default();
        for admitted in candidates {
            if self.has_room(admitted) {
                self.book(admitted);
                self.spilled += 1;
                return Ok(Admission::Spilled { landing, admitted });
            }
        }
        self.rejected += 1;
        Ok(Admission::Rejected)
    }

    /// Releases one slot at `pop` (session departed or torn down).
    pub fn release(&mut self, pop: PopId) -> Result<(), ServiceError> {
        let Some(occ) = self.occ.get_mut(&pop) else {
            debug_assert!(false, "release at unknown {pop}");
            return Err(ServiceError::UnknownPop(pop));
        };
        debug_assert!(*occ > 0, "release on empty {pop}");
        *occ = occ.saturating_sub(1);
        Ok(())
    }

    /// Marks a PoP failed: capacity drops to zero so it admits nothing.
    /// Live sessions are the lifecycle manager's to tear down (each one
    /// still calls [`AdmissionController::release`]).
    pub fn fail_pop(&mut self, pop: PopId) -> Result<(), ServiceError> {
        let Some(cap) = self.caps.get_mut(&pop) else {
            debug_assert!(false, "fail_pop at unknown {pop}");
            return Err(ServiceError::UnknownPop(pop));
        };
        *cap = 0;
        Ok(())
    }

    /// Restores a failed PoP to capacity `cap`.
    pub fn restore_pop(&mut self, pop: PopId, cap: u64) -> Result<(), ServiceError> {
        let Some(slot) = self.caps.get_mut(&pop) else {
            debug_assert!(false, "restore_pop at unknown {pop}");
            return Err(ServiceError::UnknownPop(pop));
        };
        *slot = cap;
        Ok(())
    }

    /// Capacity of `pop` (0 for an unknown PoP).
    pub fn capacity(&self, pop: PopId) -> u64 {
        let cap = self.caps.get(&pop).copied();
        debug_assert!(cap.is_some(), "capacity of unknown {pop}");
        cap.unwrap_or(0)
    }

    /// Live sessions at `pop` (0 for an unknown PoP).
    pub fn occupancy(&self, pop: PopId) -> u64 {
        let occ = self.occ.get(&pop).copied();
        debug_assert!(occ.is_some(), "occupancy of unknown {pop}");
        occ.unwrap_or(0)
    }

    /// `(PoP, occupancy, capacity)` rows in id order.
    pub fn occupancy_rows(&self) -> Vec<(PopId, u64, u64)> {
        self.occ
            .iter()
            .map(|(&p, &o)| (p, o, self.caps.get(&p).copied().unwrap_or(0)))
            .collect()
    }

    /// Total live sessions across all PoPs.
    pub fn total_occupancy(&self) -> u64 {
        self.occ.values().sum()
    }

    /// Calls admitted since construction.
    pub fn total_admitted(&self) -> u64 {
        self.admitted
    }

    /// Admitted calls that had to spill.
    pub fn total_spilled(&self) -> u64 {
        self.spilled
    }

    /// Calls rejected since construction.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }
}
