//! Windowed service telemetry.
//!
//! Every metric is bucketed by **simulated-time** window
//! ([`vns_netsim::Window`]) — never host wall time, which belongs only to
//! the bench perf ledger. Percentiles come from mergeable
//! [`QuantileSketch`]es, so per-call measurements folded in canonical call
//! order produce byte-identical artefacts at any thread count.

use std::fmt;

use vns_core::PopId;
use vns_netsim::Window;
use vns_stats::QuantileSketch;

/// Sketch geometry for call-setup latency, ms (SIP timer B caps at 32 s).
pub fn setup_sketch() -> QuantileSketch {
    QuantileSketch::new(0.0, 32_000.0, 640)
}

/// Sketch geometry for round-trip loss percentage.
pub fn loss_sketch() -> QuantileSketch {
    QuantileSketch::new(0.0, 100.0, 400)
}

/// Sketch geometry for RFC 3550 jitter, ms.
pub fn jitter_sketch() -> QuantileSketch {
    QuantileSketch::new(0.0, 200.0, 400)
}

/// Everything measured in one telemetry window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// The simulated-time window.
    pub window: Window,
    /// Calls that arrived.
    pub arrivals: u64,
    /// Calls admitted (at the landing PoP or spilled).
    pub admitted: u64,
    /// Admitted calls that spilled to a non-landing PoP.
    pub spilled: u64,
    /// Calls rejected (landing PoP and all spill candidates full).
    pub rejected: u64,
    /// Callers with no route to the anycast address at all (only happens
    /// under routing faults).
    pub unreachable: u64,
    /// Sessions that departed inside the window.
    pub departures: u64,
    /// Measured calls whose admitted PoP had no route to the callee.
    pub no_route: u64,
    /// Measured setups that failed to establish before timer B.
    pub setup_failures: u64,
    /// Concurrent sessions at the window's end.
    pub concurrent_end: u64,
    /// `(PoP, occupancy, capacity)` at the window's end, in id order.
    pub pop_occupancy: Vec<(PopId, u64, u64)>,
    /// Call-setup latency sketch, ms.
    pub setup: QuantileSketch,
    /// Round-trip loss sketch, %, over QoS-sampled calls.
    pub loss: QuantileSketch,
    /// Jitter sketch, ms, over QoS-sampled calls.
    pub jitter: QuantileSketch,
    /// QoS bursts run.
    pub qos_samples: u64,
    /// BYE teardowns confirmed / attempted on QoS-sampled departures.
    pub teardowns_confirmed: u64,
    /// Teardowns attempted.
    pub teardowns: u64,
}

impl WindowReport {
    /// A fresh, empty report for `window`.
    pub fn empty(window: Window) -> Self {
        Self {
            window,
            arrivals: 0,
            admitted: 0,
            spilled: 0,
            rejected: 0,
            unreachable: 0,
            departures: 0,
            no_route: 0,
            setup_failures: 0,
            concurrent_end: 0,
            pop_occupancy: Vec::new(),
            setup: setup_sketch(),
            loss: loss_sketch(),
            jitter: jitter_sketch(),
            qos_samples: 0,
            teardowns_confirmed: 0,
            teardowns: 0,
        }
    }

    /// Rejection rate in percent of arrivals.
    pub fn rejection_pct(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            100.0 * self.rejected as f64 / self.arrivals as f64
        }
    }
}

/// Formats a quantile as a fixed-width cell.
fn q(s: &QuantileSketch, p: f64) -> String {
    match s.quantile(p) {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

/// The full steady-state telemetry artefact.
#[derive(Debug, Clone)]
pub struct ServiceTelemetry {
    /// Per-window reports in window order.
    pub windows: Vec<WindowReport>,
    /// Windows to ignore when judging steady state (ramp-up from empty).
    pub warmup_windows: usize,
    /// PoP airport codes in id order, for rendering occupancy rows.
    pub pop_codes: Vec<(PopId, &'static str)>,
}

impl ServiceTelemetry {
    /// Peak end-of-window concurrency.
    pub fn peak_concurrent(&self) -> u64 {
        self.windows
            .iter()
            .map(|w| w.concurrent_end)
            .max()
            .unwrap_or(0)
    }

    /// Minimum end-of-window concurrency over post-warmup windows — the
    /// "sustains N concurrent sessions" number.
    pub fn sustained_concurrent(&self) -> u64 {
        self.windows
            .iter()
            .skip(self.warmup_windows)
            .map(|w| w.concurrent_end)
            .min()
            .unwrap_or(0)
    }

    /// Total arrivals.
    pub fn total_arrivals(&self) -> u64 {
        self.windows.iter().map(|w| w.arrivals).sum()
    }

    /// Total rejected calls.
    pub fn total_rejected(&self) -> u64 {
        self.windows.iter().map(|w| w.rejected).sum()
    }

    /// Total anycast-unreachable arrivals.
    pub fn total_unreachable(&self) -> u64 {
        self.windows.iter().map(|w| w.unreachable).sum()
    }

    /// Total spilled admissions.
    pub fn total_spilled(&self) -> u64 {
        self.windows.iter().map(|w| w.spilled).sum()
    }

    /// All-window merged setup sketch.
    pub fn setup_overall(&self) -> QuantileSketch {
        let mut all = setup_sketch();
        for w in &self.windows {
            all.merge(&w.setup);
        }
        all
    }

    /// All-window merged loss sketch.
    pub fn loss_overall(&self) -> QuantileSketch {
        let mut all = loss_sketch();
        for w in &self.windows {
            all.merge(&w.loss);
        }
        all
    }

    /// All-window merged jitter sketch.
    pub fn jitter_overall(&self) -> QuantileSketch {
        let mut all = jitter_sketch();
        for w in &self.windows {
            all.merge(&w.jitter);
        }
        all
    }
}

impl fmt::Display for ServiceTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "window                    arriv  admit  spill rej    rej%  conc@end | \
             setup ms p50/p99/p999 | loss% p50/p99/p999 | jitter ms p50/p99/p999"
        )?;
        for w in &self.windows {
            writeln!(
                f,
                "{} {:>6} {:>6} {:>6} {:>6} {:>5.1} {:>8} | {:>7}/{:>7}/{:>7} | {:>5}/{:>5}/{:>5} | {:>5}/{:>5}/{:>5}",
                w.window,
                w.arrivals,
                w.admitted,
                w.spilled,
                w.rejected,
                w.rejection_pct(),
                w.concurrent_end,
                q(&w.setup, 0.50),
                q(&w.setup, 0.99),
                q(&w.setup, 0.999),
                q(&w.loss, 0.50),
                q(&w.loss, 0.99),
                q(&w.loss, 0.999),
                q(&w.jitter, 0.50),
                q(&w.jitter, 0.99),
                q(&w.jitter, 0.999),
            )?;
        }
        // Per-PoP occupancy at the final window.
        if let Some(last) = self.windows.last() {
            writeln!(f, "\nper-PoP occupancy at {}:", last.window)?;
            for (pop, occ, cap) in &last.pop_occupancy {
                let pct = if *cap == 0 {
                    0.0
                } else {
                    100.0 * *occ as f64 / *cap as f64
                };
                match self.pop_codes.iter().find(|(id, _)| id == pop) {
                    Some((_, code)) => writeln!(f, "  {code}: {occ}/{cap} ({pct:.1}%)")?,
                    None => writeln!(f, "  {pop}: {occ}/{cap} ({pct:.1}%)")?,
                }
            }
        }
        let setup = self.setup_overall();
        let loss = self.loss_overall();
        let jitter = self.jitter_overall();
        writeln!(
            f,
            "\nsummary: {} arrivals, {} rejected, {} unreachable, {} spilled, \
             peak {} concurrent, sustained {} concurrent (after {} warmup windows)",
            self.total_arrivals(),
            self.total_rejected(),
            self.total_unreachable(),
            self.total_spilled(),
            self.peak_concurrent(),
            self.sustained_concurrent(),
            self.warmup_windows,
        )?;
        writeln!(
            f,
            "overall: setup p50/p99/p999 {}/{}/{} ms ({} calls) | \
             loss p50/p99/p999 {}/{}/{} % | jitter p50/p99/p999 {}/{}/{} ms ({} QoS bursts)",
            q(&setup, 0.50),
            q(&setup, 0.99),
            q(&setup, 0.999),
            setup.count(),
            q(&loss, 0.50),
            q(&loss, 0.99),
            q(&loss, 0.999),
            q(&jitter, 0.50),
            q(&jitter, 0.99),
            q(&jitter, 0.999),
            loss.count(),
        )
    }
}
