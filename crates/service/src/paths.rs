//! Pre-resolved media paths for the service plane.
//!
//! Resolving a path is a routing-table walk; doing it per call at 10⁵+
//! concurrent sessions would dwarf the actual packet work. The service
//! plane instead resolves everything the data plane can need *once per
//! routing epoch*:
//!
//! * the anycast landing (caller prefix → ingress PoP + access path);
//! * the VNS tail (each PoP → each callee prefix);
//! * the dedicated L2 splice legs between PoP pairs, for spilled calls.
//!
//! A call's end-to-end path is then a concatenation of cached parts.
//! After a routing event (fault injection + reconvergence) the table is
//! rebuilt — paths are an epoch artefact, exactly like the fast-path
//! channel caches.

use vns_core::{PopId, Vns};
use vns_geo::city;
use vns_topo::path::{HopKind, ResolvedHop};
use vns_topo::{Internet, ResolvedPath};

use crate::endpoints::EndpointTable;

/// Cached path parts for one routing epoch.
#[derive(Debug)]
pub struct PathTable {
    /// Per endpoint index: ingress PoP and the caller→PoP access path.
    /// `None` when the endpoint cannot currently reach the anycast address
    /// (possible after a fault, even though the table is built from
    /// endpoints that were routable at world construction).
    landings: Vec<Option<(PopId, ResolvedPath)>>,
    /// Per `(pop index, endpoint index)`: the PoP→callee tail, when the
    /// PoP's RIB has a route.
    tails: Vec<Option<ResolvedPath>>,
    /// Per `(pop index, pop index)`: the dedicated L2 splice leg.
    splices: Vec<Option<ResolvedHop>>,
    /// PoP ids in `Vns::pops` order (index ↔ id mapping).
    pop_ids: Vec<PopId>,
}

impl PathTable {
    /// Resolves every cacheable part for the current routing state.
    pub fn build(internet: &Internet, vns: &Vns, endpoints: &EndpointTable) -> Self {
        let pop_ids: Vec<PopId> = vns.pops().iter().map(|p| p.id()).collect();
        let n = endpoints.len();

        let landings: Vec<Option<(PopId, ResolvedPath)>> = (0..n)
            .map(|i| vns.anycast_landing(internet, endpoints.endpoint(i).ip).ok())
            .collect();

        let mut tails = Vec::with_capacity(pop_ids.len() * n);
        for &pop in &pop_ids {
            for i in 0..n {
                tails.push(
                    vns.path_via_vns(internet, pop, endpoints.endpoint(i).ip)
                        .ok(),
                );
            }
        }

        // Dedicated L2 legs between every PoP pair, modelled as one
        // dedicated intra-AS hop (the admission spill ride). The VNS AS's
        // own info supplies asn/type so the channel calibration treats the
        // leg exactly like the resolver's own L2 hops.
        let info = internet.as_info(vns.as_id());
        let mut splices = Vec::with_capacity(pop_ids.len() * pop_ids.len());
        for &a in &pop_ids {
            for &b in &pop_ids {
                if a == b {
                    splices.push(None);
                    continue;
                }
                let (from, to) = (vns.pop(a), vns.pop(b));
                splices.push(Some(ResolvedHop {
                    kind: HopKind::IntraAs {
                        asn: info.asn,
                        ty: info.ty,
                        region: city(to.city).region,
                        dedicated: true,
                    },
                    from_city: from.city,
                    to_city: to.city,
                    km: Internet::city_km(from.city, to.city).max(1.0),
                    label: format!("spill:{a}->{b}"),
                }));
            }
        }

        Self {
            landings,
            tails,
            splices,
            pop_ids,
        }
    }

    fn pop_index(&self, id: PopId) -> Option<usize> {
        let idx = self.pop_ids.iter().position(|&p| p == id);
        debug_assert!(idx.is_some(), "unknown {id}");
        idx
    }

    /// The ingress PoP a caller endpoint lands on; `None` when the caller
    /// cannot reach the anycast address under the current routing state.
    pub fn landing_pop(&self, caller: usize) -> Option<PopId> {
        self.landings[caller].as_ref().map(|&(pop, _)| pop)
    }

    /// How many endpoints currently have an anycast landing.
    pub fn routable_endpoints(&self) -> usize {
        self.landings.iter().filter(|l| l.is_some()).count()
    }

    /// The cached PoP→callee tail path, when the PoP has a route.
    pub fn tail(&self, pop: PopId, callee: usize) -> Option<&ResolvedPath> {
        let idx = self.pop_index(pop)?;
        self.tails[idx * self.landings.len() + callee].as_ref()
    }

    /// Whether `pop` currently has a route to `callee`.
    pub fn has_tail(&self, pop: PopId, callee: usize) -> bool {
        self.tail(pop, callee).is_some()
    }

    /// The full caller→relay→callee media path for a call landed at
    /// `landing` and admitted at `admitted` (same PoP for unspilled calls;
    /// spilled calls ride the dedicated L2 splice leg in between).
    /// `None` when the admitted PoP has no route to the callee.
    pub fn call_path(&self, caller: usize, callee: usize, admitted: PopId) -> Option<ResolvedPath> {
        let (landing, access) = self.landings[caller].as_ref()?;
        let tail = self.tail(admitted, callee)?;
        let mut hops = access.hops.clone();
        let mut routers = access.routers.clone();
        if *landing == admitted {
            // The access path already ends at the admitted PoP's border:
            // drop the tail's duplicate of it.
            routers.extend(tail.routers.iter().skip(1).cloned());
        } else {
            // Distinct PoPs always get a splice leg at build time, so a
            // `None` here means the table was handed an unknown PoP pair.
            let splice = self
                .splices
                .get(self.pop_index(*landing)? * self.pop_ids.len() + self.pop_index(admitted)?)?
                .as_ref()?;
            hops.push(splice.clone());
            routers.extend(tail.routers.iter().cloned());
        }
        hops.extend(tail.hops.iter().cloned());
        Some(ResolvedPath { hops, routers })
    }

    // --- Planted-defect harness (vns-verify mutation corpus) ------------
    //
    // These hooks corrupt the cached table the way a stale or buggy
    // rebuild would — the data the admission path trusts goes silently
    // wrong while the control plane stays healthy. Only the verification
    // harness calls them.

    /// Rewrites a caller's cached anycast landing to `pop`, keeping the
    /// (now inconsistent) access path — the shape of a poisoned GeoIP
    /// landing. Returns `false` when the caller had no landing or the PoP
    /// is unknown.
    pub fn corrupt_landing(&mut self, caller: usize, pop: PopId) -> bool {
        if self.pop_index(pop).is_none() {
            return false;
        }
        match self.landings.get_mut(caller).and_then(|l| l.as_mut()) {
            Some(entry) => {
                entry.0 = pop;
                true
            }
            None => false,
        }
    }

    /// Swaps the entire cached tail rows of two PoPs — the shape of a
    /// wrong-relay path table. Returns `false` for unknown or identical
    /// PoPs.
    pub fn corrupt_swap_tails(&mut self, a: PopId, b: PopId) -> bool {
        let (Some(ia), Some(ib)) = (self.pop_index(a), self.pop_index(b)) else {
            return false;
        };
        if ia == ib {
            return false;
        }
        let n = self.landings.len();
        for callee in 0..n {
            self.tails.swap(ia * n + callee, ib * n + callee);
        }
        true
    }
}
