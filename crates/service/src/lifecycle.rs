//! Call lifecycle: the deterministic arrival/departure event loop.
//!
//! The [`SessionManager`] owns a `vns-netsim` discrete-event engine whose
//! events are call arrivals and scheduled departures. Everything that
//! mutates shared state — admission bookkeeping, the active-session set —
//! happens here, sequentially, in event-time order. The per-call packet
//! work (signalling, media QoS) is pure with respect to this state and
//! runs afterwards on worker threads.

use std::collections::BTreeMap;

use vns_core::PopId;
use vns_netsim::{Engine, SimTime};

use crate::admission::AdmissionController;

/// Events driving the service plane.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEvent {
    /// A new call arrives (caller/callee are drawn when it is handled, from
    /// the call-id-labelled stream, so handling order ≡ event-time order).
    Arrival,
    /// A previously admitted call hangs up.
    Departure {
        /// The call's id.
        id: u64,
        /// The PoP holding its slot.
        pop: PopId,
    },
}

/// One admitted call, as recorded by the bookkeeping pass. Everything a
/// worker thread needs to measure the call is in here (plus the shared
/// read-only environment) — workers never touch mutable service state.
#[derive(Debug, Clone, Copy)]
pub struct CallRecord {
    /// Monotone call id; also the RNG stream label.
    pub id: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Scheduled departure instant (arrival + exponential hold).
    pub departure: SimTime,
    /// Caller endpoint index.
    pub caller: usize,
    /// Callee endpoint index.
    pub callee: usize,
    /// Anycast landing PoP.
    pub landing: PopId,
    /// PoP that actually took the call.
    pub admitted: PopId,
    /// Whether admission spilled away from the landing PoP.
    pub spilled: bool,
}

/// What one measured call produced (pure function of the call record and
/// the read-only environment).
#[derive(Debug, Clone, Copy)]
pub struct CallOutcome {
    /// The call's id.
    pub id: u64,
    /// The admitted PoP had no route to the callee.
    pub no_route: bool,
    /// SIP setup completed before timer B.
    pub established: bool,
    /// Setup latency, ms (timer B value when not established).
    pub setup_ms: f64,
    /// `(round-trip loss %, jitter ms)` for QoS-sampled calls.
    pub qos: Option<(f64, f64)>,
    /// BYE confirmation for QoS-sampled calls (`None` when not sampled).
    pub teardown_confirmed: Option<bool>,
}

/// Owns the event engine and the active-session set.
#[derive(Debug, Default)]
pub struct SessionManager {
    /// The arrival/departure event loop. Persistent across windows: time
    /// is monotone over the whole campaign.
    pub(crate) engine: Engine<ServiceEvent>,
    /// Active call id → admitted PoP.
    pub(crate) active: BTreeMap<u64, PopId>,
    /// Next call id.
    pub(crate) next_id: u64,
    /// Sessions force-torn by PoP failures.
    pub(crate) torn_down: u64,
}

impl SessionManager {
    /// A fresh manager at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Currently active sessions.
    pub fn active_count(&self) -> u64 {
        self.active.len() as u64
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Calls started so far.
    pub fn calls_started(&self) -> u64 {
        self.next_id
    }

    /// Sessions force-torn by PoP failures so far.
    pub fn torn_down(&self) -> u64 {
        self.torn_down
    }

    /// Tears down every active session on `pop` (PoP failure): frees the
    /// slots immediately and forgets the sessions, so their scheduled
    /// departure events become no-ops. Returns how many were torn down.
    pub fn force_teardown(&mut self, pop: PopId, admission: &mut AdmissionController) -> u64 {
        let doomed: Vec<u64> = self
            .active
            .iter()
            .filter(|&(_, &p)| p == pop)
            .map(|(&id, _)| id)
            .collect();
        for id in &doomed {
            self.active.remove(id);
            // Only errs on an unknown PoP, which `release`'s debug_assert
            // twin catches in debug builds.
            let _ = admission.release(pop);
        }
        self.torn_down += doomed.len() as u64;
        doomed.len() as u64
    }
}
