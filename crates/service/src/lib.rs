//! Service-plane orchestration: live call churn over the relay network.
//!
//! The measurement crates answer "what does one flow see?"; this crate
//! answers the operator's question — what does the *service* look like
//! while tens of thousands of calls arrive, hold and hang up around the
//! clock? It composes the existing layers into a live call plane:
//!
//! * [`EndpointTable`] — population-weighted caller/callee sampling over
//!   routable last-mile prefixes (`vns-geo` metro populations);
//! * [`ArrivalProcess`](vns_netsim::ArrivalProcess) — Poisson arrivals
//!   rate-shaped by the diurnal demand curve, one RNG stream per window;
//! * [`AdmissionController`] — per-PoP concurrent-session capacity with
//!   spill-to-nearest and explicit rejection accounting;
//! * [`PathTable`] — epoch-cached resolved paths (anycast landings, VNS
//!   tails, dedicated L2 splice legs for spilled calls);
//! * [`SessionManager`] — the deterministic arrival/departure event loop;
//! * [`Orchestrator`] — per-window passes: sequential bookkeeping, then
//!   embarrassingly parallel per-call measurement (SIP setup, sampled HD
//!   QoS bursts, BYE teardown), folded into windowed
//!   [`ServiceTelemetry`] percentile sketches.
//!
//! Everything is keyed by call id and window index, never by thread or
//! call order, so campaign artefacts are byte-identical at any `--threads`.

pub mod admission;
pub mod endpoints;
pub mod error;
pub mod lifecycle;
pub mod orchestrator;
pub mod paths;
pub mod telemetry;

pub use admission::{Admission, AdmissionController};
pub use endpoints::{Endpoint, EndpointTable};
pub use error::ServiceError;
pub use lifecycle::{CallOutcome, CallRecord, ServiceEvent, SessionManager};
pub use orchestrator::{Orchestrator, ServiceConfig, ServiceEnv};
pub use paths::PathTable;
pub use telemetry::{ServiceTelemetry, WindowReport};
