//! Population-weighted call endpoints.
//!
//! Callers and callees are hosts in last-mile prefixes, sampled in
//! proportion to the metro population of the prefix's ground-truth city
//! (`vns-geo` populations): conferencing demand follows where users live.
//! Prefixes whose hosts cannot reach the anycast relay at all are dropped
//! at build time, so every sampled caller has a defined landing PoP.

use rand::rngs::SmallRng;
use rand::Rng;
use vns_core::Vns;
use vns_geo::{metro_population_k, CityId};
use vns_topo::Internet;

/// One usable call endpoint: a host in a routable last-mile prefix.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Representative host address in the prefix.
    pub ip: u32,
    /// Ground-truth city of the prefix.
    pub city: CityId,
}

/// The sampling table over all usable endpoints.
#[derive(Debug)]
pub struct EndpointTable {
    endpoints: Vec<Endpoint>,
    /// Exclusive cumulative population weights; `cum[i]` is the total
    /// weight of endpoints `0..=i`.
    cum: Vec<u64>,
}

impl EndpointTable {
    /// Builds the table from every last-mile prefix whose hosts can reach
    /// the anycast relay address.
    pub fn build(internet: &Internet, vns: &Vns) -> Self {
        let mut endpoints = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for p in internet.prefixes().filter(|p| p.last_mile) {
            let ip = p.prefix.first_host();
            if vns.anycast_landing(internet, ip).is_err() {
                continue;
            }
            total += u64::from(metro_population_k(p.city)).max(1);
            endpoints.push(Endpoint { ip, city: p.city });
            cum.push(total);
        }
        assert!(!endpoints.is_empty(), "no routable last-mile endpoints");
        Self { endpoints, cum }
    }

    /// Number of usable endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the table is empty (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Endpoint by index.
    pub fn endpoint(&self, idx: usize) -> Endpoint {
        self.endpoints[idx]
    }

    /// Total sampling weight (sum of populations, thousands; 0 only for
    /// an empty table, which a successful build never produces).
    pub fn total_weight(&self) -> u64 {
        debug_assert!(!self.cum.is_empty(), "total_weight on an empty table");
        self.cum.last().copied().unwrap_or(0)
    }

    /// Samples one endpoint index, population-weighted.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let x = rng.gen_range(0..self.total_weight());
        self.cum.partition_point(|&c| c <= x)
    }

    /// Samples a caller/callee pair in distinct prefixes (the callee
    /// re-homes to the next endpoint when the draw collides — a
    /// deterministic fix-up, not a rejection loop).
    pub fn sample_pair(&self, rng: &mut SmallRng) -> (usize, usize) {
        let a = self.sample(rng);
        let mut b = self.sample(rng);
        if a == b {
            b = (b + 1) % self.endpoints.len();
        }
        (a, b)
    }
}
