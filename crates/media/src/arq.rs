//! Deadline-bounded selective retransmission.
//!
//! The paper's related-work section: "selective retransmission of packets
//! over the lossy hop can be employed, given that the RTT is not high. But,
//! it requires the presence of video relay server close to end users" —
//! which is precisely what VNS media relays are. This module models that
//! mechanism: a relay near the receiver detects a missing packet after one
//! hop-RTT and retransmits it, as long as the recovered copy would still
//! arrive inside the playout deadline.

use vns_netsim::{Dur, PathChannel, PathOutcome, SimTime};

/// Outcome of sending one packet with retransmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqOutcome {
    /// Did a copy arrive within the deadline?
    pub delivered: bool,
    /// Arrival time of the first successful copy.
    pub arrival: Option<SimTime>,
    /// Retransmissions used.
    pub retries: u32,
}

/// Sends a packet at `sent` over `channel`; on loss, retransmits after a
/// detection delay of one channel base RTT, up to `max_retries` times, as
/// long as the copy can still arrive before `sent + deadline`.
pub fn send_with_arq(
    channel: &mut PathChannel,
    sent: SimTime,
    deadline: Dur,
    max_retries: u32,
) -> ArqOutcome {
    let hop_rtt = Dur::from_millis_f64(2.0 * channel.base_delay_ms());
    let latest = sent + deadline;
    let mut attempt_time = sent;
    for retry in 0..=max_retries {
        match channel.send(attempt_time) {
            PathOutcome::Delivered { arrival, .. } => {
                if arrival <= latest {
                    return ArqOutcome {
                        delivered: true,
                        arrival: Some(arrival),
                        retries: retry,
                    };
                }
                // Arrived, but too late to play out.
                return ArqOutcome {
                    delivered: false,
                    arrival: Some(arrival),
                    retries: retry,
                };
            }
            PathOutcome::Lost { .. } => {
                // Loss detected one RTT later; retransmit immediately.
                attempt_time += hop_rtt;
                if attempt_time > latest {
                    break;
                }
            }
        }
    }
    ArqOutcome {
        delivered: false,
        arrival: None,
        retries: max_retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns_netsim::{HopChannel, LossModel, LossProcess};

    fn channel(base_ms: f64, p: f64, seed: u64) -> PathChannel {
        let mut hop = HopChannel::ideal(base_ms);
        hop.loss = LossProcess::new(LossModel::Bernoulli { p }, SmallRng::seed_from_u64(seed));
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(seed + 1))
    }

    #[test]
    fn clean_channel_no_retries() {
        let mut ch = channel(10.0, 0.0, 1);
        let out = send_with_arq(&mut ch, SimTime::EPOCH, Dur::from_millis(200), 3);
        assert!(out.delivered);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn short_hop_recovers_losses() {
        // 10 ms hop, 200 ms budget: plenty of retransmission room.
        let mut ch = channel(10.0, 0.3, 2);
        let mut delivered = 0;
        let mut retried = 0;
        for i in 0..1000u64 {
            let t = SimTime::EPOCH + Dur::from_millis(i * 30);
            let out = send_with_arq(&mut ch, t, Dur::from_millis(200), 3);
            if out.delivered {
                delivered += 1;
            }
            if out.retries > 0 {
                retried += 1;
            }
        }
        assert!(delivered > 980, "delivered {delivered}");
        assert!(retried > 150, "retried {retried}");
    }

    #[test]
    fn long_hop_cannot_recover() {
        // 150 ms hop: one RTT of detection (300 ms) blows a 200 ms budget.
        let mut ch = channel(150.0, 1.0, 3);
        let out = send_with_arq(&mut ch, SimTime::EPOCH, Dur::from_millis(200), 3);
        assert!(!out.delivered);
    }

    #[test]
    fn respects_retry_cap() {
        let mut ch = channel(1.0, 1.0, 4);
        let out = send_with_arq(&mut ch, SimTime::EPOCH, Dur::from_secs(10), 2);
        assert!(!out.delivered);
        assert_eq!(out.retries, 2);
    }
}
