//! XOR-parity forward error correction.
//!
//! The paper's related-work section notes that "random losses can be
//! mitigated by employing forward error correction (FEC), but FEC performs
//! poorly when loss is very high or bursty" — the ablation bench
//! demonstrates exactly that crossover using this module.
//!
//! Model: every group of `k` media packets is followed by one XOR parity
//! packet. A group survives if at most one of its `k+1` packets (data or
//! parity) is lost; two or more losses in a group are unrecoverable. This
//! is the classic single-parity interleaved scheme real conferencing
//! systems ship.

/// FEC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecConfig {
    /// Media packets per parity group.
    pub k: usize,
}

impl FecConfig {
    /// A common 1-parity-per-10 configuration (10% overhead).
    pub const K10: FecConfig = FecConfig { k: 10 };

    /// Bandwidth overhead fraction.
    pub fn overhead(&self) -> f64 {
        1.0 / self.k as f64
    }

    /// Applies FEC recovery to a per-packet delivery vector (`true` =
    /// arrived). `parity_arrived[g]` says whether group `g`'s parity packet
    /// survived (callers sample it through the same channel). Returns the
    /// post-recovery delivery vector.
    pub fn recover(&self, delivered: &[bool], parity_arrived: &[bool]) -> Vec<bool> {
        let mut out = delivered.to_vec();
        for (g, chunk) in delivered.chunks(self.k).enumerate() {
            let lost: Vec<usize> = chunk
                .iter()
                .enumerate()
                .filter(|(_, d)| !**d)
                .map(|(i, _)| i)
                .collect();
            let parity_ok = parity_arrived.get(g).copied().unwrap_or(false);
            if lost.len() == 1 && parity_ok {
                out[g * self.k + lost[0]] = true;
            }
        }
        out
    }

    /// Residual loss fraction after recovery.
    pub fn residual_loss(&self, delivered: &[bool], parity_arrived: &[bool]) -> f64 {
        if delivered.is_empty() {
            return 0.0;
        }
        let recovered = self.recover(delivered, parity_arrived);
        recovered.iter().filter(|d| !**d).count() as f64 / recovered.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_loss_per_group_recovered() {
        let cfg = FecConfig { k: 4 };
        let delivered = vec![true, false, true, true, true, true, true, true];
        let parity = vec![true, true];
        let out = cfg.recover(&delivered, &parity);
        assert!(out.iter().all(|d| *d));
    }

    #[test]
    fn double_loss_unrecoverable() {
        let cfg = FecConfig { k: 4 };
        let delivered = vec![false, false, true, true];
        let out = cfg.recover(&delivered, &[true]);
        assert_eq!(out, vec![false, false, true, true]);
    }

    #[test]
    fn lost_parity_blocks_recovery() {
        let cfg = FecConfig { k: 4 };
        let delivered = vec![false, true, true, true];
        let out = cfg.recover(&delivered, &[false]);
        assert!(!out[0]);
    }

    #[test]
    fn residual_loss_math() {
        let cfg = FecConfig { k: 2 };
        // Groups: [ok, lost] recoverable, [lost, lost] not.
        let delivered = vec![true, false, false, false];
        let r = cfg.residual_loss(&delivered, &[true, true]);
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(cfg.residual_loss(&[], &[]), 0.0);
    }

    #[test]
    fn fec_good_for_random_bad_for_bursty() {
        // Same overall loss count: scattered vs one burst.
        let cfg = FecConfig::K10;
        let n = 100;
        let mut random = vec![true; n];
        for i in [5, 25, 45, 65, 85] {
            random[i] = false;
        }
        let mut bursty = vec![true; n];
        for b in &mut bursty[40..45] {
            *b = false;
        }
        let parity = vec![true; n / cfg.k];
        let r_random = cfg.residual_loss(&random, &parity);
        let r_bursty = cfg.residual_loss(&bursty, &parity);
        assert_eq!(r_random, 0.0, "isolated losses all recovered");
        assert!(r_bursty > 0.03, "burst survives FEC: {r_bursty}");
    }

    #[test]
    fn overhead() {
        assert!((FecConfig::K10.overhead() - 0.1).abs() < 1e-12);
    }
}
