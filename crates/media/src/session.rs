//! The measuring client ↔ echo server session.
//!
//! Mirrors the paper's Sec 5.1 methodology: a client streams a pre-recorded
//! HD conference to an echo server for two minutes; the server streams every
//! received packet straight back; the client logs loss, per-5-second-slot
//! loss counts and RFC 3550 jitter.

use vns_netsim::{Dur, PathChannel, SimTime, BATCH_LEN};

use crate::rtp::JitterEstimator;
use crate::stream::{PacketFeed, ScheduledPacket};

/// Session parameters.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Slot width for the loss-spread analysis (paper: 5 s).
    pub slot: Dur,
    /// Session duration (paper: 2 min → 24 slots).
    pub duration: Dur,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            slot: Dur::from_secs(5),
            duration: Dur::from_secs(120),
        }
    }
}

/// What one echo session measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Packets the client sent.
    pub sent: u32,
    /// Packets that reached the echo server (outgoing leg).
    pub delivered_out: u32,
    /// Packets that made it all the way back to the client.
    pub returned: u32,
    /// Lost packets per slot, counted on the *round trip* and indexed by
    /// the original send time (what the paper's Fig 10 instrumentation
    /// records).
    pub slot_losses: Vec<u32>,
    /// Final RFC 3550 jitter estimate on the returned stream, ms.
    pub jitter_ms: f64,
    /// Peak smoothed jitter during the session, ms.
    pub jitter_max_ms: f64,
    /// Minimum observed round-trip delay, ms (`None` if nothing returned).
    pub min_rtt_ms: Option<f64>,
}

impl SessionReport {
    /// Outgoing-leg loss percentage (0–100).
    pub fn out_loss_pct(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        100.0 * (self.sent - self.delivered_out) as f64 / self.sent as f64
    }

    /// Round-trip loss percentage (0–100) — the headline number of Fig 9.
    pub fn rt_loss_pct(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        100.0 * (self.sent - self.returned) as f64 / self.sent as f64
    }

    /// Number of slots with at least one lost packet (x-axis of Fig 10).
    pub fn lossy_slots(&self) -> usize {
        self.slot_losses.iter().filter(|&&c| c > 0).count()
    }
}

/// Runs one echo session: every scheduled packet goes out on `forward`;
/// on delivery the echo server immediately returns it on `reverse`.
///
/// `packets` is any packet source in send order — a `&PacketSchedule` or,
/// preferably, [`crate::VideoSpec::packets`]'s lazy iterator, which avoids
/// materialising the ~51k-packet Vec per 2-minute 1080p session. The first
/// packet's send time anchors the slot grid.
pub fn run_echo_session<I>(
    packets: I,
    config: &SessionConfig,
    forward: &mut PathChannel,
    reverse: &mut PathChannel,
) -> SessionReport
where
    I: IntoIterator<Item = ScheduledPacket>,
    I::IntoIter: PacketFeed,
{
    let n_slots = config.duration.div_count(config.slot).max(1) as usize;
    let mut slot_losses = vec![0u32; n_slots];
    let mut sent = 0u32;
    let mut delivered_out = 0u32;
    let mut returned = 0u32;
    let mut jitter = JitterEstimator::new();
    let mut min_rtt_ns = u64::MAX;
    let mut start: Option<SimTime> = None;

    // Both legs run the columnar batch engine's live-set form: the feed
    // fills `fwd.times` [`BATCH_LEN`] packets at a time (the session only
    // consumes send instants), one forward `send_batch_live` leaves the
    // delivered arrival clocks in `fwd.now`, and that column is fed
    // straight back as the reverse leg's input — no per-packet outcome
    // enums, no echo-time re-materialisation. Losses come back as sparse
    // packed columns, so slot attribution costs one division per *lost*
    // packet instead of a cursor walk over every packet. Scratch blocks
    // come from the per-thread arena pool, so a session allocates nothing
    // for its batching.
    let mut packets = packets.into_iter();
    let mut fwd = vns_netsim::scratch();
    let mut rev = vns_netsim::scratch();
    let slot_ns = config.slot.as_nanos().max(1);
    let mut start_ns = 0u64;
    loop {
        fwd.clear();
        if packets.fill_times(&mut fwd.times, BATCH_LEN) == 0 {
            break;
        }
        if start.is_none() {
            start = Some(fwd.times[0]);
            start_ns = fwd.times[0].as_nanos();
        }
        sent += fwd.times.len() as u32;
        let k = forward.send_batch_live(&mut fwd);
        delivered_out += k as u32;
        for &pk in fwd.lost.iter() {
            let t = fwd.times[(pk >> 8) as usize].as_nanos();
            let s = (((t - start_ns) / slot_ns) as usize).min(n_slots - 1);
            slot_losses[s] += 1;
        }
        rev.clear();
        let m = reverse.send_batch_live_ns(&fwd.now[..k], &mut rev);
        returned += m as u32;
        // A reverse-leg index addresses the forward delivered set; chase
        // it through `fwd.idx` (when non-identity) to the original packet.
        for &pk in rev.lost.iter() {
            let r = (pk >> 8) as usize;
            let orig = if fwd.idx.is_empty() {
                r
            } else {
                fwd.idx[r] as usize
            };
            let t = fwd.times[orig].as_nanos();
            let s = (((t - start_ns) / slot_ns) as usize).min(n_slots - 1);
            slot_losses[s] += 1;
        }
        if fwd.idx.is_empty() && rev.idx.is_empty() {
            // Lossless chunk on both legs: delivered slot j is packet j.
            for (j, &back_ns) in rev.now.iter().take(m).enumerate() {
                let rtt_ns = back_ns - fwd.times[j].as_nanos();
                jitter.on_transit_ns(rtt_ns);
                min_rtt_ns = min_rtt_ns.min(rtt_ns);
            }
        } else {
            for (j, &back_ns) in rev.now.iter().take(m).enumerate() {
                let r = if rev.idx.is_empty() {
                    j
                } else {
                    rev.idx[j] as usize
                };
                let orig = if fwd.idx.is_empty() {
                    r
                } else {
                    fwd.idx[r] as usize
                };
                let rtt_ns = back_ns - fwd.times[orig].as_nanos();
                jitter.on_transit_ns(rtt_ns);
                min_rtt_ns = min_rtt_ns.min(rtt_ns);
            }
        }
    }

    SessionReport {
        sent,
        delivered_out,
        returned,
        slot_losses,
        jitter_ms: jitter.jitter_ms(),
        jitter_max_ms: jitter.max_ms(),
        min_rtt_ms: (min_rtt_ns != u64::MAX).then_some(min_rtt_ns as f64 * 1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{PacketSchedule, VideoSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns_netsim::{HopChannel, LossModel, LossProcess};

    fn ideal_channel(ms: f64, seed: u64) -> PathChannel {
        PathChannel::new(vec![HopChannel::ideal(ms)], SmallRng::seed_from_u64(seed))
    }

    fn lossy_channel(p: f64, seed: u64) -> PathChannel {
        let mut hop = HopChannel::ideal(5.0);
        hop.loss = LossProcess::new(LossModel::Bernoulli { p }, SmallRng::seed_from_u64(seed));
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(seed + 1))
    }

    fn schedule() -> PacketSchedule {
        let mut rng = SmallRng::seed_from_u64(3);
        VideoSpec::HD1080.schedule(SimTime::EPOCH, Dur::from_secs(120), &mut rng)
    }

    #[test]
    fn clean_path_zero_loss() {
        let sched = schedule();
        let cfg = SessionConfig::default();
        let mut fwd = ideal_channel(40.0, 1);
        let mut rev = ideal_channel(40.0, 2);
        let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
        assert_eq!(r.sent as usize, sched.len());
        assert_eq!(r.returned, r.sent);
        assert_eq!(r.rt_loss_pct(), 0.0);
        assert_eq!(r.lossy_slots(), 0);
        assert_eq!(r.slot_losses.len(), 24);
        let rtt = r.min_rtt_ms.unwrap();
        assert!((80.0..82.0).contains(&rtt), "rtt {rtt}");
        assert!(r.jitter_ms < 1.0);
    }

    #[test]
    fn loss_rate_measured() {
        let sched = schedule();
        let cfg = SessionConfig::default();
        let mut fwd = lossy_channel(0.01, 10);
        let mut rev = ideal_channel(5.0, 11);
        let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
        assert!((r.out_loss_pct() - 1.0).abs() < 0.4, "{}", r.out_loss_pct());
        assert_eq!(r.rt_loss_pct(), r.out_loss_pct());
        // 1% random loss over 2 minutes touches most 5 s slots.
        assert!(r.lossy_slots() >= 20, "slots {}", r.lossy_slots());
    }

    #[test]
    fn reverse_loss_counts_in_round_trip_only() {
        let sched = schedule();
        let cfg = SessionConfig::default();
        let mut fwd = ideal_channel(5.0, 20);
        let mut rev = lossy_channel(0.02, 21);
        let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
        assert_eq!(r.out_loss_pct(), 0.0);
        assert!(r.rt_loss_pct() > 1.0);
    }

    #[test]
    fn burst_concentrates_in_few_slots() {
        // A blackout window hits a contiguous run of packets: expect large
        // loss in few slots (Fig 10 upper-left outlier shape).
        use vns_netsim::BlackoutSchedule;
        let sched = schedule();
        let cfg = SessionConfig::default();
        let mut hop = HopChannel::ideal(5.0);
        let w0 = SimTime::EPOCH + Dur::from_secs(30);
        hop.blackouts = BlackoutSchedule::new(vec![(w0, w0 + Dur::from_secs(6))]);
        let mut fwd = PathChannel::new(vec![hop], SmallRng::seed_from_u64(30));
        let mut rev = ideal_channel(5.0, 31);
        let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
        assert!(r.rt_loss_pct() > 3.0, "loss {}", r.rt_loss_pct());
        assert!(r.lossy_slots() <= 3, "slots {}", r.lossy_slots());
    }

    #[test]
    fn streaming_session_matches_materialised() {
        // Driving the session off the lazy packet iterator must reproduce
        // the materialised-schedule run exactly (same RNG consumption).
        let cfg = SessionConfig::default();
        let run_lazy = || {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut fwd = lossy_channel(0.01, 50);
            let mut rev = lossy_channel(0.01, 51);
            let pkts = VideoSpec::HD1080.packets(SimTime::EPOCH, Dur::from_secs(120), &mut rng);
            run_echo_session(pkts, &cfg, &mut fwd, &mut rev)
        };
        let run_vec = || {
            let sched = schedule();
            let mut fwd = lossy_channel(0.01, 50);
            let mut rev = lossy_channel(0.01, 51);
            run_echo_session(&sched, &cfg, &mut fwd, &mut rev)
        };
        let (a, b) = (run_lazy(), run_vec());
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.returned, b.returned);
        assert_eq!(a.slot_losses, b.slot_losses);
        assert_eq!(a.jitter_ms, b.jitter_ms);
        assert_eq!(a.min_rtt_ms, b.min_rtt_ms);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let sched = schedule();
            let cfg = SessionConfig::default();
            let mut fwd = lossy_channel(0.005, 40);
            let mut rev = lossy_channel(0.005, 41);
            let r = run_echo_session(&sched, &cfg, &mut fwd, &mut rev);
            (r.sent, r.returned, r.slot_losses.clone())
        };
        assert_eq!(run(), run());
    }
}
