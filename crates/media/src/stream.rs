//! Video stream models and RTP packet schedules.
//!
//! The paper streams "actual recordings of 720p and 1080p HD video
//! conferences … captured on industry-standard professional video
//! equipment". We model such a recording statistically: constant frame
//! cadence, an I/P GOP structure with large I-frames, lognormal-ish size
//! variation around the target bitrate, and packetisation into MTU-sized
//! RTP packets sent back-to-back per frame.

use rand::rngs::SmallRng;
use rand::Rng;
use vns_netsim::{Dur, SendAt, SimTime};

/// A video stream class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSpec {
    /// Human name (`"1080p"`).
    pub name: &'static str,
    /// Target video bitrate, bits/s.
    pub bitrate_bps: f64,
    /// Frames per second.
    pub fps: f64,
    /// Frames per GOP (one leading I-frame each).
    pub gop: usize,
    /// I-frame size relative to a P-frame.
    pub i_frame_ratio: f64,
    /// RTP payload bytes per packet.
    pub mtu_payload: usize,
}

impl VideoSpec {
    /// 1080p HD conference stream (~4 Mb/s).
    pub const HD1080: VideoSpec = VideoSpec {
        name: "1080p",
        bitrate_bps: 4.0e6,
        fps: 30.0,
        gop: 30,
        i_frame_ratio: 5.0,
        mtu_payload: 1200,
    };

    /// 720p HD conference stream (~2.2 Mb/s) — fewer, therefore
    /// jitter-sensitive, packets (Sec 5.1.1).
    pub const HD720: VideoSpec = VideoSpec {
        name: "720p",
        bitrate_bps: 2.2e6,
        fps: 30.0,
        gop: 30,
        i_frame_ratio: 5.0,
        mtu_payload: 1200,
    };

    /// Mean P-frame size in bytes, derived from the bitrate and GOP
    /// structure.
    pub fn mean_p_frame_bytes(&self) -> f64 {
        // Per GOP: 1 I-frame (= ratio * p) + (gop-1) P-frames.
        let frames_per_sec = self.fps;
        let bytes_per_sec = self.bitrate_bps / 8.0;
        let bytes_per_frame_avg = bytes_per_sec / frames_per_sec;
        let weight = (self.i_frame_ratio + (self.gop as f64 - 1.0)) / self.gop as f64;
        bytes_per_frame_avg / weight
    }

    /// Expected packets per second (approximate).
    pub fn approx_packets_per_sec(&self) -> f64 {
        (self.bitrate_bps / 8.0) / self.mtu_payload as f64
    }

    /// Generates the packet send schedule for a session of `duration`
    /// starting at `start`. Frame sizes vary ±20% around their class mean;
    /// packets of one frame leave back-to-back at a 100 µs pacing.
    ///
    /// This materialises [`VideoSpec::packets`] into a `Vec` — a 2-minute
    /// 1080p session is ~51k packets (~1.6 MB). Session runners should
    /// prefer the lazy iterator; the materialised form remains for call
    /// sites that index or re-walk the schedule.
    pub fn schedule(&self, start: SimTime, duration: Dur, rng: &mut SmallRng) -> PacketSchedule {
        PacketSchedule {
            packets: self.packets(start, duration, rng).collect(),
        }
    }

    /// Lazily yields the same packet sequence as [`VideoSpec::schedule`],
    /// in send order, without materialising it. Draws exactly one frame-size
    /// variate per frame from `rng`, in frame order — identical RNG
    /// consumption to `schedule`, so the two are interchangeable under a
    /// shared seed.
    pub fn packets<'r>(
        &self,
        start: SimTime,
        duration: Dur,
        rng: &'r mut SmallRng,
    ) -> PacketIter<'r> {
        let frame_interval = Dur::from_millis_f64(1000.0 / self.fps);
        PacketIter {
            spec: *self,
            rng,
            pacing: Dur::from_micros(100),
            frame_interval,
            p_bytes: self.mean_p_frame_bytes(),
            n_frames: duration.div_count(frame_interval) as usize,
            next_frame: 0,
            frame_start: start,
            frame_size: 0,
            n_pkts: 0,
            k: 0,
        }
    }
}

/// Batched source of packet send instants — the one packet attribute the
/// echo session consumes. Implemented natively by [`PacketIter`] (which
/// fills a whole frame per inner loop, skipping per-packet struct
/// assembly) and generically by the materialised schedule's iterator.
pub trait PacketFeed {
    /// Appends up to `cap` send instants to `out` in send order. Returns
    /// the number appended; `0` means the source is exhausted.
    fn fill_times(&mut self, out: &mut Vec<SimTime>, cap: usize) -> usize;
}

impl PacketFeed for PacketIter<'_> {
    fn fill_times(&mut self, out: &mut Vec<SimTime>, cap: usize) -> usize {
        let mut left = cap;
        while left > 0 {
            while self.k >= self.n_pkts {
                if self.next_frame >= self.n_frames {
                    return cap - left;
                }
                if self.next_frame > 0 {
                    self.frame_start += self.frame_interval;
                }
                let base = if self.next_frame.is_multiple_of(self.spec.gop) {
                    self.p_bytes * self.spec.i_frame_ratio
                } else {
                    self.p_bytes
                };
                self.frame_size = (base * self.rng.gen_range(0.8..1.2)).max(64.0) as usize;
                self.n_pkts = self.frame_size.div_ceil(self.spec.mtu_payload);
                self.k = 0;
                self.next_frame += 1;
            }
            let take = (self.n_pkts - self.k).min(left);
            // Packets of one frame leave back-to-back at `pacing`; emit the
            // run with an incremental add (identical ns arithmetic to
            // `frame_start + pacing.mul(k)`).
            let mut t = self.frame_start + self.pacing.mul(self.k as u64);
            for _ in 0..take {
                out.push(t);
                t += self.pacing;
            }
            self.k += take;
            left -= take;
        }
        cap
    }
}

impl PacketFeed for std::iter::Copied<std::slice::Iter<'_, ScheduledPacket>> {
    fn fill_times(&mut self, out: &mut Vec<SimTime>, cap: usize) -> usize {
        let before = out.len();
        out.extend(self.by_ref().take(cap).map(|p| p.sent));
        out.len() - before
    }
}

/// Lazy packet generator for one stream (see [`VideoSpec::packets`]).
#[derive(Debug)]
pub struct PacketIter<'r> {
    spec: VideoSpec,
    rng: &'r mut SmallRng,
    pacing: Dur,
    frame_interval: Dur,
    p_bytes: f64,
    n_frames: usize,
    /// Next frame to start (frames `0..next_frame` are begun or done).
    next_frame: usize,
    /// Send instant of the current frame's first packet.
    frame_start: SimTime,
    frame_size: usize,
    n_pkts: usize,
    /// Next packet index within the current frame.
    k: usize,
}

impl Iterator for PacketIter<'_> {
    type Item = ScheduledPacket;

    fn next(&mut self) -> Option<ScheduledPacket> {
        while self.k >= self.n_pkts {
            if self.next_frame >= self.n_frames {
                return None;
            }
            if self.next_frame > 0 {
                self.frame_start += self.frame_interval;
            }
            let base = if self.next_frame.is_multiple_of(self.spec.gop) {
                self.p_bytes * self.spec.i_frame_ratio
            } else {
                self.p_bytes
            };
            self.frame_size = (base * self.rng.gen_range(0.8..1.2)).max(64.0) as usize;
            self.n_pkts = self.frame_size.div_ceil(self.spec.mtu_payload);
            self.k = 0;
            self.next_frame += 1;
        }
        let k = self.k;
        self.k += 1;
        let payload = if k + 1 == self.n_pkts {
            self.frame_size - self.spec.mtu_payload * (self.n_pkts - 1)
        } else {
            self.spec.mtu_payload
        };
        Some(ScheduledPacket {
            sent: self.frame_start + self.pacing.mul(k as u64),
            payload_bytes: payload,
            frame: (self.next_frame - 1) as u32,
        })
    }
}

/// One packet in a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledPacket {
    /// Send instant.
    pub sent: SimTime,
    /// Payload bytes.
    pub payload_bytes: usize,
    /// Frame index the packet belongs to.
    pub frame: u32,
}

impl SendAt for ScheduledPacket {
    fn send_at(&self) -> SimTime {
        self.sent
    }
}

/// The full send schedule of one stream.
#[derive(Debug, Clone)]
pub struct PacketSchedule {
    /// Packets in send order.
    pub packets: Vec<ScheduledPacket>,
}

impl PacketSchedule {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.payload_bytes as u64).sum()
    }
}

impl<'a> IntoIterator for &'a PacketSchedule {
    type Item = ScheduledPacket;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ScheduledPacket>>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn bitrate_roughly_met() {
        let spec = VideoSpec::HD1080;
        let sched = spec.schedule(SimTime::EPOCH, Dur::from_secs(120), &mut rng());
        let bits = sched.total_bytes() as f64 * 8.0;
        let rate = bits / 120.0;
        assert!(
            (rate - spec.bitrate_bps).abs() / spec.bitrate_bps < 0.1,
            "rate {rate}"
        );
    }

    #[test]
    fn packets_in_time_order_and_window() {
        let spec = VideoSpec::HD720;
        let start = SimTime::EPOCH + Dur::from_hours(5);
        let sched = spec.schedule(start, Dur::from_secs(10), &mut rng());
        assert!(!sched.is_empty());
        for w in sched.packets.windows(2) {
            assert!(w[0].sent <= w[1].sent);
        }
        assert!(sched.packets.first().unwrap().sent >= start);
        assert!(sched.packets.last().unwrap().sent < start + Dur::from_secs(10));
    }

    #[test]
    fn i_frames_bigger() {
        let spec = VideoSpec::HD1080;
        let sched = spec.schedule(SimTime::EPOCH, Dur::from_secs(4), &mut rng());
        let frame_pkts = |f: u32| sched.packets.iter().filter(|p| p.frame == f).count();
        // Frame 0 is an I-frame, frame 1 a P-frame.
        assert!(frame_pkts(0) >= 3 * frame_pkts(1));
    }

    #[test]
    fn packet_counts_by_definition() {
        // 720p streams have fewer packets than 1080p over the same window.
        let s720 = VideoSpec::HD720.schedule(SimTime::EPOCH, Dur::from_secs(30), &mut rng());
        let s1080 = VideoSpec::HD1080.schedule(SimTime::EPOCH, Dur::from_secs(30), &mut rng());
        assert!(s720.len() < s1080.len());
    }

    #[test]
    fn lazy_iterator_matches_materialised_schedule() {
        for spec in [VideoSpec::HD720, VideoSpec::HD1080] {
            let start = SimTime::EPOCH + Dur::from_hours(7);
            let dur = Dur::from_secs(20);
            let sched = spec.schedule(start, dur, &mut rng());
            let lazy: Vec<ScheduledPacket> = spec.packets(start, dur, &mut rng()).collect();
            assert_eq!(sched.packets, lazy, "{}", spec.name);
        }
    }

    #[test]
    fn mean_p_frame_consistent() {
        let spec = VideoSpec::HD1080;
        let p = spec.mean_p_frame_bytes();
        let per_gop = p * spec.i_frame_ratio + p * (spec.gop as f64 - 1.0);
        let rate = per_gop * 8.0 * (spec.fps / spec.gop as f64);
        assert!((rate - spec.bitrate_bps).abs() / spec.bitrate_bps < 1e-9);
    }
}
