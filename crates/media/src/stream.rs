//! Video stream models and RTP packet schedules.
//!
//! The paper streams "actual recordings of 720p and 1080p HD video
//! conferences … captured on industry-standard professional video
//! equipment". We model such a recording statistically: constant frame
//! cadence, an I/P GOP structure with large I-frames, lognormal-ish size
//! variation around the target bitrate, and packetisation into MTU-sized
//! RTP packets sent back-to-back per frame.

use rand::rngs::SmallRng;
use rand::Rng;
use vns_netsim::{Dur, SimTime};

/// A video stream class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSpec {
    /// Human name (`"1080p"`).
    pub name: &'static str,
    /// Target video bitrate, bits/s.
    pub bitrate_bps: f64,
    /// Frames per second.
    pub fps: f64,
    /// Frames per GOP (one leading I-frame each).
    pub gop: usize,
    /// I-frame size relative to a P-frame.
    pub i_frame_ratio: f64,
    /// RTP payload bytes per packet.
    pub mtu_payload: usize,
}

impl VideoSpec {
    /// 1080p HD conference stream (~4 Mb/s).
    pub const HD1080: VideoSpec = VideoSpec {
        name: "1080p",
        bitrate_bps: 4.0e6,
        fps: 30.0,
        gop: 30,
        i_frame_ratio: 5.0,
        mtu_payload: 1200,
    };

    /// 720p HD conference stream (~2.2 Mb/s) — fewer, therefore
    /// jitter-sensitive, packets (Sec 5.1.1).
    pub const HD720: VideoSpec = VideoSpec {
        name: "720p",
        bitrate_bps: 2.2e6,
        fps: 30.0,
        gop: 30,
        i_frame_ratio: 5.0,
        mtu_payload: 1200,
    };

    /// Mean P-frame size in bytes, derived from the bitrate and GOP
    /// structure.
    pub fn mean_p_frame_bytes(&self) -> f64 {
        // Per GOP: 1 I-frame (= ratio * p) + (gop-1) P-frames.
        let frames_per_sec = self.fps;
        let bytes_per_sec = self.bitrate_bps / 8.0;
        let bytes_per_frame_avg = bytes_per_sec / frames_per_sec;
        let weight = (self.i_frame_ratio + (self.gop as f64 - 1.0)) / self.gop as f64;
        bytes_per_frame_avg / weight
    }

    /// Expected packets per second (approximate).
    pub fn approx_packets_per_sec(&self) -> f64 {
        (self.bitrate_bps / 8.0) / self.mtu_payload as f64
    }

    /// Generates the packet send schedule for a session of `duration`
    /// starting at `start`. Frame sizes vary ±20% around their class mean;
    /// packets of one frame leave back-to-back at a 100 µs pacing.
    pub fn schedule(&self, start: SimTime, duration: Dur, rng: &mut SmallRng) -> PacketSchedule {
        let frame_interval = Dur::from_millis_f64(1000.0 / self.fps);
        let n_frames = duration.div_count(frame_interval) as usize;
        let p_bytes = self.mean_p_frame_bytes();
        let mut packets = Vec::with_capacity(
            (duration.as_secs_f64() * self.approx_packets_per_sec() * 1.1) as usize,
        );
        let pacing = Dur::from_micros(100);
        let mut t = start;
        for f in 0..n_frames {
            let base = if f % self.gop == 0 {
                p_bytes * self.i_frame_ratio
            } else {
                p_bytes
            };
            let size = (base * rng.gen_range(0.8..1.2)).max(64.0) as usize;
            let n_pkts = size.div_ceil(self.mtu_payload);
            for k in 0..n_pkts {
                let sent = t + pacing.mul(k as u64);
                let payload = if k + 1 == n_pkts {
                    size - self.mtu_payload * (n_pkts - 1)
                } else {
                    self.mtu_payload
                };
                packets.push(ScheduledPacket {
                    sent,
                    payload_bytes: payload,
                    frame: f as u32,
                });
            }
            t += frame_interval;
        }
        PacketSchedule { packets }
    }
}

/// One packet in a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledPacket {
    /// Send instant.
    pub sent: SimTime,
    /// Payload bytes.
    pub payload_bytes: usize,
    /// Frame index the packet belongs to.
    pub frame: u32,
}

/// The full send schedule of one stream.
#[derive(Debug, Clone)]
pub struct PacketSchedule {
    /// Packets in send order.
    pub packets: Vec<ScheduledPacket>,
}

impl PacketSchedule {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.payload_bytes as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn bitrate_roughly_met() {
        let spec = VideoSpec::HD1080;
        let sched = spec.schedule(SimTime::EPOCH, Dur::from_secs(120), &mut rng());
        let bits = sched.total_bytes() as f64 * 8.0;
        let rate = bits / 120.0;
        assert!(
            (rate - spec.bitrate_bps).abs() / spec.bitrate_bps < 0.1,
            "rate {rate}"
        );
    }

    #[test]
    fn packets_in_time_order_and_window() {
        let spec = VideoSpec::HD720;
        let start = SimTime::EPOCH + Dur::from_hours(5);
        let sched = spec.schedule(start, Dur::from_secs(10), &mut rng());
        assert!(!sched.is_empty());
        for w in sched.packets.windows(2) {
            assert!(w[0].sent <= w[1].sent);
        }
        assert!(sched.packets.first().unwrap().sent >= start);
        assert!(sched.packets.last().unwrap().sent < start + Dur::from_secs(10));
    }

    #[test]
    fn i_frames_bigger() {
        let spec = VideoSpec::HD1080;
        let sched = spec.schedule(SimTime::EPOCH, Dur::from_secs(4), &mut rng());
        let frame_pkts = |f: u32| sched.packets.iter().filter(|p| p.frame == f).count();
        // Frame 0 is an I-frame, frame 1 a P-frame.
        assert!(frame_pkts(0) >= 3 * frame_pkts(1));
    }

    #[test]
    fn packet_counts_by_definition() {
        // 720p streams have fewer packets than 1080p over the same window.
        let s720 = VideoSpec::HD720.schedule(SimTime::EPOCH, Dur::from_secs(30), &mut rng());
        let s1080 = VideoSpec::HD1080.schedule(SimTime::EPOCH, Dur::from_secs(30), &mut rng());
        assert!(s720.len() < s1080.len());
    }

    #[test]
    fn mean_p_frame_consistent() {
        let spec = VideoSpec::HD1080;
        let p = spec.mean_p_frame_bytes();
        let per_gop = p * spec.i_frame_ratio + p * (spec.gop as f64 - 1.0);
        let rate = per_gop * 8.0 * (spec.fps / spec.gop as f64);
        assert!((rate - spec.bitrate_bps).abs() / spec.bitrate_bps < 1e-9);
    }
}
