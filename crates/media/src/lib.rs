//! Video-conferencing media plane.
//!
//! The paper's Sec 5.1 experiment streams pre-recorded 720p/1080p HD video
//! conferences between custom SIP/RTP clients and echo servers, measuring
//! packet loss (overall and per 5-second slot) and RFC 3550 jitter. This
//! crate reproduces that tooling against simulated paths:
//!
//! * [`VideoSpec`] — 720p/1080p stream models: frame cadence, GOP
//!   structure, bitrate, RTP packetisation at a fixed MTU;
//! * [`rtp`] — minimal RTP packet bookkeeping (sequence numbers, 90 kHz
//!   timestamps) and the RFC 3550 interarrival-jitter estimator;
//! * [`session`] — the measuring client ↔ echo server loop over a pair of
//!   `vns-netsim` path channels, producing a [`SessionReport`] with
//!   exactly the metrics the paper plots: loss percentage (Fig 9), lossy
//!   5-second slot counts (Fig 10) and jitter (Sec 5.1.1);
//! * [`fec`] — XOR-parity forward error correction, and
//! * [`arq`] — deadline-bounded selective retransmission; both are the
//!   loss countermeasures the paper's related-work section discusses, with
//!   ablation benches showing where each works (random vs bursty loss).

pub mod arq;
pub mod fec;
pub mod rtp;
pub mod session;
pub mod signaling;
pub mod stream;

pub use arq::send_with_arq;
pub use fec::FecConfig;
pub use rtp::JitterEstimator;
pub use session::{run_echo_session, SessionConfig, SessionReport};
pub use signaling::{authenticate, setup_call, teardown_call, SetupReport, TeardownReport};
pub use stream::{PacketIter, PacketSchedule, ScheduledPacket, VideoSpec};
