//! Minimal RTP bookkeeping: sequence numbers, timestamps, and the RFC 3550
//! interarrival-jitter estimator the paper's clients report.

use vns_netsim::SimTime;

/// RTP clock rate for video (per RFC 3551).
pub const VIDEO_CLOCK_HZ: f64 = 90_000.0;

/// An RTP header's fields we care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpHeader {
    /// Sequence number (wraps at 2^16).
    pub seq: u16,
    /// Media timestamp in 90 kHz units.
    pub timestamp: u32,
    /// Synchronisation source.
    pub ssrc: u32,
}

impl RtpHeader {
    /// Builds a header for the `i`-th packet of a stream whose media clock
    /// started at `start`.
    pub fn for_packet(i: u64, sent: SimTime, start: SimTime, ssrc: u32) -> Self {
        let elapsed = (sent - start).as_secs_f64();
        RtpHeader {
            seq: (i % 65_536) as u16,
            timestamp: ((elapsed * VIDEO_CLOCK_HZ) as u64 % (1 << 32)) as u32,
            ssrc,
        }
    }
}

/// RFC 3550 §6.4.1 interarrival jitter, in milliseconds.
///
/// `J(i) = J(i-1) + (|D(i-1,i)| - J(i-1)) / 16`, where `D` compares the
/// spacing of arrivals against the spacing of the media timestamps.
#[derive(Debug, Clone, Default)]
pub struct JitterEstimator {
    jitter_ms: f64,
    max_ms: f64,
    last_transit_ns: Option<u64>,
    samples: u64,
}

impl JitterEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received packet (its send and arrival instants).
    pub fn on_packet(&mut self, sent: SimTime, arrived: SimTime) {
        self.on_transit_ns((arrived - sent).as_nanos());
    }

    /// Feeds one packet by its transit time directly, in nanoseconds.
    ///
    /// Algebraically the same estimator as [`JitterEstimator::on_packet`]:
    /// `D(i-1,i) = (a_i - a_{i-1}) - (s_i - s_{i-1}) = t_i - t_{i-1}` with
    /// `t = a - s` the transit. Taking the difference exactly in integer
    /// ns before the single float conversion is both cheaper and better
    /// conditioned than differencing two ms floats.
    pub fn on_transit_ns(&mut self, t_ns: u64) {
        if let Some(prev) = self.last_transit_ns {
            let d = (t_ns as i64 - prev as i64).unsigned_abs() as f64 * 1e-6;
            self.jitter_ms += (d - self.jitter_ms) / 16.0;
            self.max_ms = self.max_ms.max(self.jitter_ms);
            self.samples += 1;
        }
        self.last_transit_ns = Some(t_ns);
    }

    /// Current smoothed jitter, ms.
    pub fn jitter_ms(&self) -> f64 {
        self.jitter_ms
    }

    /// Maximum the smoothed estimate reached, ms (what a session reports).
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Number of interarrival samples folded.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vns_netsim::Dur;

    #[test]
    fn header_sequence_wraps() {
        let h = RtpHeader::for_packet(65_537, SimTime::EPOCH, SimTime::EPOCH, 7);
        assert_eq!(h.seq, 1);
        assert_eq!(h.ssrc, 7);
    }

    #[test]
    fn header_timestamp_advances_at_90khz() {
        let start = SimTime::EPOCH;
        let h = RtpHeader::for_packet(0, start + Dur::from_millis(100), start, 1);
        assert_eq!(h.timestamp, 9000);
    }

    #[test]
    fn constant_delay_means_zero_jitter() {
        let mut j = JitterEstimator::new();
        for i in 0..100u64 {
            let sent = SimTime::EPOCH + Dur::from_millis(i * 33);
            let arrived = sent + Dur::from_millis(80);
            j.on_packet(sent, arrived);
        }
        assert_eq!(j.jitter_ms(), 0.0);
        assert_eq!(j.max_ms(), 0.0);
        assert_eq!(j.samples(), 99);
    }

    #[test]
    fn variable_delay_raises_jitter() {
        let mut j = JitterEstimator::new();
        for i in 0..200u64 {
            let sent = SimTime::EPOCH + Dur::from_millis(i * 33);
            let delay = if i % 2 == 0 { 80 } else { 88 };
            j.on_packet(sent, sent + Dur::from_millis(delay));
        }
        // Alternating ±8 ms converges towards 8 ms (RFC smoothing keeps it
        // just below).
        assert!(
            j.jitter_ms() > 5.0 && j.jitter_ms() < 8.5,
            "{}",
            j.jitter_ms()
        );
    }

    #[test]
    fn estimator_ignores_order_of_magnitude_of_base_delay() {
        let run = |base: u64| {
            let mut j = JitterEstimator::new();
            for i in 0..100u64 {
                let sent = SimTime::EPOCH + Dur::from_millis(i * 33);
                j.on_packet(sent, sent + Dur::from_millis(base + (i % 3)));
            }
            j.jitter_ms()
        };
        assert!((run(10) - run(300)).abs() < 1e-9);
    }
}
