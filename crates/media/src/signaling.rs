//! SIP-style call signalling over lossy paths.
//!
//! The paper's media relays are "TURN relays, SIP B2BUA, or Multipoint
//! Conferencing Units"; users authenticate to the anycast TURN address and
//! set calls up with SIP (Sec 3.1, Sec 4.4 measures the authentication
//! requests). This module models the latency-relevant part of that
//! signalling: an INVITE transaction with RFC 3261 timer-A
//! retransmissions (T1 = 500 ms doubling), a provisional response, a final
//! 200, and the ACK. Packet loss on the signalling path turns directly
//! into call-setup delay — a second-order cost of lossy transport that
//! loss percentages alone don't show.

use vns_netsim::{Dur, PathChannel, PathOutcome, SimTime};

/// RFC 3261 T1.
pub const SIP_T1: Dur = Dur::from_millis(500);
/// Timer B: transaction timeout = 64 × T1.
pub const SIP_TIMER_B: Dur = Dur::from_millis(64 * 500);

/// Result of one call-setup attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupReport {
    /// Did the call set up before timer B?
    pub established: bool,
    /// Time from first INVITE to receiving the 200 OK, ms.
    pub setup_ms: f64,
    /// INVITE retransmissions needed.
    pub invite_retransmissions: u32,
    /// Total signalling messages put on the wire (both directions).
    pub messages_sent: u32,
}

/// One signalling round trip: request out, response back. Returns the
/// response arrival time if both legs survive.
fn transact(
    fwd: &mut PathChannel,
    rev: &mut PathChannel,
    at: SimTime,
    messages: &mut u32,
) -> Option<SimTime> {
    *messages += 1;
    let PathOutcome::Delivered { arrival, .. } = fwd.send(at) else {
        return None;
    };
    *messages += 1;
    match rev.send(arrival) {
        PathOutcome::Delivered { arrival, .. } => Some(arrival),
        PathOutcome::Lost { .. } => None,
    }
}

/// Runs an INVITE transaction starting at `start`: retransmit on T1
/// doubling until a 200 round trip completes or timer B fires, then ACK.
pub fn setup_call(fwd: &mut PathChannel, rev: &mut PathChannel, start: SimTime) -> SetupReport {
    let deadline = start + SIP_TIMER_B;
    let mut messages = 0u32;
    let mut retransmissions = 0u32;
    let mut attempt_at = start;
    let mut interval = SIP_T1;
    loop {
        if let Some(ok_at) = transact(fwd, rev, attempt_at, &mut messages) {
            // ACK (fire and forget).
            messages += 1;
            let _ = fwd.send(ok_at);
            return SetupReport {
                established: true,
                setup_ms: (ok_at - start).as_millis_f64(),
                invite_retransmissions: retransmissions,
                messages_sent: messages,
            };
        }
        attempt_at += interval;
        interval = interval + interval; // T1 doubling
        retransmissions += 1;
        if attempt_at >= deadline {
            return SetupReport {
                established: false,
                setup_ms: (deadline - start).as_millis_f64(),
                invite_retransmissions: retransmissions,
                messages_sent: messages,
            };
        }
    }
}

/// Result of one BYE teardown exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeardownReport {
    /// The far end confirmed the BYE with a 200 before timer F.
    pub confirmed: bool,
    /// Time from first BYE to the 200 arriving, ms (timer F on failure).
    pub teardown_ms: f64,
    /// Signalling messages put on the wire (both directions).
    pub messages_sent: u32,
}

/// Runs a BYE transaction at `start`: retransmit on T1 doubling until a
/// 200 round trip completes or timer F (= 64 × T1, RFC 3261 non-INVITE
/// timeout) fires. Either way the session is torn down locally — an
/// unconfirmed BYE only means the relay holds the port until its own
/// timeout, which is why the service plane frees capacity at the
/// *scheduled* departure instant, not at BYE confirmation.
pub fn teardown_call(
    fwd: &mut PathChannel,
    rev: &mut PathChannel,
    start: SimTime,
) -> TeardownReport {
    let deadline = start + SIP_TIMER_B; // timer F has the same 64*T1 value
    let mut messages = 0u32;
    let mut attempt_at = start;
    let mut interval = SIP_T1;
    loop {
        if let Some(ok_at) = transact(fwd, rev, attempt_at, &mut messages) {
            return TeardownReport {
                confirmed: true,
                teardown_ms: (ok_at - start).as_millis_f64(),
                messages_sent: messages,
            };
        }
        attempt_at += interval;
        interval = interval + interval;
        if attempt_at >= deadline {
            return TeardownReport {
                confirmed: false,
                teardown_ms: (deadline - start).as_millis_f64(),
                messages_sent: messages,
            };
        }
    }
}

/// A TURN-style authentication exchange (what the paper's Fig 7 counts):
/// one request/challenge plus one authenticated retry — two round trips,
/// each retransmitted on loss like the INVITE.
pub fn authenticate(fwd: &mut PathChannel, rev: &mut PathChannel, start: SimTime) -> Option<f64> {
    let mut messages = 0u32;
    let deadline = start + SIP_TIMER_B;
    let mut at = start;
    let mut interval = SIP_T1;
    // Two sequential round trips (challenge, then authenticated request).
    let mut completed = 0;
    while completed < 2 {
        match transact(fwd, rev, at, &mut messages) {
            Some(done) => {
                completed += 1;
                at = done;
                interval = SIP_T1;
            }
            None => {
                at += interval;
                interval = interval + interval;
                if at >= deadline {
                    return None;
                }
            }
        }
    }
    Some((at - start).as_millis_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns_netsim::{HopChannel, LossModel, LossProcess};

    fn channel(base_ms: f64, p: f64, seed: u64) -> PathChannel {
        let mut hop = HopChannel::ideal(base_ms);
        hop.loss = LossProcess::new(LossModel::Bernoulli { p }, SmallRng::seed_from_u64(seed));
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(seed + 1))
    }

    #[test]
    fn clean_path_sets_up_in_one_rtt() {
        let mut fwd = channel(40.0, 0.0, 1);
        let mut rev = channel(40.0, 0.0, 2);
        let r = setup_call(&mut fwd, &mut rev, SimTime::EPOCH);
        assert!(r.established);
        assert_eq!(r.invite_retransmissions, 0);
        assert!(r.setup_ms >= 80.0 && r.setup_ms < 83.0, "{}", r.setup_ms);
        assert_eq!(r.messages_sent, 3); // INVITE, 200, ACK
    }

    #[test]
    fn loss_inflates_setup_time() {
        // 20% loss: many setups need a 500 ms (or longer) retransmission.
        // At this loss rate a rare setup can exhaust timer B (~1.4% per
        // call), so tolerate a handful of failures rather than asserting
        // every single one establishes.
        let mut slow = 0;
        let mut established = 0;
        let mut fwd = channel(30.0, 0.2, 3);
        let mut rev = channel(30.0, 0.2, 4);
        let mut t = SimTime::EPOCH;
        for _ in 0..200 {
            let r = setup_call(&mut fwd, &mut rev, t);
            if r.established {
                established += 1;
            }
            if r.setup_ms > 400.0 {
                slow += 1;
            }
            t += Dur::from_secs(60);
        }
        assert!(established >= 195, "established {established}/200");
        assert!((40..150).contains(&slow), "slow setups {slow}");
    }

    #[test]
    fn dead_path_times_out_at_timer_b() {
        let mut fwd = channel(10.0, 1.0, 5);
        let mut rev = channel(10.0, 0.0, 6);
        let r = setup_call(&mut fwd, &mut rev, SimTime::EPOCH);
        assert!(!r.established);
        assert!(r.setup_ms <= SIP_TIMER_B.as_millis_f64() + 1e-6);
        assert!(
            r.invite_retransmissions >= 6,
            "{}",
            r.invite_retransmissions
        );
    }

    #[test]
    fn teardown_is_one_round_trip_when_clean() {
        let mut fwd = channel(35.0, 0.0, 11);
        let mut rev = channel(35.0, 0.0, 12);
        let r = teardown_call(&mut fwd, &mut rev, SimTime::EPOCH);
        assert!(r.confirmed);
        assert_eq!(r.messages_sent, 2); // BYE, 200
        assert!((70.0..74.0).contains(&r.teardown_ms), "{}", r.teardown_ms);
    }

    #[test]
    fn teardown_gives_up_at_timer_f() {
        let mut fwd = channel(10.0, 1.0, 13);
        let mut rev = channel(10.0, 0.0, 14);
        let r = teardown_call(&mut fwd, &mut rev, SimTime::EPOCH);
        assert!(!r.confirmed);
        assert!(r.teardown_ms <= SIP_TIMER_B.as_millis_f64() + 1e-6);
        assert!(r.messages_sent >= 6, "{}", r.messages_sent);
    }

    #[test]
    fn auth_is_two_round_trips() {
        let mut fwd = channel(25.0, 0.0, 7);
        let mut rev = channel(25.0, 0.0, 8);
        let ms = authenticate(&mut fwd, &mut rev, SimTime::EPOCH).expect("auth");
        assert!((100.0..106.0).contains(&ms), "{ms}");
        let mut dead = channel(25.0, 1.0, 9);
        let mut rev2 = channel(25.0, 0.0, 10);
        assert!(authenticate(&mut dead, &mut rev2, SimTime::EPOCH).is_none());
    }
}
