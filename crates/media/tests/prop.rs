//! Property tests for the media plane: FEC soundness, schedule invariants
//! and jitter-estimator behaviour.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_media::{FecConfig, JitterEstimator, VideoSpec};
use vns_netsim::{Dur, SimTime};

proptest! {
    #[test]
    fn fec_never_unreceives_packets(
        delivered in prop::collection::vec(any::<bool>(), 1..200),
        parity in prop::collection::vec(any::<bool>(), 0..25),
        k in 2usize..12
    ) {
        let cfg = FecConfig { k };
        let out = cfg.recover(&delivered, &parity);
        prop_assert_eq!(out.len(), delivered.len());
        for (before, after) in delivered.iter().zip(&out) {
            prop_assert!(!*before || *after, "FEC must not drop a delivered packet");
        }
        // Residual loss never exceeds raw loss.
        let raw = delivered.iter().filter(|d| !**d).count();
        let res = out.iter().filter(|d| !**d).count();
        prop_assert!(res <= raw);
    }

    #[test]
    fn fec_recovers_exactly_single_losses(
        group in 0usize..10,
        lost_at in 0usize..8,
        k in 2usize..9
    ) {
        // One loss per group with parity intact is always recoverable.
        let groups = group + 1;
        let mut delivered = vec![true; groups * k];
        let idx = (group % groups) * k + (lost_at % k);
        delivered[idx] = false;
        let parity = vec![true; groups];
        let cfg = FecConfig { k };
        let out = cfg.recover(&delivered, &parity);
        prop_assert!(out.iter().all(|d| *d));
    }

    #[test]
    fn schedule_is_monotone_and_fills_duration(
        seed in 0u64..500,
        secs in 2u64..30
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let start = SimTime::EPOCH + Dur::from_hours(seed % 24);
        let sched = VideoSpec::HD1080.schedule(start, Dur::from_secs(secs), &mut rng);
        prop_assert!(!sched.is_empty());
        for w in sched.packets.windows(2) {
            prop_assert!(w[0].sent <= w[1].sent);
            prop_assert!(w[0].frame <= w[1].frame);
        }
        prop_assert!(sched.packets.first().unwrap().sent >= start);
        prop_assert!(sched.packets.last().unwrap().sent < start + Dur::from_secs(secs));
        // Packet payloads respect the MTU.
        for p in &sched.packets {
            prop_assert!(p.payload_bytes <= VideoSpec::HD1080.mtu_payload);
            prop_assert!(p.payload_bytes > 0);
        }
    }

    #[test]
    fn jitter_estimator_nonnegative_and_zero_for_constant_delay(
        delay_ms in 1u64..500,
        n in 2u64..100
    ) {
        let mut j = JitterEstimator::new();
        for i in 0..n {
            let sent = SimTime::EPOCH + Dur::from_millis(i * 20);
            j.on_packet(sent, sent + Dur::from_millis(delay_ms));
        }
        prop_assert_eq!(j.jitter_ms(), 0.0);
        prop_assert!(j.max_ms() >= 0.0);
    }

    #[test]
    fn jitter_bounded_by_max_delay_swing(
        swings in prop::collection::vec(0u64..50, 2..80)
    ) {
        let mut j = JitterEstimator::new();
        for (i, s) in swings.iter().enumerate() {
            let sent = SimTime::EPOCH + Dur::from_millis(i as u64 * 33);
            j.on_packet(sent, sent + Dur::from_millis(40 + s));
        }
        let max_swing = *swings.iter().max().unwrap() as f64;
        prop_assert!(j.max_ms() <= max_swing + 1e-9, "{} vs {}", j.max_ms(), max_swing);
    }
}
