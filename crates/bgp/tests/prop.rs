//! Property tests for the BGP machinery: prefix canonicalisation, trie
//! correctness against a naive table, decision-process order axioms, and
//! valley-free export.

use proptest::prelude::*;
use vns_bgp::{
    compare_routes, may_export, Asn, Candidate, DecisionContext, Origin, Prefix, PrefixTrie,
    Relation, RouteAttrs, RouteSource, ScanTable, SpeakerId,
};

fn prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(a, l))
}

fn source() -> impl Strategy<Value = RouteSource> {
    prop_oneof![
        Just(RouteSource::Local),
        (1u32..100).prop_map(|p| RouteSource::Ibgp { peer: SpeakerId(p) }),
        (
            1u32..100,
            prop_oneof![
                Just(Relation::Customer),
                Just(Relation::Peer),
                Just(Relation::Provider)
            ]
        )
            .prop_map(|(p, relation)| RouteSource::Ebgp {
                peer: SpeakerId(p),
                peer_as: Asn(p),
                relation,
            }),
    ]
}

fn candidate() -> impl Strategy<Value = Candidate> {
    (
        90u32..200,
        prop::collection::vec(1u32..50, 0..5),
        0u32..3,
        0u32..20,
        1u32..40,
        prop::collection::vec(1u32..8, 0..3),
        source(),
    )
        .prop_map(|(lp, path, origin, med, nh, clusters, source)| Candidate {
            attrs: RouteAttrs {
                local_pref: lp,
                as_path: path.into_iter().map(Asn).collect(),
                origin: match origin {
                    0 => Origin::Igp,
                    1 => Origin::Egp,
                    _ => Origin::Incomplete,
                },
                med,
                communities: vec![],
                next_hop: SpeakerId(nh),
                originator_id: None,
                cluster_list: clusters,
            },
            source,
        })
}

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn prefix_contains_its_own_hosts(p in prefix(), salt in any::<u32>()) {
        // Any address formed by ORing host bits into the network stays in.
        let host_mask = if p.len() == 0 { u32::MAX } else if p.len() == 32 { 0 } else { u32::MAX >> p.len() };
        let ip = p.addr() | (salt & host_mask);
        prop_assert!(p.contains(ip));
        prop_assert!(p.contains(p.first_host()));
    }

    #[test]
    fn split_partitions_the_prefix(p in prefix(), salt in any::<u32>()) {
        if let Some((lo, hi)) = p.split() {
            let host_mask = if p.len() == 0 { u32::MAX } else { u32::MAX >> p.len() };
            let ip = p.addr() | (salt & host_mask);
            prop_assert!(lo.contains(ip) ^ hi.contains(ip));
            prop_assert!(p.covers(&lo) && p.covers(&hi));
        }
    }

    #[test]
    fn trie_matches_scan_oracle(
        // Ops over a deliberately collision-heavy space (few distinct
        // addresses, full /0..=/32 length range) so inserts overwrite,
        // removes hit, and default routes and host routes both occur.
        ops in prop::collection::vec(
            (any::<bool>(), 0u32..64, 0u8..=32),
            1..200
        ),
        probes in prop::collection::vec(any::<u32>(), 1..60)
    ) {
        let mut trie = PrefixTrie::new();
        let mut oracle = ScanTable::new();
        for (i, (is_insert, addr_sel, len)) in ops.iter().enumerate() {
            // Spread the few address selectors across the whole space so
            // short and long prefixes overlap.
            let addr = addr_sel.rotate_right(6).wrapping_mul(0x9e37_79b9);
            let p = Prefix::new(addr, *len);
            if *is_insert {
                prop_assert_eq!(trie.insert(p, i), oracle.insert(p, i));
            } else {
                prop_assert_eq!(trie.remove(&p), oracle.remove(&p));
            }
            prop_assert_eq!(trie.len(), oracle.len());
            prop_assert_eq!(trie.get(&p).copied(), oracle.get(&p).copied());
        }
        // Structure bound: path compression plus prune-on-remove keeps
        // node count within 2n-1 whatever the op history was.
        if !trie.is_empty() {
            prop_assert!(trie.node_count() < 2 * trie.len());
        } else {
            prop_assert_eq!(trie.node_count(), 0);
        }
        // Iteration agrees entry-for-entry.
        prop_assert_eq!(trie.prefixes(), oracle.prefixes());
        for ip in probes {
            let got = trie.lookup(ip).map(|(p, v)| (p, *v));
            let want = oracle.lookup(ip).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn decision_is_reflexive_and_antisymmetric(a in candidate(), b in candidate()) {
        let ctx = DecisionContext::no_igp();
        prop_assert_eq!(compare_routes(&a, &a, &ctx), std::cmp::Ordering::Equal);
        let ab = compare_routes(&a, &b, &ctx);
        let ba = compare_routes(&b, &a, &ctx);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn decision_is_transitive(a in candidate(), b in candidate(), c in candidate()) {
        use std::cmp::Ordering::*;
        let ctx = DecisionContext::no_igp();
        let ab = compare_routes(&a, &b, &ctx);
        let bc = compare_routes(&b, &c, &ctx);
        let ac = compare_routes(&a, &c, &ctx);
        // The tie-break chain is lexicographic except for MED's
        // same-neighbour scoping, which can break transitivity in
        // pathological cases (a well-known BGP wart). Restrict the check to
        // candidate sets where MED scoping is uniform.
        let same_neighbor = a.attrs.neighbor_as() == b.attrs.neighbor_as()
            && b.attrs.neighbor_as() == c.attrs.neighbor_as();
        let no_med = a.attrs.med == b.attrs.med && b.attrs.med == c.attrs.med;
        if same_neighbor || no_med {
            if ab == Greater && bc == Greater {
                prop_assert_eq!(ac, Greater);
            }
            if ab == Less && bc == Less {
                prop_assert_eq!(ac, Less);
            }
        }
    }

    #[test]
    fn valley_free_never_exports_peer_routes_upward(
        to in prop_oneof![Just(Relation::Peer), Just(Relation::Provider)]
    ) {
        // Routes learned from peers/providers go to customers only.
        prop_assert!(!may_export(Some(Relation::Peer), to));
        prop_assert!(!may_export(Some(Relation::Provider), to));
        // Own and customer routes go anywhere.
        prop_assert!(may_export(None, to));
        prop_assert!(may_export(Some(Relation::Customer), to));
    }
}
