//! Property tests for the BGP machinery: prefix canonicalisation, trie
//! correctness against a naive table, decision-process order axioms, and
//! valley-free export.

use proptest::prelude::*;
use vns_bgp::{
    compare_routes, may_export, Asn, Candidate, DecisionContext, Origin, Prefix, PrefixTrie,
    Relation, RouteAttrs, RouteSource, SpeakerId,
};

fn prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(a, l))
}

fn source() -> impl Strategy<Value = RouteSource> {
    prop_oneof![
        Just(RouteSource::Local),
        (1u32..100).prop_map(|p| RouteSource::Ibgp { peer: SpeakerId(p) }),
        (
            1u32..100,
            prop_oneof![
                Just(Relation::Customer),
                Just(Relation::Peer),
                Just(Relation::Provider)
            ]
        )
            .prop_map(|(p, relation)| RouteSource::Ebgp {
                peer: SpeakerId(p),
                peer_as: Asn(p),
                relation,
            }),
    ]
}

fn candidate() -> impl Strategy<Value = Candidate> {
    (
        90u32..200,
        prop::collection::vec(1u32..50, 0..5),
        0u32..3,
        0u32..20,
        1u32..40,
        prop::collection::vec(1u32..8, 0..3),
        source(),
    )
        .prop_map(|(lp, path, origin, med, nh, clusters, source)| Candidate {
            attrs: RouteAttrs {
                local_pref: lp,
                as_path: path.into_iter().map(Asn).collect(),
                origin: match origin {
                    0 => Origin::Igp,
                    1 => Origin::Egp,
                    _ => Origin::Incomplete,
                },
                med,
                communities: vec![],
                next_hop: SpeakerId(nh),
                originator_id: None,
                cluster_list: clusters,
            },
            source,
        })
}

proptest! {
    #[test]
    fn prefix_display_parse_roundtrip(p in prefix()) {
        let s = p.to_string();
        let q: Prefix = s.parse().unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn prefix_contains_its_own_hosts(p in prefix(), salt in any::<u32>()) {
        // Any address formed by ORing host bits into the network stays in.
        let host_mask = if p.len() == 0 { u32::MAX } else if p.len() == 32 { 0 } else { u32::MAX >> p.len() };
        let ip = p.addr() | (salt & host_mask);
        prop_assert!(p.contains(ip));
        prop_assert!(p.contains(p.first_host()));
    }

    #[test]
    fn split_partitions_the_prefix(p in prefix(), salt in any::<u32>()) {
        if let Some((lo, hi)) = p.split() {
            let host_mask = if p.len() == 0 { u32::MAX } else { u32::MAX >> p.len() };
            let ip = p.addr() | (salt & host_mask);
            prop_assert!(lo.contains(ip) ^ hi.contains(ip));
            prop_assert!(p.covers(&lo) && p.covers(&hi));
        }
    }

    #[test]
    fn trie_matches_naive_scan(
        entries in prop::collection::vec((any::<u32>(), 4u8..=28), 1..120),
        probes in prop::collection::vec(any::<u32>(), 1..60)
    ) {
        let mut trie = PrefixTrie::new();
        let mut table: Vec<(Prefix, usize)> = Vec::new();
        for (i, (addr, len)) in entries.iter().enumerate() {
            let p = Prefix::new(*addr, *len);
            trie.insert(p, i);
            table.retain(|(q, _)| *q != p);
            table.push((p, i));
        }
        for ip in probes {
            let got = trie.lookup(ip).map(|(p, v)| (p, *v));
            let want = table
                .iter()
                .filter(|(p, _)| p.contains(ip))
                .max_by_key(|(p, _)| p.len())
                .map(|(p, v)| (*p, *v));
            // Compare specificity (value may differ only if two distinct
            // prefixes had equal length — impossible for canonical prefixes
            // containing the same ip at the same length).
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn decision_is_reflexive_and_antisymmetric(a in candidate(), b in candidate()) {
        let ctx = DecisionContext::no_igp();
        prop_assert_eq!(compare_routes(&a, &a, &ctx), std::cmp::Ordering::Equal);
        let ab = compare_routes(&a, &b, &ctx);
        let ba = compare_routes(&b, &a, &ctx);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn decision_is_transitive(a in candidate(), b in candidate(), c in candidate()) {
        use std::cmp::Ordering::*;
        let ctx = DecisionContext::no_igp();
        let ab = compare_routes(&a, &b, &ctx);
        let bc = compare_routes(&b, &c, &ctx);
        let ac = compare_routes(&a, &c, &ctx);
        // The tie-break chain is lexicographic except for MED's
        // same-neighbour scoping, which can break transitivity in
        // pathological cases (a well-known BGP wart). Restrict the check to
        // candidate sets where MED scoping is uniform.
        let same_neighbor = a.attrs.neighbor_as() == b.attrs.neighbor_as()
            && b.attrs.neighbor_as() == c.attrs.neighbor_as();
        let no_med = a.attrs.med == b.attrs.med && b.attrs.med == c.attrs.med;
        if same_neighbor || no_med {
            if ab == Greater && bc == Greater {
                prop_assert_eq!(ac, Greater);
            }
            if ab == Less && bc == Less {
                prop_assert_eq!(ac, Less);
            }
        }
    }

    #[test]
    fn valley_free_never_exports_peer_routes_upward(
        to in prop_oneof![Just(Relation::Peer), Just(Relation::Provider)]
    ) {
        // Routes learned from peers/providers go to customers only.
        prop_assert!(!may_export(Some(Relation::Peer), to));
        prop_assert!(!may_export(Some(Relation::Provider), to));
        // Own and customer routes go anywhere.
        prop_assert!(may_export(None, to));
        prop_assert!(may_export(Some(Relation::Customer), to));
    }
}
