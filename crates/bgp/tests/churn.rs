//! Control-plane churn tests: flapping origins, route refresh, MED-based
//! steering, and convergence determinism under repeated reconvergence.

use vns_bgp::{
    Asn, BgpNet, Message, Origin, PeerConfig, PeerKind, Policy, Prefix, Relation, RouteAttrs,
    Speaker, SpeakerId,
};

fn p(s: &str) -> Prefix {
    s.parse().expect("valid prefix literal")
}

/// AS1 --AS2 -- AS3 chain with AS4 multihomed to AS2 and AS3.
fn diamond() -> BgpNet {
    let mut net = BgpNet::new();
    for i in 1..=4 {
        net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
    }
    net.connect_ebgp(
        SpeakerId(1),
        SpeakerId(2),
        Relation::Provider,
        Policy::GaoRexford,
    );
    net.connect_ebgp(
        SpeakerId(2),
        SpeakerId(3),
        Relation::Peer,
        Policy::GaoRexford,
    );
    net.connect_ebgp(
        SpeakerId(4),
        SpeakerId(2),
        Relation::Provider,
        Policy::GaoRexford,
    );
    net.connect_ebgp(
        SpeakerId(4),
        SpeakerId(3),
        Relation::Provider,
        Policy::GaoRexford,
    );
    net
}

#[test]
fn origin_flap_converges_every_time() {
    let mut net = diamond();
    let prefix = p("10.4.0.0/16");
    for round in 0..10 {
        net.originate(SpeakerId(4), prefix);
        net.run(100_000).unwrap();
        assert!(
            net.best_route(SpeakerId(1), &prefix).is_some(),
            "round {round}: reachable after announce"
        );
        net.speaker_mut(SpeakerId(4))
            .unwrap()
            .withdraw_local(prefix);
        net.run(100_000).unwrap();
        assert!(
            net.best_route(SpeakerId(1), &prefix).is_none(),
            "round {round}: gone after withdraw"
        );
        assert!(
            net.best_route(SpeakerId(2), &prefix).is_none(),
            "round {round}: no stale state at AS2"
        );
    }
}

#[test]
fn flap_leaves_identical_state() {
    // State after announce-withdraw-announce equals state after announce.
    let build = |flaps: usize| {
        let mut net = diamond();
        let prefix = p("10.4.0.0/16");
        for _ in 0..flaps {
            net.originate(SpeakerId(4), prefix);
            net.run(100_000).unwrap();
            net.speaker_mut(SpeakerId(4))
                .unwrap()
                .withdraw_local(prefix);
            net.run(100_000).unwrap();
        }
        net.originate(SpeakerId(4), prefix);
        net.run(100_000).unwrap();
        (1..=3)
            .map(|i| {
                net.best_route(SpeakerId(i), &prefix)
                    .map(|c| c.attrs.as_path.clone())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(build(0), build(5));
}

#[test]
fn refresh_is_idempotent_at_steady_state() {
    let mut net = diamond();
    let prefix = p("10.4.0.0/16");
    net.originate(SpeakerId(4), prefix);
    net.run(100_000).unwrap();
    let before: Vec<_> = (1..=4)
        .map(|i| net.best_route(SpeakerId(i), &prefix).cloned())
        .collect();
    // Refresh every speaker: messages flow, state must not change.
    for i in 1..=4 {
        net.speaker_mut(SpeakerId(i)).unwrap().request_refresh_all();
    }
    let stats = net.run(100_000).unwrap();
    assert!(stats.messages > 0, "refresh re-sends advertisements");
    let after: Vec<_> = (1..=4)
        .map(|i| net.best_route(SpeakerId(i), &prefix).cloned())
        .collect();
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.as_ref().map(|c| &c.attrs), a.as_ref().map(|c| &c.attrs));
    }
}

#[test]
fn med_steers_between_parallel_sessions() {
    // One AS (AS2, two routers) hears the same prefix from AS1's two
    // routers with different MEDs: the lower MED must win.
    let mut net = BgpNet::new();
    // AS1: routers 11 and 12 (iBGP mesh), both originate-and-tag via MED.
    for i in [11, 12] {
        let mut s = Speaker::new(SpeakerId(i), Asn(1));
        s.set_export_own_ibgp(true);
        net.add_speaker(s);
    }
    net.connect(
        SpeakerId(11),
        PeerConfig {
            kind: PeerKind::Ibgp,
            import: Policy::GaoRexford,
        },
        SpeakerId(12),
        PeerConfig {
            kind: PeerKind::Ibgp,
            import: Policy::GaoRexford,
        },
    );
    net.add_speaker(Speaker::new(SpeakerId(2), Asn(2)));
    net.connect_ebgp(
        SpeakerId(11),
        SpeakerId(2),
        Relation::Customer,
        Policy::GaoRexford,
    );
    net.connect_ebgp(
        SpeakerId(12),
        SpeakerId(2),
        Relation::Customer,
        Policy::GaoRexford,
    );
    let prefix = p("10.1.0.0/16");
    // Hand-deliver updates with MEDs (the speaker API resets MED on its
    // own originations, so drive the receiving side directly).
    let mk = |med: u32, nh: u32| Message::Update {
        prefix,
        attrs: RouteAttrs {
            local_pref: 100,
            as_path: vec![Asn(1)].into(),
            origin: Origin::Igp,
            med,
            communities: vec![],
            next_hop: SpeakerId(nh),
            originator_id: None,
            cluster_list: vec![],
        },
    };
    {
        let s2 = net.speaker_mut(SpeakerId(2)).unwrap();
        s2.receive(SpeakerId(11), mk(50, 11));
        s2.receive(SpeakerId(12), mk(10, 12));
        s2.process();
    }
    let best = net.best_route(SpeakerId(2), &prefix).unwrap();
    assert_eq!(
        best.attrs.med, 10,
        "lower MED wins between same-AS sessions"
    );
    assert_eq!(best.source.peer(), Some(SpeakerId(12)));
}

#[test]
fn no_export_stays_inside_the_as() {
    use vns_bgp::Community;
    let mut net = diamond();
    let prefix = p("10.4.64.0/18");
    net.speaker_mut(SpeakerId(4))
        .unwrap()
        .originate_with(prefix, vec![Community::NoExport]);
    net.run(100_000).unwrap();
    // Direct eBGP neighbours 2 and 3 never hear it (AS-level speakers:
    // NO_EXPORT blocks the very first eBGP hop).
    for i in 1..=3 {
        assert!(
            net.best_route(SpeakerId(i), &prefix).is_none(),
            "AS{i} must not learn a NO_EXPORT origination"
        );
    }
}

#[test]
fn convergence_message_count_is_deterministic() {
    let run = || {
        let mut net = diamond();
        for (i, pre) in [(1u32, "10.1.0.0/16"), (4, "10.4.0.0/16")] {
            net.originate(SpeakerId(i), p(pre));
        }
        net.run(100_000).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.activations, b.activations);
}
