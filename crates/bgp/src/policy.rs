//! Routing policy: business relations, import preferences, export scoping.
//!
//! The synthetic Internet follows the standard Gao–Rexford model the paper
//! assumes of transit providers: routes from customers are preferred over
//! routes from peers over routes from providers, and only customer/own
//! routes are exported to peers and providers. VNS itself deviates from
//! this — its geo route reflector overwrites LOCAL_PREF "without taking
//! into account business relationships" (Sec 4.2) — which is exactly the
//! contrast Figs 4 and 5 measure.

use crate::route::{Community, RouteAttrs, DEFAULT_LOCAL_PREF};

/// Our business relationship to a neighbouring AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    /// The neighbour pays us for transit (they are our customer).
    Customer,
    /// Settlement-free peer.
    Peer,
    /// We pay them for transit (they are our provider/upstream).
    Provider,
}

impl Relation {
    /// The relation as seen from the other side of the link.
    pub fn inverse(&self) -> Relation {
        match self {
            Relation::Customer => Relation::Provider,
            Relation::Peer => Relation::Peer,
            Relation::Provider => Relation::Customer,
        }
    }
}

/// What an import policy decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportAction {
    /// Accept with the (possibly rewritten) attributes.
    Accept,
    /// Reject the route.
    Reject,
}

/// Import policy applied to eBGP-learned routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Gao–Rexford: LOCAL_PREF by relation (customer 130 > peer 110 >
    /// provider 90).
    GaoRexford,
    /// Flat: every eBGP route gets the default LOCAL_PREF (100). This is
    /// VNS's baseline ("before") configuration, where the decision falls
    /// through to AS-path length and hot-potato IGP metric.
    FlatPreference,
}

/// LOCAL_PREF assigned by [`Policy::GaoRexford`] per relation.
pub fn gao_rexford_local_pref(rel: Relation) -> u32 {
    match rel {
        Relation::Customer => 130,
        Relation::Peer => 110,
        Relation::Provider => 90,
    }
}

/// Community tags recording which relation a route was learned over, so
/// multi-router ASes can apply valley-free export to iBGP-learned routes
/// (real operators do exactly this with ingress community tagging).
pub const REL_TAG_CUSTOMER: Community = Community::Tag(0xFFF1);
/// See [`REL_TAG_CUSTOMER`].
pub const REL_TAG_PEER: Community = Community::Tag(0xFFF2);
/// See [`REL_TAG_CUSTOMER`].
pub const REL_TAG_PROVIDER: Community = Community::Tag(0xFFF3);

/// The ingress tag for a relation.
pub fn relation_tag(rel: Relation) -> Community {
    match rel {
        Relation::Customer => REL_TAG_CUSTOMER,
        Relation::Peer => REL_TAG_PEER,
        Relation::Provider => REL_TAG_PROVIDER,
    }
}

/// Reads a relation tag back from a route's communities.
pub fn relation_from_tags(attrs: &RouteAttrs) -> Option<Relation> {
    if attrs.has_community(REL_TAG_CUSTOMER) {
        Some(Relation::Customer)
    } else if attrs.has_community(REL_TAG_PEER) {
        Some(Relation::Peer)
    } else if attrs.has_community(REL_TAG_PROVIDER) {
        Some(Relation::Provider)
    } else {
        None
    }
}

/// Removes relation tags (done at eBGP export — the tags are AS-internal).
pub fn strip_relation_tags(attrs: &mut RouteAttrs) {
    attrs
        .communities
        .retain(|c| !matches!(c, &REL_TAG_CUSTOMER | &REL_TAG_PEER | &REL_TAG_PROVIDER));
}

impl Policy {
    /// Applies the import policy to a route learned over eBGP from a
    /// neighbour related to us as `rel`. Returns the action; on `Accept`,
    /// `attrs` has been rewritten in place.
    pub fn import_ebgp(&self, rel: Relation, attrs: &mut RouteAttrs) -> ImportAction {
        match self {
            Policy::GaoRexford => {
                attrs.local_pref = gao_rexford_local_pref(rel);
                // Tag the ingress relation so sibling routers in this AS
                // can export valley-free.
                strip_relation_tags(attrs);
                attrs.communities.push(relation_tag(rel));
                ImportAction::Accept
            }
            Policy::FlatPreference => {
                attrs.local_pref = DEFAULT_LOCAL_PREF;
                ImportAction::Accept
            }
        }
    }
}

/// Export scoping over eBGP (Gao–Rexford): may a route learned from
/// `learned_from` be exported to a neighbour related to us as `export_to`?
///
/// `learned_from = None` means locally originated (always exported).
/// iBGP-learned routes are handled by the speaker (exported over eBGP only
/// when the local AS provides transit, which VNS does not).
pub fn may_export(learned_from: Option<Relation>, export_to: Relation) -> bool {
    match learned_from {
        // Own routes go to everyone.
        None => true,
        // Customer routes go to everyone (we are paid to carry them).
        Some(Relation::Customer) => true,
        // Peer/provider routes only go to customers (no free transit).
        Some(Relation::Peer) | Some(Relation::Provider) => export_to == Relation::Customer,
    }
}

/// A scope tag used by speakers when deciding eBGP export of iBGP-learned
/// routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportScope {
    /// Export own + customer routes only (default; VNS and all sane ASes).
    NoTransitForIbgp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{Origin, SpeakerId};

    fn attrs() -> RouteAttrs {
        RouteAttrs {
            local_pref: 0,
            as_path: vec![].into(),
            origin: Origin::Igp,
            med: 0,
            communities: vec![],
            next_hop: SpeakerId(0),
            originator_id: None,
            cluster_list: vec![],
        }
    }

    #[test]
    fn inverse_relations() {
        assert_eq!(Relation::Customer.inverse(), Relation::Provider);
        assert_eq!(Relation::Provider.inverse(), Relation::Customer);
        assert_eq!(Relation::Peer.inverse(), Relation::Peer);
    }

    #[test]
    fn gao_rexford_preference_order() {
        assert!(
            gao_rexford_local_pref(Relation::Customer) > gao_rexford_local_pref(Relation::Peer)
        );
        assert!(
            gao_rexford_local_pref(Relation::Peer) > gao_rexford_local_pref(Relation::Provider)
        );
    }

    #[test]
    fn import_sets_local_pref() {
        let mut a = attrs();
        assert_eq!(
            Policy::GaoRexford.import_ebgp(Relation::Peer, &mut a),
            ImportAction::Accept
        );
        assert_eq!(a.local_pref, 110);
        let mut b = attrs();
        Policy::FlatPreference.import_ebgp(Relation::Customer, &mut b);
        assert_eq!(b.local_pref, DEFAULT_LOCAL_PREF);
    }

    #[test]
    fn valley_free_export_matrix() {
        use Relation::*;
        // (learned_from, export_to) -> allowed
        let cases = [
            (None, Customer, true),
            (None, Peer, true),
            (None, Provider, true),
            (Some(Customer), Customer, true),
            (Some(Customer), Peer, true),
            (Some(Customer), Provider, true),
            (Some(Peer), Customer, true),
            (Some(Peer), Peer, false),
            (Some(Peer), Provider, false),
            (Some(Provider), Customer, true),
            (Some(Provider), Peer, false),
            (Some(Provider), Provider, false),
        ];
        for (from, to, want) in cases {
            assert_eq!(may_export(from, to), want, "from {from:?} to {to:?}");
        }
    }
}
