//! Route attributes and identifiers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::policy::Relation;

/// An Autonomous System number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A BGP speaker (router) identifier, unique across the whole simulated
/// network. Doubles as the router id used in the final decision tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpeakerId(pub u32);

impl fmt::Display for SpeakerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// An interned AS_PATH: an immutable, atomically reference-counted AS
/// sequence, nearest AS first.
///
/// At Internet scale the same path is held by every candidate that carries
/// it — per-candidate `Vec<Asn>` clones dominated `RouteAttrs` memory and
/// copy time once worlds reached 10⁴ ASes. `AsPath` shares one allocation
/// across the Adj-RIB-In entry, the Loc-RIB candidate, and every
/// Adj-RIB-Out copy derived from it: `clone` is a refcount bump, and
/// [`AsPath::prepend`] (the only mutation BGP ever performs) builds the
/// one new allocation the protocol actually requires.
///
/// Derefs to `[Asn]`, so slice reads (`len`, `iter`, `first`, `contains`)
/// work unchanged.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AsPath(Arc<[Asn]>);

impl AsPath {
    /// The empty path (locally originated routes).
    pub fn empty() -> Self {
        AsPath::default()
    }

    /// A new path with `asn` prepended — the eBGP export operation. The
    /// receiver-side path is one element longer; the original is shared,
    /// untouched.
    #[must_use]
    pub fn prepend(&self, asn: Asn) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v.into())
    }

    /// The path as a slice, nearest AS first.
    pub fn as_slice(&self) -> &[Asn] {
        &self.0
    }
}

impl Deref for AsPath {
    type Target = [Asn];

    fn deref(&self) -> &[Asn] {
        &self.0
    }
}

impl From<Vec<Asn>> for AsPath {
    fn from(v: Vec<Asn>) -> Self {
        AsPath(v.into())
    }
}

impl From<&[Asn]> for AsPath {
    fn from(v: &[Asn]) -> Self {
        AsPath(v.into())
    }
}

impl<const N: usize> From<[Asn; N]> for AsPath {
    fn from(v: [Asn; N]) -> Self {
        AsPath(v.as_slice().into())
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        AsPath(iter.into_iter().collect())
    }
}

impl PartialEq<Vec<Asn>> for AsPath {
    fn eq(&self, other: &Vec<Asn>) -> bool {
        *self.0 == other[..]
    }
}

impl PartialEq<[Asn]> for AsPath {
    fn eq(&self, other: &[Asn]) -> bool {
        *self.0 == *other
    }
}

impl<const N: usize> PartialEq<[Asn; N]> for AsPath {
    fn eq(&self, other: &[Asn; N]) -> bool {
        *self.0 == other[..]
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.0.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a AsPath {
    type Item = &'a Asn;
    type IntoIter = std::slice::Iter<'a, Asn>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// The ORIGIN attribute; lower is preferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// Learned from an interior protocol (best).
    Igp,
    /// Learned via EGP.
    Egp,
    /// Redistributed/unknown (worst).
    Incomplete,
}

/// BGP community values. Only the well-known ones the paper uses are
/// modelled, plus free-form tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Community {
    /// RFC 1997 `NO_EXPORT`: do not advertise over eBGP. The management
    /// interface tags injected more-specifics with this so they never leak
    /// outside VNS (Sec 3.2).
    NoExport,
    /// RFC 1997 `NO_ADVERTISE`: do not advertise to any peer.
    NoAdvertise,
    /// Operator-defined tag.
    Tag(u32),
}

/// Default LOCAL_PREF assigned when a route carries none (RFC-typical 100;
/// the paper's geo values are always "much higher than the default of 100").
pub const DEFAULT_LOCAL_PREF: u32 = 100;

/// The attributes of one route announcement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAttrs {
    /// LOCAL_PREF — higher wins; meaningful only inside an AS.
    pub local_pref: u32,
    /// AS_PATH, nearest AS first (interned; see [`AsPath`]).
    pub as_path: AsPath,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// Multi-Exit Discriminator — lower wins, compared between routes from
    /// the same neighbour AS.
    pub med: u32,
    /// Communities.
    pub communities: Vec<Community>,
    /// The border router through which traffic exits the local AS (set to
    /// the receiving router at eBGP ingress, preserved across iBGP — i.e.
    /// next-hop-self convention).
    pub next_hop: SpeakerId,
    /// ORIGINATOR_ID — set by a route reflector to the router that injected
    /// the route into iBGP (loop prevention).
    pub originator_id: Option<SpeakerId>,
    /// CLUSTER_LIST — cluster ids prepended by each reflector (loop
    /// prevention + tie-break).
    pub cluster_list: Vec<u32>,
}

impl RouteAttrs {
    /// Attributes for a locally originated route on router `me`.
    pub fn originate(me: SpeakerId) -> Self {
        Self {
            local_pref: DEFAULT_LOCAL_PREF,
            as_path: AsPath::empty(),
            origin: Origin::Igp,
            med: 0,
            communities: Vec::new(),
            next_hop: me,
            originator_id: None,
            cluster_list: Vec::new(),
        }
    }

    /// Whether a community is present.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.contains(&c)
    }

    /// The neighbouring AS this route was heard from (first AS on the
    /// path); `None` for locally originated routes.
    pub fn neighbor_as(&self) -> Option<Asn> {
        self.as_path.first().copied()
    }

    /// The AS that originated the prefix (last AS on the path); `None` for
    /// locally originated routes.
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path.last().copied()
    }

    /// Whether `asn` appears on the AS path (eBGP loop check).
    pub fn path_contains(&self, asn: Asn) -> bool {
        self.as_path.contains(&asn)
    }
}

/// How a RIB entry was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSource {
    /// Learned over eBGP from `peer` in `peer_as`, related to us as
    /// `relation` (our view: the peer is our customer/peer/provider).
    Ebgp {
        /// Sending router.
        peer: SpeakerId,
        /// Its AS.
        peer_as: Asn,
        /// Our business relationship to that AS.
        relation: Relation,
    },
    /// Learned over iBGP from `peer`.
    Ibgp {
        /// Sending router (RR or client).
        peer: SpeakerId,
    },
    /// Locally originated.
    Local,
}

impl RouteSource {
    /// True for eBGP-learned routes.
    pub fn is_ebgp(&self) -> bool {
        matches!(self, RouteSource::Ebgp { .. })
    }

    /// True for iBGP-learned routes.
    pub fn is_ibgp(&self) -> bool {
        matches!(self, RouteSource::Ibgp { .. })
    }

    /// The sending router, `None` for local routes.
    pub fn peer(&self) -> Option<SpeakerId> {
        match self {
            RouteSource::Ebgp { peer, .. } | RouteSource::Ibgp { peer } => Some(*peer),
            RouteSource::Local => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_ordering() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn path_helpers() {
        let mut a = RouteAttrs::originate(SpeakerId(1));
        assert_eq!(a.neighbor_as(), None);
        assert_eq!(a.origin_as(), None);
        a.as_path = vec![Asn(10), Asn(20), Asn(30)].into();
        assert_eq!(a.neighbor_as(), Some(Asn(10)));
        assert_eq!(a.origin_as(), Some(Asn(30)));
        assert!(a.path_contains(Asn(20)));
        assert!(!a.path_contains(Asn(40)));
    }

    #[test]
    fn as_path_prepend_shares_tail_allocation() {
        let base: AsPath = vec![Asn(20), Asn(30)].into();
        let longer = base.prepend(Asn(10));
        assert_eq!(longer, vec![Asn(10), Asn(20), Asn(30)]);
        // The original is untouched and clones are refcount bumps.
        assert_eq!(base, vec![Asn(20), Asn(30)]);
        let copy = longer.clone();
        assert!(std::ptr::eq(copy.as_slice(), longer.as_slice()));
    }

    #[test]
    fn as_path_slice_reads() {
        let p: AsPath = vec![Asn(1), Asn(2)].into();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.contains(&Asn(2)));
        assert_eq!(p.first(), Some(&Asn(1)));
        assert_eq!(p.last(), Some(&Asn(2)));
        assert!(AsPath::empty().is_empty());
        let collected: Vec<Asn> = p.iter().copied().collect();
        assert_eq!(p, collected);
    }

    #[test]
    fn communities() {
        let mut a = RouteAttrs::originate(SpeakerId(1));
        assert!(!a.has_community(Community::NoExport));
        a.communities.push(Community::NoExport);
        a.communities.push(Community::Tag(7));
        assert!(a.has_community(Community::NoExport));
        assert!(a.has_community(Community::Tag(7)));
        assert!(!a.has_community(Community::Tag(8)));
    }

    #[test]
    fn source_kinds() {
        let e = RouteSource::Ebgp {
            peer: SpeakerId(2),
            peer_as: Asn(2),
            relation: Relation::Peer,
        };
        assert!(e.is_ebgp() && !e.is_ibgp());
        assert_eq!(e.peer(), Some(SpeakerId(2)));
        assert_eq!(RouteSource::Local.peer(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Asn(64500).to_string(), "AS64500");
        assert_eq!(SpeakerId(3).to_string(), "R3");
    }
}
