//! The BGP route-selection process.
//!
//! Implemented exactly in the order the paper summarises (Sec 3.2), which is
//! the RFC 4271 order restricted to the attributes we model:
//!
//! 1. highest LOCAL_PREF (administrative preference — the knob the geo
//!    route reflector turns);
//! 2. shortest AS_PATH;
//! 3. lowest ORIGIN;
//! 4. lowest MED, compared between routes from the same neighbour AS;
//! 5. eBGP-learned over iBGP-learned (first "exit quickly" rule);
//! 6. lowest IGP metric to the next hop (hot-potato proper);
//! 7. shortest CLUSTER_LIST (reflection tie-break);
//! 8. lowest sender router id (deterministic final tie-break).

use std::cmp::Ordering;

#[cfg(test)]
use crate::route::SpeakerId;
use crate::route::{RouteAttrs, RouteSource};

/// A candidate route as held in an Adj-RIB-In.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Route attributes after import policy.
    pub attrs: RouteAttrs,
    /// How it was learned.
    pub source: RouteSource,
}

/// Per-router inputs the decision process needs beyond the routes
/// themselves.
pub struct DecisionContext<'a> {
    /// "Distance to the exit" cost for a candidate — the hot-potato input.
    ///
    /// For a router inside a multi-router AS this is the IGP cost to the
    /// candidate's next hop (0 for its own eBGP routes). For an AS-level
    /// speaker (`vns-topo` models each external AS as one speaker) it is
    /// the intra-AS haul from the AS's traffic centre to the eBGP session's
    /// interconnect city, which reproduces hot-potato exit selection at AS
    /// granularity. `None` means unreachable — such routes lose the
    /// tie-break.
    pub exit_cost: &'a dyn Fn(&Candidate) -> Option<u64>,
}

impl std::fmt::Debug for DecisionContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecisionContext").finish_non_exhaustive()
    }
}

impl DecisionContext<'_> {
    /// A context with no IGP (single-router ASes): every exit costs 0.
    pub fn no_igp() -> DecisionContext<'static> {
        DecisionContext {
            exit_cost: &|_| Some(0),
        }
    }
}

/// Sender router id used for the final tie-break: the announcing peer, or
/// self for local routes (locals always win earlier steps anyway).
fn sender_id(c: &Candidate) -> u32 {
    c.source.peer().map_or(0, |p| p.0)
}

/// Compares two candidates; `Ordering::Greater` means `a` is preferred.
pub fn compare_routes(a: &Candidate, b: &Candidate, ctx: &DecisionContext<'_>) -> Ordering {
    // 1. LOCAL_PREF, higher wins.
    match a.attrs.local_pref.cmp(&b.attrs.local_pref) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 2. AS_PATH length, shorter wins.
    match b.attrs.as_path.len().cmp(&a.attrs.as_path.len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 3. ORIGIN, lower wins.
    match b.attrs.origin.cmp(&a.attrs.origin) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 4. MED, lower wins, only between routes from the same neighbour AS.
    if let (Some(na), Some(nb)) = (a.attrs.neighbor_as(), b.attrs.neighbor_as()) {
        if na == nb {
            match b.attrs.med.cmp(&a.attrs.med) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
    }
    // 5. eBGP over iBGP (local routes rank with eBGP here; in practice they
    //    differ in earlier steps or are the only candidate).
    let ebgp_rank = |c: &Candidate| match c.source {
        RouteSource::Local | RouteSource::Ebgp { .. } => 1,
        RouteSource::Ibgp { .. } => 0,
    };
    match ebgp_rank(a).cmp(&ebgp_rank(b)) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 6. IGP metric to the exit, lower wins; unknown cost loses.
    let cost = |c: &Candidate| (ctx.exit_cost)(c).unwrap_or(u64::MAX);
    match cost(b).cmp(&cost(a)) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 7. Shorter CLUSTER_LIST wins.
    match b.attrs.cluster_list.len().cmp(&a.attrs.cluster_list.len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 8. Lowest sender router id wins.
    sender_id(b).cmp(&sender_id(a))
}

/// Picks the best candidate from a non-empty iterator; `None` on empty.
pub fn select_best<'a, I>(candidates: I, ctx: &DecisionContext<'_>) -> Option<&'a Candidate>
where
    I: IntoIterator<Item = &'a Candidate>,
{
    candidates
        .into_iter()
        .fold(None, |best: Option<&'a Candidate>, c| match best {
            None => Some(c),
            Some(b) => {
                if compare_routes(c, b, ctx) == Ordering::Greater {
                    Some(c)
                } else {
                    Some(b)
                }
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Relation;
    use crate::route::{Asn, Origin};

    fn cand(lp: u32, path: Vec<u32>, src: RouteSource) -> Candidate {
        Candidate {
            attrs: RouteAttrs {
                local_pref: lp,
                as_path: path.into_iter().map(Asn).collect(),
                origin: Origin::Igp,
                med: 0,
                communities: vec![],
                next_hop: SpeakerId(1),
                originator_id: None,
                cluster_list: vec![],
            },
            source: src,
        }
    }

    fn ebgp(peer: u32) -> RouteSource {
        RouteSource::Ebgp {
            peer: SpeakerId(peer),
            peer_as: Asn(peer),
            relation: Relation::Provider,
        }
    }

    fn ibgp(peer: u32) -> RouteSource {
        RouteSource::Ibgp {
            peer: SpeakerId(peer),
        }
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let ctx = DecisionContext::no_igp();
        let a = cand(200, vec![1, 2, 3, 4], ebgp(9));
        let b = cand(100, vec![1], ebgp(8));
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);
    }

    #[test]
    fn path_length_then_origin() {
        let ctx = DecisionContext::no_igp();
        let a = cand(100, vec![1, 2], ebgp(9));
        let b = cand(100, vec![1, 2, 3], ebgp(8));
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);

        let mut c = cand(100, vec![1, 2], ebgp(9));
        c.attrs.origin = Origin::Incomplete;
        let d = cand(100, vec![3, 4], ebgp(8));
        assert_eq!(compare_routes(&d, &c, &ctx), Ordering::Greater);
    }

    #[test]
    fn med_only_within_same_neighbor() {
        let ctx = DecisionContext::no_igp();
        // Same neighbour AS 7: lower MED wins.
        let mut a = cand(100, vec![7, 9], ebgp(1));
        a.attrs.med = 10;
        let mut b = cand(100, vec![7, 8], ebgp(2));
        b.attrs.med = 20;
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);
        // Different neighbour AS: MED skipped, falls to router id (lower
        // sender wins).
        let mut c = cand(100, vec![5, 9], ebgp(1));
        c.attrs.med = 99;
        let mut d = cand(100, vec![7, 8], ebgp(2));
        d.attrs.med = 0;
        assert_eq!(compare_routes(&c, &d, &ctx), Ordering::Greater);
    }

    #[test]
    fn ebgp_beats_ibgp() {
        let ctx = DecisionContext::no_igp();
        let a = cand(100, vec![1, 2], ebgp(9));
        let b = cand(100, vec![1, 2], ibgp(3));
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);
        assert_eq!(compare_routes(&b, &a, &ctx), Ordering::Less);
    }

    #[test]
    fn igp_metric_hot_potato() {
        // Two iBGP routes to next hops 10 (cost 5) and 20 (cost 50): hot
        // potato picks the nearer egress.
        let costs = |c: &Candidate| Some(if c.attrs.next_hop.0 == 10 { 5 } else { 50 });
        let ctx = DecisionContext { exit_cost: &costs };
        let mut a = cand(100, vec![1, 2], ibgp(3));
        a.attrs.next_hop = SpeakerId(10);
        let mut b = cand(100, vec![4, 5], ibgp(6));
        b.attrs.next_hop = SpeakerId(20);
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);
    }

    #[test]
    fn unknown_igp_cost_loses() {
        let costs = |c: &Candidate| {
            if c.attrs.next_hop.0 == 10 {
                Some(5)
            } else {
                None
            }
        };
        let ctx = DecisionContext { exit_cost: &costs };
        let mut a = cand(100, vec![1, 2], ibgp(3));
        a.attrs.next_hop = SpeakerId(10);
        let mut b = cand(100, vec![4, 5], ibgp(6));
        b.attrs.next_hop = SpeakerId(99);
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);
    }

    #[test]
    fn cluster_list_then_router_id() {
        let ctx = DecisionContext::no_igp();
        let mut a = cand(100, vec![1, 2], ibgp(9));
        a.attrs.cluster_list = vec![1];
        let mut b = cand(100, vec![4, 5], ibgp(3));
        b.attrs.cluster_list = vec![1, 2];
        assert_eq!(compare_routes(&a, &b, &ctx), Ordering::Greater);

        let c = cand(100, vec![1, 2], ibgp(3));
        let d = cand(100, vec![4, 5], ibgp(9));
        assert_eq!(compare_routes(&c, &d, &ctx), Ordering::Greater);
    }

    #[test]
    fn total_order_antisymmetry_on_samples() {
        let ctx = DecisionContext::no_igp();
        let cands = vec![
            cand(100, vec![1], ebgp(2)),
            cand(100, vec![1], ibgp(3)),
            cand(130, vec![1, 2, 3], ebgp(4)),
            cand(100, vec![1, 2], ebgp(5)),
        ];
        for x in &cands {
            assert_eq!(compare_routes(x, x, &ctx), Ordering::Equal);
            for y in &cands {
                let xy = compare_routes(x, y, &ctx);
                let yx = compare_routes(y, x, &ctx);
                assert_eq!(xy, yx.reverse());
            }
        }
    }

    #[test]
    fn select_best_works() {
        let ctx = DecisionContext::no_igp();
        let cands = [
            cand(100, vec![1, 2], ebgp(2)),
            cand(130, vec![1, 2, 3], ebgp(4)),
            cand(100, vec![1], ebgp(5)),
        ];
        let best = select_best(cands.iter(), &ctx).unwrap();
        assert_eq!(best.attrs.local_pref, 130);
        assert!(select_best([].iter(), &ctx).is_none());
    }
}
