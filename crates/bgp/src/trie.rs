//! A path-compressed binary prefix trie with longest-prefix match.
//!
//! Forwarding lookups (`vns-topo` resolving a destination IP to a route)
//! and the management interface's more-specific injection (Sec 3.2) need
//! longest-prefix match over the whole routing table. At Internet scale
//! (≥10⁵ prefixes) the old one-node-per-bit trie spent a node allocation
//! and a pointer chase per *bit*; this version is a Patricia/radix trie:
//! every node stores its full [`Prefix`] (the skip-string is implicit in
//! the gap between a parent's length and a child's), so the structure
//! holds one node per stored prefix plus at most one branch node per
//! fork — `2n - 1` nodes worst case, and lookups touch at most one node
//! per branching bit instead of one per address bit.
//!
//! Removal prunes: empty leaves are deleted and pass-through branch nodes
//! are merged back into their single child, so adversarial churn
//! (PR 8's forged-registry attack inserts and removes more-specifics all
//! day) cannot bloat the trie. [`ScanTable`] is the deliberately naive
//! linear-scan reference oracle the property tests compare against.

use crate::prefix::Prefix;

/// A map from [`Prefix`] to `V` supporting exact and longest-prefix lookups.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Option<Box<Node<V>>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    /// The full prefix this node stands for. A child's length may exceed
    /// its parent's by more than one — the bits in between are the
    /// compressed skip-string, recoverable from the child's own address.
    prefix: Prefix,
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn leaf(prefix: Prefix, value: V) -> Box<Self> {
        Box::new(Self {
            prefix,
            value: Some(value),
            children: [None, None],
        })
    }
}

/// Bit `i` (0 = most significant) of `addr`.
fn bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

/// Length of the longest common prefix of `a` and `b`, capped at the
/// shorter of the two. Addresses are canonical (bits past the length are
/// zero), so XOR-ing the raw words is exact up to the cap.
fn common_len(a: &Prefix, b: &Prefix) -> u8 {
    let cap = a.len().min(b.len());
    let diff = a.addr() ^ b.addr();
    (diff.leading_zeros() as u8).min(cap)
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self { root: None, len: 0 }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated nodes (stored prefixes plus branch points).
    /// Bounded by `2 * len - 1`; the prune-on-remove tests assert the
    /// bound holds after churn.
    pub fn node_count(&self) -> usize {
        fn count<V>(node: &Node<V>) -> usize {
            1 + node
                .children
                .iter()
                .flatten()
                .map(|c| count(c))
                .sum::<usize>()
        }
        self.root.as_deref().map_or(0, count)
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        enum Step {
            Place,
            Replace,
            Descend(usize),
            Splice(u8),
        }
        let mut slot = &mut self.root;
        loop {
            let step = match slot.as_deref() {
                None => Step::Place,
                Some(node) => {
                    let cpl = common_len(&prefix, &node.prefix);
                    if cpl == node.prefix.len() && cpl == prefix.len() {
                        Step::Replace
                    } else if cpl == node.prefix.len() {
                        // The node's prefix covers ours: descend along our
                        // next bit.
                        Step::Descend(bit(prefix.addr(), node.prefix.len()))
                    } else {
                        Step::Splice(cpl)
                    }
                }
            };
            match step {
                Step::Place => {
                    *slot = Some(Node::leaf(prefix, value));
                    self.len += 1;
                    return None;
                }
                Step::Replace => {
                    let node = slot.as_deref_mut().expect("node present");
                    let old = node.value.replace(value);
                    if old.is_none() {
                        self.len += 1;
                    }
                    return old;
                }
                Step::Descend(b) => {
                    slot = &mut slot.as_deref_mut().expect("node present").children[b];
                }
                Step::Splice(cpl) => {
                    // The new prefix diverges above this node: splice in
                    // either the new prefix itself (when it covers the node)
                    // or a valueless branch node at the fork bit.
                    let old = slot.take().expect("node present");
                    let b_old = bit(old.prefix.addr(), cpl);
                    let new = if cpl == prefix.len() {
                        let mut new = Node::leaf(prefix, value);
                        new.children[b_old] = Some(old);
                        new
                    } else {
                        let mut fork = Box::new(Node {
                            prefix: Prefix::new(prefix.addr(), cpl),
                            value: None,
                            children: [None, None],
                        });
                        fork.children[b_old] = Some(old);
                        fork.children[bit(prefix.addr(), cpl)] = Some(Node::leaf(prefix, value));
                        fork
                    };
                    *slot = Some(new);
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Removes the value at exactly `prefix`, pruning any node the removal
    /// leaves empty and merging pass-through branch nodes into their only
    /// child (the trie never retains structure for prefixes it no longer
    /// stores).
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        fn rec<V>(slot: &mut Option<Box<Node<V>>>, prefix: &Prefix) -> Option<V> {
            let node = slot.as_deref_mut()?;
            let cpl = common_len(prefix, &node.prefix);
            let old = if cpl == node.prefix.len() && cpl == prefix.len() {
                node.value.take()
            } else if cpl == node.prefix.len() {
                rec(
                    &mut node.children[bit(prefix.addr(), node.prefix.len())],
                    prefix,
                )
            } else {
                return None;
            };
            if node.value.is_none() {
                match (node.children[0].is_some(), node.children[1].is_some()) {
                    (false, false) => *slot = None,
                    (true, false) => *slot = node.children[0].take(),
                    (false, true) => *slot = node.children[1].take(),
                    (true, true) => {}
                }
            }
            old
        }
        let old = rec(&mut self.root, prefix);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Walks to the node holding exactly `prefix`.
    fn find(&self, prefix: &Prefix) -> Option<&Node<V>> {
        let mut node = self.root.as_deref()?;
        loop {
            let cpl = common_len(prefix, &node.prefix);
            if cpl == node.prefix.len() && cpl == prefix.len() {
                return Some(node);
            }
            if cpl != node.prefix.len() {
                return None;
            }
            node = node.children[bit(prefix.addr(), node.prefix.len())].as_deref()?;
        }
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        self.find(prefix)?.value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = self.root.as_deref_mut()?;
        loop {
            let cpl = common_len(prefix, &node.prefix);
            if cpl == node.prefix.len() && cpl == prefix.len() {
                return node.value.as_mut();
            }
            if cpl != node.prefix.len() {
                return None;
            }
            node = node.children[bit(prefix.addr(), node.prefix.len())].as_deref_mut()?;
        }
    }

    /// Longest-prefix match for a host address: the most specific stored
    /// prefix containing `ip`, with its value. A stored `/0` default route
    /// matches every address but is shadowed by any more-specific hit.
    pub fn lookup(&self, ip: u32) -> Option<(Prefix, &V)> {
        let mut best: Option<(Prefix, &V)> = None;
        let mut node = self.root.as_deref()?;
        loop {
            if !node.prefix.contains(ip) {
                break;
            }
            if let Some(v) = &node.value {
                best = Some((node.prefix, v));
            }
            if node.prefix.len() >= 32 {
                break;
            }
            match node.children[bit(ip, node.prefix.len())].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// Iterates over all `(prefix, value)` pairs in `(addr, len)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        fn collect<'a, V>(node: &'a Node<V>, out: &mut Vec<(Prefix, &'a V)>) {
            if let Some(v) = &node.value {
                out.push((node.prefix, v));
            }
            for child in node.children.iter().flatten() {
                collect(child, out);
            }
        }
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = self.root.as_deref() {
            collect(root, &mut out);
        }
        out.into_iter()
    }

    /// All stored prefixes in address order.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.iter().map(|(p, _)| p).collect()
    }
}

/// The linear-scan reference oracle: the same map contract as
/// [`PrefixTrie`], implemented as an unordered `Vec` scan — slow, but so
/// simple it is obviously correct. The trie property tests drive both
/// structures with identical operation sequences and require identical
/// observations; this is the model side of that comparison.
#[derive(Debug, Clone, Default)]
pub struct ScanTable<V> {
    entries: Vec<(Prefix, V)>,
}

impl<V> ScanTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        for (p, v) in &mut self.entries {
            if *p == prefix {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((prefix, value));
        None
    }

    /// Removes the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        let i = self.entries.iter().position(|(p, _)| p == prefix)?;
        Some(self.entries.swap_remove(i).1)
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        self.entries
            .iter()
            .find(|(p, _)| p == prefix)
            .map(|(_, v)| v)
    }

    /// Longest-prefix match by scanning every entry.
    pub fn lookup(&self, ip: u32) -> Option<(Prefix, &V)> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(ip))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, v)| (*p, v))
    }

    /// All stored prefixes in `(addr, len)` order, matching
    /// [`PrefixTrie::prefixes`].
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = self.entries.iter().map(|(p, _)| *p).collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        let (pre, v) = t.lookup(0x0a010203).unwrap();
        assert_eq!((pre, *v), (p("10.1.2.0/24"), "twentyfour"));
        let (pre, v) = t.lookup(0x0a010303).unwrap();
        assert_eq!((pre, *v), (p("10.1.0.0/16"), "sixteen"));
        let (pre, v) = t.lookup(0x0aff0000).unwrap();
        assert_eq!((pre, *v), (p("10.0.0.0/8"), "eight"));
        assert_eq!(t.lookup(0x0b000000), None);
    }

    #[test]
    fn default_route_catches_all() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, "default");
        t.insert(p("10.0.0.0/8"), "ten");
        assert_eq!(t.lookup(0xdeadbeef).unwrap().1, &"default");
        assert_eq!(t.lookup(0x0a000001).unwrap().1, &"ten");
    }

    #[test]
    fn default_route_shadowed_then_reexposed() {
        // /0 must lose to any more-specific and win again once the
        // more-specific is removed — the LPM shape PR 8's forged-registry
        // attack churns all day.
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, "default");
        t.insert(p("10.0.0.0/8"), "ten");
        t.insert(p("10.1.0.0/16"), "ten-one");
        assert_eq!(t.lookup(0x0a010001).unwrap().1, &"ten-one");
        t.remove(&p("10.1.0.0/16"));
        assert_eq!(t.lookup(0x0a010001).unwrap().1, &"ten");
        t.remove(&p("10.0.0.0/8"));
        assert_eq!(t.lookup(0x0a010001).unwrap().1, &"default");
        assert_eq!(t.lookup(0x0a010001).unwrap().0, Prefix::DEFAULT);
    }

    #[test]
    fn slash32() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.lookup(0x01020304).unwrap().1, &"host");
        assert_eq!(t.lookup(0x01020305), None);
        // A /32 differing in only the last bit forks at bit 31.
        t.insert(p("1.2.3.5/32"), "other");
        assert_eq!(t.lookup(0x01020305).unwrap().1, &"other");
        assert_eq!(t.lookup(0x01020304).unwrap().1, &"host");
    }

    #[test]
    fn iteration_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.168.0.0/16"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let order: Vec<Prefix> = t.prefixes();
        assert_eq!(
            order,
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")]
        );
    }

    #[test]
    fn node_count_is_compressed() {
        // n stored prefixes never need more than 2n-1 nodes, however deep
        // the prefixes are — the one-node-per-bit trie used ~24 nodes for
        // a lone /24.
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), 0);
        assert_eq!(t.node_count(), 1);
        t.insert(p("10.1.3.0/24"), 1);
        // Two leaves plus the fork at /23.
        assert_eq!(t.node_count(), 3);
        t.insert(p("10.1.2.0/23"), 2);
        // The fork node now carries the /23 value — still 3 nodes.
        assert_eq!(t.node_count(), 3);
        assert!(t.node_count() < 2 * t.len());
    }

    #[test]
    fn remove_prunes_chains() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 0);
        let baseline = t.node_count();
        // Adversarial more-specific churn: deep injections then removal.
        for i in 0..64u32 {
            t.insert(Prefix::new(0x0a00_0000 | (i << 8), 24), i);
            t.insert(Prefix::new(0x0a00_0000 | (i << 8) | 0x80, 25), i);
        }
        assert!(t.node_count() < 2 * t.len());
        for i in 0..64u32 {
            t.remove(&Prefix::new(0x0a00_0000 | (i << 8), 24));
            t.remove(&Prefix::new(0x0a00_0000 | (i << 8) | 0x80, 25));
        }
        // Everything the churn added is gone, structure included.
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), baseline);
    }

    #[test]
    fn lpm_matches_scan_oracle_on_random_data() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut t = PrefixTrie::new();
        let mut oracle = ScanTable::new();
        for i in 0..500 {
            // Full length range: /0 default routes through /32 hosts.
            let len = rng.gen_range(0..=32);
            let addr: u32 = rng.gen();
            let pre = Prefix::new(addr, len);
            assert_eq!(t.insert(pre, i), oracle.insert(pre, i));
        }
        assert_eq!(t.len(), oracle.len());
        assert_eq!(t.prefixes(), oracle.prefixes());
        for _ in 0..2000 {
            let ip: u32 = rng.gen();
            let got = t.lookup(ip).map(|(p, v)| (p, *v));
            let want = oracle.lookup(ip).map(|(p, v)| (p, *v));
            assert_eq!(got, want, "lookup mismatch for {ip:#x}");
        }
    }
}
