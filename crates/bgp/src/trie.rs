//! A binary prefix trie with longest-prefix match.
//!
//! Forwarding lookups (`vns-topo` resolving a destination IP to a route)
//! and the management interface's more-specific injection (Sec 3.2) both
//! need longest-prefix match over tens of thousands of prefixes; a simple
//! uncompressed binary trie is plenty at that scale and trivially correct.

use crate::prefix::Prefix;

/// A map from [`Prefix`] to `V` supporting exact and longest-prefix lookups.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn empty() -> Self {
        Self {
            value: None,
            children: [None, None],
        }
    }
}

/// Bit `i` (0 = most significant) of `addr`.
fn bit(addr: u32, i: u8) -> usize {
    ((addr >> (31 - i)) & 1) as usize
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self {
            root: Node::empty(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.addr(), i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::empty()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes the value at exactly `prefix`.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        // Simple non-compacting removal: orphan interior nodes are left in
        // place (fine for our workloads, which rarely delete).
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.addr(), i);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.addr(), i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Exact-match mutable lookup.
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.addr(), i);
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix match for a host address: the most specific stored
    /// prefix containing `ip`, with its value.
    pub fn lookup(&self, ip: u32) -> Option<(Prefix, &V)> {
        let mut node = &self.root;
        let mut best: Option<(Prefix, &V)> = None;
        if let Some(v) = &node.value {
            best = Some((Prefix::DEFAULT, v));
        }
        for i in 0..32u8 {
            let b = bit(ip, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = &node.value {
                        best = Some((Prefix::new(ip, i + 1), v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Iterates over all `(prefix, value)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::new();
        collect(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    /// All stored prefixes in address order.
    pub fn prefixes(&self) -> Vec<Prefix> {
        self.iter().map(|(p, _)| p).collect()
    }
}

fn collect<'a, V>(node: &'a Node<V>, addr: u32, len: u8, out: &mut Vec<(Prefix, &'a V)>) {
    if let Some(v) = &node.value {
        out.push((Prefix::new(addr, len), v));
    }
    if len >= 32 {
        return;
    }
    if let Some(c) = node.children[0].as_deref() {
        collect(c, addr, len + 1, out);
    }
    if let Some(c) = node.children[1].as_deref() {
        collect(c, addr | (1 << (31 - len)), len + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }

    #[test]
    fn longest_prefix_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        let (pre, v) = t.lookup(0x0a010203).unwrap();
        assert_eq!((pre, *v), (p("10.1.2.0/24"), "twentyfour"));
        let (pre, v) = t.lookup(0x0a010303).unwrap();
        assert_eq!((pre, *v), (p("10.1.0.0/16"), "sixteen"));
        let (pre, v) = t.lookup(0x0aff0000).unwrap();
        assert_eq!((pre, *v), (p("10.0.0.0/8"), "eight"));
        assert_eq!(t.lookup(0x0b000000), None);
    }

    #[test]
    fn default_route_catches_all() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT, "default");
        t.insert(p("10.0.0.0/8"), "ten");
        assert_eq!(t.lookup(0xdeadbeef).unwrap().1, &"default");
        assert_eq!(t.lookup(0x0a000001).unwrap().1, &"ten");
    }

    #[test]
    fn slash32() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.lookup(0x01020304).unwrap().1, &"host");
        assert_eq!(t.lookup(0x01020305), None);
    }

    #[test]
    fn iteration_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.168.0.0/16"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        let order: Vec<Prefix> = t.prefixes();
        assert_eq!(
            order,
            vec![p("10.0.0.0/8"), p("10.1.0.0/16"), p("192.168.0.0/16")]
        );
    }

    #[test]
    fn lpm_matches_naive_scan_on_random_data() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut t = PrefixTrie::new();
        let mut table = Vec::new();
        for i in 0..500 {
            let len = rng.gen_range(8..=28);
            let addr: u32 = rng.gen();
            let pre = Prefix::new(addr, len);
            t.insert(pre, i);
            table.push((pre, i));
        }
        // Duplicate prefixes overwrite in the trie; keep the last value in
        // the naive table too.
        let naive_lookup = |ip: u32| {
            table
                .iter()
                .filter(|(pre, _)| pre.contains(ip))
                .max_by_key(|(pre, _)| pre.len())
                .map(|(pre, _)| {
                    // Resolve duplicates at max length by taking the last
                    // inserted entry of that exact prefix.
                    let v = table
                        .iter()
                        .rev()
                        .find(|(q, _)| q == pre)
                        .map(|(_, v)| *v)
                        .unwrap();
                    (*pre, v)
                })
        };
        for _ in 0..2000 {
            let ip: u32 = rng.gen();
            let got = t.lookup(ip).map(|(p, v)| (p, *v));
            let want = naive_lookup(ip);
            match (got, want) {
                (None, None) => {}
                (Some((gp, gv)), Some((wp, wv))) => {
                    assert_eq!(gp.len(), wp.len(), "match specificity differs for {ip:#x}");
                    assert_eq!(gp, wp);
                    assert_eq!(gv, wv);
                }
                other => panic!("mismatch for {ip:#x}: {other:?}"),
            }
        }
    }
}
