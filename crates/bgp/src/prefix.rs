//! IPv4 prefixes.

use std::fmt;
use std::str::FromStr;

/// An IPv4 prefix: a 32-bit address and a mask length.
///
/// The address is stored canonicalised (host bits zeroed), so two `Prefix`
/// values are equal iff they denote the same address block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

/// Errors from [`Prefix::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Missing `/` separator.
    MissingSlash,
    /// The address part is not a dotted quad.
    BadAddress,
    /// The length part is not an integer in `0..=32`.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => f.write_str("missing '/' in prefix"),
            PrefixParseError::BadAddress => f.write_str("bad dotted-quad address"),
            PrefixParseError::BadLength => f.write_str("prefix length must be 0..=32"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl Prefix {
    /// Builds a prefix, zeroing host bits.
    ///
    /// # Panics
    /// Panics when `len > 32`.
    pub fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Self {
            addr: addr & Self::mask(len),
            len,
        }
    }

    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Network address (host bits zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Mask length. (`is_empty` would be meaningless: a `/0` matches
    /// everything, not nothing.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: u32) -> bool {
        (ip & Self::mask(self.len)) == self.addr
    }

    /// Whether `other` is a subnet of (or equal to) this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The first usable probe target in the prefix (the paper probes "the
    /// first IP address in each destination prefix"). For a /32 this is the
    /// address itself; otherwise network address + 1.
    pub fn first_host(&self) -> u32 {
        if self.len == 32 {
            self.addr
        } else {
            self.addr + 1
        }
    }

    /// Splits into the two /len+1 halves; `None` for a /32.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix::new(self.addr, len);
        let hi = Prefix::new(self.addr | (1 << (32 - len)), len);
        Some((lo, hi))
    }

    /// The `i`-th subnet of this prefix at mask length `sub_len`.
    ///
    /// # Panics
    /// Panics when `sub_len` < own length or `i` is out of range.
    pub fn subnet(&self, sub_len: u8, i: u32) -> Prefix {
        assert!(sub_len >= self.len && sub_len <= 32, "bad subnet length");
        let slots = 1u64 << (sub_len - self.len);
        assert!((i as u64) < slots, "subnet index out of range");
        Prefix::new(self.addr | (i << (32 - sub_len)), sub_len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_s, len_s) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let len: u8 = len_s.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        let mut octets = [0u8; 4];
        let mut it = addr_s.split('.');
        for o in &mut octets {
            *o = it
                .next()
                .ok_or(PrefixParseError::BadAddress)?
                .parse()
                .map_err(|_| PrefixParseError::BadAddress)?;
        }
        if it.next().is_some() {
            return Err(PrefixParseError::BadAddress);
        }
        let addr = u32::from_be_bytes(octets);
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_host_bits() {
        let p = Prefix::new(0x0a0a0aff, 24);
        assert_eq!(p.addr(), 0x0a0a0a00);
        assert_eq!(p, "10.10.10.0/24".parse().unwrap());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<Prefix>(),
            Err(PrefixParseError::MissingSlash)
        );
        assert_eq!(
            "10.0.0/8".parse::<Prefix>(),
            Err(PrefixParseError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0.1/8".parse::<Prefix>(),
            Err(PrefixParseError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
        assert_eq!(
            "10.0.0.0/x".parse::<Prefix>(),
            Err(PrefixParseError::BadLength)
        );
    }

    #[test]
    fn contains_and_covers() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert!(p.contains(0x0a010203));
        assert!(!p.contains(0x0a020203));
        assert!(p.covers(&"10.1.2.0/24".parse().unwrap()));
        assert!(!p.covers(&"10.0.0.0/8".parse().unwrap()));
        assert!(p.covers(&p));
    }

    #[test]
    fn first_host() {
        let p: Prefix = "10.1.0.0/16".parse().unwrap();
        assert_eq!(p.first_host(), 0x0a010001);
        let h: Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(h.first_host(), 0x01020304);
    }

    #[test]
    fn split_halves() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!("1.1.1.1/32".parse::<Prefix>().unwrap().split().is_none());
    }

    #[test]
    fn subnets() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p.subnet(10, 3).to_string(), "10.192.0.0/10");
        assert_eq!(p.subnet(8, 0), p);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subnet_bounds_checked() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let _ = p.subnet(9, 2);
    }

    #[test]
    fn default_route() {
        assert!(Prefix::DEFAULT.contains(0xffffffff));
        assert!(Prefix::DEFAULT.contains(0));
        assert_eq!(Prefix::DEFAULT.to_string(), "0.0.0.0/0");
    }
}
