//! The convergence engine: runs a set of speakers to quiescence.
//!
//! An activation queue drives processing: delivering a message marks the
//! receiver active; an active speaker ingests its inbox, reruns the decision
//! process for dirty prefixes, and emits further messages. The queue drains
//! in router-id order, so runs are deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::decision::Candidate;
use crate::prefix::Prefix;
use crate::route::RouteSource;
pub use crate::route::SpeakerId;
use crate::speaker::{Message, PeerConfig, PeerKind, Speaker};

/// Statistics from a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConvergenceStats {
    /// Speaker activations processed.
    pub activations: u64,
    /// Messages delivered.
    pub messages: u64,
}

/// Error from [`BgpNet::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceError {
    /// The message budget was exhausted before quiescence (almost certainly
    /// a policy dispute / oscillation).
    BudgetExhausted {
        /// Messages delivered before giving up.
        messages: u64,
    },
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceError::BudgetExhausted { messages } => {
                write!(f, "BGP did not converge within {messages} messages")
            }
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Error from data-plane resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// The starting speaker does not exist.
    NoSuchSpeaker(SpeakerId),
    /// No route to the prefix at some speaker on the way.
    NoRoute(SpeakerId),
    /// A forwarding loop was detected (should not happen post-convergence).
    ForwardingLoop,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NoSuchSpeaker(s) => write!(f, "unknown speaker {s}"),
            PathError::NoRoute(s) => write!(f, "no route at {s}"),
            PathError::ForwardingLoop => f.write_str("forwarding loop"),
        }
    }
}

impl std::error::Error for PathError {}

/// A network of speakers plus in-flight messages.
#[derive(Debug, Default)]
pub struct BgpNet {
    speakers: BTreeMap<SpeakerId, Speaker>,
    inboxes: BTreeMap<SpeakerId, VecDeque<(SpeakerId, Message)>>,
    active: BTreeSet<SpeakerId>,
    /// Latched when a [`BgpNet::run`] aborted on budget exhaustion: the
    /// aborting speaker's remaining outgoing batch was dropped, so RIBs may
    /// be inconsistent in ways that `active`/inbox emptiness cannot reveal.
    torn: bool,
}

impl BgpNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a speaker.
    ///
    /// # Panics
    /// Panics when the id is already taken.
    pub fn add_speaker(&mut self, speaker: Speaker) {
        let id = speaker.id();
        let prev = self.speakers.insert(id, speaker);
        assert!(prev.is_none(), "duplicate speaker id {id}");
        self.inboxes.entry(id).or_default();
    }

    /// Number of speakers.
    pub fn len(&self) -> usize {
        self.speakers.len()
    }

    /// True when no speakers exist.
    pub fn is_empty(&self) -> bool {
        self.speakers.is_empty()
    }

    /// Immutable speaker access.
    pub fn speaker(&self, id: SpeakerId) -> Option<&Speaker> {
        self.speakers.get(&id)
    }

    /// Mutable speaker access; marks the speaker active (its state may have
    /// changed).
    pub fn speaker_mut(&mut self, id: SpeakerId) -> Option<&mut Speaker> {
        self.active.insert(id);
        self.speakers.get_mut(&id)
    }

    /// All speaker ids in order.
    pub fn speaker_ids(&self) -> impl Iterator<Item = SpeakerId> + '_ {
        self.speakers.keys().copied()
    }

    /// The union of every speaker's selected prefixes — the universe of
    /// destinations the whole-network forwarding graph is built over.
    /// A prefix only some speakers carry still shows up once here, so the
    /// graph extractor can resolve each speaker's own longest match against
    /// the full candidate set in `O(log n)` per prefix instead of scanning
    /// the Loc-RIB per lookup.
    pub fn advertised_prefixes(&self) -> BTreeSet<Prefix> {
        let mut all = BTreeSet::new();
        for sp in self.speakers.values() {
            all.extend(sp.loc_rib_prefixes());
        }
        all
    }

    /// Configures both sides of a session.
    ///
    /// # Panics
    /// Panics when either speaker is missing or the kinds are inconsistent
    /// (e.g. one side eBGP and the other iBGP).
    pub fn connect(&mut self, a: SpeakerId, a_cfg: PeerConfig, b: SpeakerId, b_cfg: PeerConfig) {
        assert_eq!(
            a_cfg.kind.is_ebgp(),
            b_cfg.kind.is_ebgp(),
            "session kind mismatch between {a} and {b}"
        );
        {
            let sa = self.speakers.get_mut(&a).expect("speaker a exists");
            sa.add_peer(b, a_cfg);
        }
        {
            let sb = self.speakers.get_mut(&b).expect("speaker b exists");
            sb.add_peer(a, b_cfg);
        }
    }

    /// Tears down the session between `a` and `b` (both directions),
    /// discarding any in-flight messages on it. Both speakers reconverge
    /// on the next [`BgpNet::run`]. Models a link/router failure between
    /// them.
    pub fn disconnect(&mut self, a: SpeakerId, b: SpeakerId) {
        if let Some(sa) = self.speakers.get_mut(&a) {
            sa.remove_peer(b);
            self.active.insert(a);
        }
        if let Some(sb) = self.speakers.get_mut(&b) {
            sb.remove_peer(a);
            self.active.insert(b);
        }
        if let Some(inbox) = self.inboxes.get_mut(&a) {
            inbox.retain(|(from, _)| *from != b);
        }
        if let Some(inbox) = self.inboxes.get_mut(&b) {
            inbox.retain(|(from, _)| *from != a);
        }
    }

    /// Re-establishes a previously [`BgpNet::disconnect`]ed session using
    /// the captured per-side configs (capture them with
    /// [`Speaker::peer_config`] before tearing the session down).
    ///
    /// Besides wiring the configs back up, both endpoints schedule a full
    /// re-advertisement: teardown cleared the Adj-RIB-Out fingerprints for
    /// the lost peer, so the fresh session receives the whole table while
    /// established peers diff every re-export to a no-op. This models BGP
    /// session establishment without the refresh-storm of poisoning every
    /// fingerprint on the speaker.
    ///
    /// # Panics
    /// Panics when either speaker is missing or the kinds are inconsistent,
    /// exactly like [`BgpNet::connect`].
    pub fn reconnect(&mut self, a: SpeakerId, a_cfg: PeerConfig, b: SpeakerId, b_cfg: PeerConfig) {
        self.connect(a, a_cfg, b, b_cfg);
        for id in [a, b] {
            let sp = self.speakers.get_mut(&id).expect("speaker exists");
            sp.schedule_initial_advertisement();
            self.active.insert(id);
        }
    }

    /// Originates a prefix at a speaker and schedules propagation.
    pub fn originate(&mut self, at: SpeakerId, prefix: Prefix) {
        self.speakers
            .get_mut(&at)
            .expect("speaker exists")
            .originate(prefix);
        self.active.insert(at);
    }

    /// True when the network holds no unprocessed work *and* no prior run
    /// aborted mid-flight: the activation queue is empty, every inbox is
    /// drained, no speaker has dirty prefixes, and no earlier
    /// [`BgpNet::run`] returned [`ConvergenceError::BudgetExhausted`].
    ///
    /// The last condition matters because budget exhaustion aborts
    /// mid-batch — the aborting speaker's undelivered messages are dropped
    /// outright, so its peers can hold stale routes even once the visible
    /// queues look empty. Measurement drivers must check this before
    /// trusting RIB contents after an incremental reconvergence.
    pub fn is_quiescent(&self) -> bool {
        !self.torn
            && self.active.is_empty()
            && self.inboxes.values().all(VecDeque::is_empty)
            && self.speakers.values().all(|s| !s.has_pending_work())
    }

    /// Runs to quiescence. `message_budget` bounds total deliveries.
    ///
    /// # Half-converged state on failure
    /// Returning [`ConvergenceError::BudgetExhausted`] leaves the network
    /// torn: `active` is non-empty, inboxes are partially drained, and —
    /// worse — the remainder of the aborting speaker's outgoing batch is
    /// dropped, so neighbours never learn updates that the speaker's own
    /// RIB already reflects. The tear is latched (see
    /// [`BgpNet::is_quiescent`]); RIB-derived measurements must not trust
    /// a net in this state. Recovery requires rebuilding the world (there
    /// is no incremental un-tear).
    pub fn run(&mut self, message_budget: u64) -> Result<ConvergenceStats, ConvergenceError> {
        let mut stats = ConvergenceStats::default();
        // Any speaker with local state changes starts active.
        for (id, s) in &self.speakers {
            if s.has_pending_work() {
                self.active.insert(*id);
            }
        }
        while let Some(id) = self.active.pop_first() {
            stats.activations += 1;
            let speaker = self.speakers.get_mut(&id).expect("active speaker exists");
            if let Some(inbox) = self.inboxes.get_mut(&id) {
                while let Some((from, msg)) = inbox.pop_front() {
                    speaker.receive(from, msg);
                }
            }
            let outgoing = speaker.process();
            for (to, msg) in outgoing {
                stats.messages += 1;
                if stats.messages > message_budget {
                    self.torn = true;
                    return Err(ConvergenceError::BudgetExhausted {
                        messages: stats.messages,
                    });
                }
                self.inboxes.entry(to).or_default().push_back((id, msg));
                self.active.insert(to);
            }
        }
        Ok(stats)
    }

    /// The best route at `speaker` for `prefix`.
    pub fn best_route(&self, speaker: SpeakerId, prefix: &Prefix) -> Option<&Candidate> {
        self.speakers.get(&speaker)?.best(prefix)
    }

    /// Resolves the router-level forwarding path from `from` towards
    /// `prefix`, following each router's Loc-RIB until the route's
    /// originator is reached. Consecutive entries alternate between
    /// intra-AS moves (towards the iBGP next hop) and eBGP hops.
    pub fn forwarding_path(
        &self,
        from: SpeakerId,
        prefix: &Prefix,
    ) -> Result<Vec<SpeakerId>, PathError> {
        let mut path = vec![from];
        let mut cur = from;
        // Generous bound: router-level paths cross each AS at most twice.
        for _ in 0..64 {
            let speaker = self
                .speakers
                .get(&cur)
                .ok_or(PathError::NoSuchSpeaker(cur))?;
            let best = speaker.best(prefix).ok_or(PathError::NoRoute(cur))?;
            match best.source {
                RouteSource::Local => return Ok(path),
                RouteSource::Ebgp { peer, .. } => {
                    if path.contains(&peer) {
                        return Err(PathError::ForwardingLoop);
                    }
                    path.push(peer);
                    cur = peer;
                }
                RouteSource::Ibgp { .. } => {
                    // Move inside the AS to the egress border router.
                    let nh = best.attrs.next_hop;
                    if nh == cur || path.contains(&nh) {
                        return Err(PathError::ForwardingLoop);
                    }
                    path.push(nh);
                    cur = nh;
                }
            }
        }
        Err(PathError::ForwardingLoop)
    }

    /// Convenience for building sessions: standard eBGP both ways with the
    /// given relation as seen from `a` (`b` gets the inverse).
    pub fn connect_ebgp(
        &mut self,
        a: SpeakerId,
        b: SpeakerId,
        a_view: crate::policy::Relation,
        import: crate::policy::Policy,
    ) {
        let a_asn = self.speakers.get(&a).expect("a exists").asn();
        let b_asn = self.speakers.get(&b).expect("b exists").asn();
        self.connect(
            a,
            PeerConfig {
                kind: PeerKind::Ebgp {
                    peer_as: b_asn,
                    relation: a_view,
                },
                import,
            },
            b,
            PeerConfig {
                kind: PeerKind::Ebgp {
                    peer_as: a_asn,
                    relation: a_view.inverse(),
                },
                import,
            },
        );
    }

    /// Convenience: reflector/client iBGP pair (`rr` treats `client` as a
    /// reflection client).
    pub fn connect_rr_client(
        &mut self,
        rr: SpeakerId,
        client: SpeakerId,
        import: crate::policy::Policy,
    ) {
        self.connect(
            rr,
            PeerConfig {
                kind: PeerKind::IbgpClient,
                import,
            },
            client,
            PeerConfig {
                kind: PeerKind::Ibgp,
                import,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, Relation};
    use crate::route::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Chain: AS1 (customer) -> AS2 (provider of 1, customer of 3) -> AS3.
    fn chain() -> BgpNet {
        let mut net = BgpNet::new();
        for i in 1..=3 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(3),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net
    }

    #[test]
    fn propagation_along_chain() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let stats = net.run(10_000).unwrap();
        assert!(stats.messages >= 2);
        let best3 = net.best_route(SpeakerId(3), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best3.attrs.as_path, vec![Asn(2), Asn(1)]);
        let path = net
            .forwarding_path(SpeakerId(3), &p("10.1.0.0/16"))
            .unwrap();
        assert_eq!(path, vec![SpeakerId(3), SpeakerId(2), SpeakerId(1)]);
    }

    #[test]
    fn valley_free_blocks_peer_transit() {
        // AS1 -peer- AS2 -peer- AS3: AS3 must NOT learn AS1's prefix via
        // AS2 (peer routes don't go to peers).
        let mut net = BgpNet::new();
        for i in 1..=3 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(3),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(2), &p("10.1.0.0/16")).is_some());
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
    }

    #[test]
    fn prefers_peer_over_provider_path() {
        // AS4 can reach AS1 via provider AS2 or via peer AS3; Gao-Rexford
        // picks the peer.
        let mut net = BgpNet::new();
        for i in 1..=4 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        // AS1 is customer of both 2 and 3.
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(3),
            Relation::Provider,
            Policy::GaoRexford,
        );
        // AS4 buys transit from AS2, peers with AS3.
        net.connect_ebgp(
            SpeakerId(4),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(4),
            SpeakerId(3),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        let best = net.best_route(SpeakerId(4), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best.attrs.neighbor_as(), Some(Asn(3)));
    }

    #[test]
    fn withdraw_reconverges() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_some());
        net.speaker_mut(SpeakerId(1))
            .unwrap()
            .withdraw_local(p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
        assert!(net.best_route(SpeakerId(2), &p("10.1.0.0/16")).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let mut net = chain();
            net.originate(SpeakerId(1), p("10.1.0.0/16"));
            let stats = net.run(10_000).unwrap();
            (
                stats,
                net.best_route(SpeakerId(3), &p("10.1.0.0/16"))
                    .unwrap()
                    .attrs
                    .clone(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn budget_error() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let err = net.run(1).unwrap_err();
        assert!(matches!(err, ConvergenceError::BudgetExhausted { .. }));
    }

    #[test]
    fn quiescence_tracks_runs() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        assert!(!net.is_quiescent(), "pending origination is visible work");
        net.run(10_000).unwrap();
        assert!(net.is_quiescent());
    }

    #[test]
    fn budget_exhaustion_latches_torn_state() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(1).unwrap_err();
        // Even after draining the rest of the work, the aborted batch means
        // the net can never be trusted as quiescent again.
        let _ = net.run(10_000);
        assert!(!net.is_quiescent());
    }

    #[test]
    fn reconnect_restores_withdrawn_routes() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        let cfg12 = *net
            .speaker(SpeakerId(1))
            .unwrap()
            .peer_config(SpeakerId(2))
            .unwrap();
        let cfg21 = *net
            .speaker(SpeakerId(2))
            .unwrap()
            .peer_config(SpeakerId(1))
            .unwrap();
        net.disconnect(SpeakerId(1), SpeakerId(2));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
        net.reconnect(SpeakerId(1), cfg12, SpeakerId(2), cfg21);
        net.run(10_000).unwrap();
        assert!(net.is_quiescent());
        let best3 = net.best_route(SpeakerId(3), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best3.attrs.as_path, vec![Asn(2), Asn(1)]);
    }

    #[test]
    fn ibgp_full_propagation_with_rr() {
        // AS100: border routers 11, 12, RR 10. External AS200 (speaker 2)
        // announces to router 11; router 12 must learn it via the RR.
        let mut net = BgpNet::new();
        net.add_speaker(Speaker::new(SpeakerId(2), Asn(200)));
        for i in [10, 11, 12] {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(100)));
        }
        net.connect_ebgp(
            SpeakerId(11),
            SpeakerId(2),
            Relation::Provider,
            Policy::FlatPreference,
        );
        net.connect_rr_client(SpeakerId(10), SpeakerId(11), Policy::FlatPreference);
        net.connect_rr_client(SpeakerId(10), SpeakerId(12), Policy::FlatPreference);
        net.originate(SpeakerId(2), p("10.2.0.0/16"));
        net.run(10_000).unwrap();
        let best12 = net.best_route(SpeakerId(12), &p("10.2.0.0/16")).unwrap();
        assert!(best12.source.is_ibgp());
        assert_eq!(best12.attrs.next_hop, SpeakerId(11));
        // Data plane: 12 -> 11 (intra-AS) -> 2 (eBGP).
        let path = net
            .forwarding_path(SpeakerId(12), &p("10.2.0.0/16"))
            .unwrap();
        assert_eq!(path, vec![SpeakerId(12), SpeakerId(11), SpeakerId(2)]);
    }
}
