//! The convergence engine: runs a set of speakers to quiescence.
//!
//! An activation queue drives processing: delivering a message marks the
//! receiver active; an active speaker ingests its inbox, reruns the decision
//! process for dirty prefixes, and emits further messages. The queue drains
//! in router-id order, so runs are deterministic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::decision::Candidate;
use crate::prefix::Prefix;
use crate::route::RouteSource;
pub use crate::route::SpeakerId;
use crate::speaker::{Message, PeerConfig, PeerKind, Speaker};

/// Statistics from a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConvergenceStats {
    /// Speaker activations processed.
    pub activations: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Inter-shard merge rounds ([`BgpNet::run_sharded`] only; `0` for the
    /// monolithic [`BgpNet::run`]).
    pub rounds: u64,
}

/// Error from [`BgpNet::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceError {
    /// The message budget was exhausted before quiescence (almost certainly
    /// a policy dispute / oscillation).
    BudgetExhausted {
        /// Messages delivered before giving up.
        messages: u64,
    },
}

impl std::fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvergenceError::BudgetExhausted { messages } => {
                write!(f, "BGP did not converge within {messages} messages")
            }
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Error from data-plane resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// The starting speaker does not exist.
    NoSuchSpeaker(SpeakerId),
    /// No route to the prefix at some speaker on the way.
    NoRoute(SpeakerId),
    /// A forwarding loop was detected (should not happen post-convergence).
    ForwardingLoop,
    /// The walk exceeded the configured hop limit without reaching the
    /// originator or revisiting a router. On correctly sized worlds this
    /// means the limit (see [`BgpNet::set_hop_limit`]) was not derived from
    /// the world's diameter.
    HopLimitExceeded {
        /// The limit that was hit.
        limit: u32,
    },
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::NoSuchSpeaker(s) => write!(f, "unknown speaker {s}"),
            PathError::NoRoute(s) => write!(f, "no route at {s}"),
            PathError::ForwardingLoop => f.write_str("forwarding loop"),
            PathError::HopLimitExceeded { limit } => {
                write!(f, "forwarding path exceeded {limit} hops")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// Default [`BgpNet::forwarding_path`] hop bound — generous for the
/// few-hundred-AS default worlds; scaled worlds derive a diameter-based
/// bound via [`BgpNet::set_hop_limit`].
pub const DEFAULT_HOP_LIMIT: u32 = 64;

/// A network of speakers plus in-flight messages.
#[derive(Debug)]
pub struct BgpNet {
    speakers: BTreeMap<SpeakerId, Speaker>,
    inboxes: BTreeMap<SpeakerId, VecDeque<(SpeakerId, Message)>>,
    active: BTreeSet<SpeakerId>,
    /// Convergence shard per speaker (region index on generated worlds);
    /// unassigned speakers fall into shard 0. Only consulted by
    /// [`BgpNet::run_sharded`].
    shards: BTreeMap<SpeakerId, u32>,
    /// Hop bound for [`BgpNet::forwarding_path`].
    hop_limit: u32,
}

impl Default for BgpNet {
    fn default() -> Self {
        Self {
            speakers: BTreeMap::new(),
            inboxes: BTreeMap::new(),
            active: BTreeSet::new(),
            shards: BTreeMap::new(),
            hop_limit: DEFAULT_HOP_LIMIT,
        }
    }
}

impl BgpNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `id` to a convergence shard (see [`BgpNet::run_sharded`]).
    /// Speakers never assigned live in shard 0.
    pub fn set_shard(&mut self, id: SpeakerId, shard: u32) {
        self.shards.insert(id, shard);
    }

    /// The convergence shard of `id`.
    pub fn shard_of(&self, id: SpeakerId) -> u32 {
        self.shards.get(&id).copied().unwrap_or(0)
    }

    /// Sets the [`BgpNet::forwarding_path`] hop bound. World generators
    /// derive this from the generated diameter so that deep-but-legal
    /// paths on 10k-AS worlds are distinguishable from actual loops.
    pub fn set_hop_limit(&mut self, limit: u32) {
        self.hop_limit = limit.max(1);
    }

    /// The current [`BgpNet::forwarding_path`] hop bound.
    pub fn hop_limit(&self) -> u32 {
        self.hop_limit
    }

    /// Adds a speaker.
    ///
    /// # Panics
    /// Panics when the id is already taken.
    pub fn add_speaker(&mut self, speaker: Speaker) {
        let id = speaker.id();
        let prev = self.speakers.insert(id, speaker);
        assert!(prev.is_none(), "duplicate speaker id {id}");
        self.inboxes.entry(id).or_default();
    }

    /// Number of speakers.
    pub fn len(&self) -> usize {
        self.speakers.len()
    }

    /// True when no speakers exist.
    pub fn is_empty(&self) -> bool {
        self.speakers.is_empty()
    }

    /// Immutable speaker access.
    pub fn speaker(&self, id: SpeakerId) -> Option<&Speaker> {
        self.speakers.get(&id)
    }

    /// Mutable speaker access; marks the speaker active (its state may have
    /// changed).
    pub fn speaker_mut(&mut self, id: SpeakerId) -> Option<&mut Speaker> {
        self.active.insert(id);
        self.speakers.get_mut(&id)
    }

    /// All speaker ids in order.
    pub fn speaker_ids(&self) -> impl Iterator<Item = SpeakerId> + '_ {
        self.speakers.keys().copied()
    }

    /// The union of every speaker's selected prefixes — the universe of
    /// destinations the whole-network forwarding graph is built over.
    /// A prefix only some speakers carry still shows up once here, so the
    /// graph extractor can resolve each speaker's own longest match against
    /// the full candidate set in `O(log n)` per prefix instead of scanning
    /// the Loc-RIB per lookup.
    pub fn advertised_prefixes(&self) -> BTreeSet<Prefix> {
        let mut all = BTreeSet::new();
        for sp in self.speakers.values() {
            all.extend(sp.loc_rib_prefixes());
        }
        all
    }

    /// Configures both sides of a session.
    ///
    /// # Panics
    /// Panics when either speaker is missing or the kinds are inconsistent
    /// (e.g. one side eBGP and the other iBGP).
    pub fn connect(&mut self, a: SpeakerId, a_cfg: PeerConfig, b: SpeakerId, b_cfg: PeerConfig) {
        assert_eq!(
            a_cfg.kind.is_ebgp(),
            b_cfg.kind.is_ebgp(),
            "session kind mismatch between {a} and {b}"
        );
        {
            let sa = self.speakers.get_mut(&a).expect("speaker a exists");
            sa.add_peer(b, a_cfg);
        }
        {
            let sb = self.speakers.get_mut(&b).expect("speaker b exists");
            sb.add_peer(a, b_cfg);
        }
    }

    /// Tears down the session between `a` and `b` (both directions),
    /// discarding any in-flight messages on it. Both speakers reconverge
    /// on the next [`BgpNet::run`]. Models a link/router failure between
    /// them.
    pub fn disconnect(&mut self, a: SpeakerId, b: SpeakerId) {
        if let Some(sa) = self.speakers.get_mut(&a) {
            sa.remove_peer(b);
            self.active.insert(a);
        }
        if let Some(sb) = self.speakers.get_mut(&b) {
            sb.remove_peer(a);
            self.active.insert(b);
        }
        if let Some(inbox) = self.inboxes.get_mut(&a) {
            inbox.retain(|(from, _)| *from != b);
        }
        if let Some(inbox) = self.inboxes.get_mut(&b) {
            inbox.retain(|(from, _)| *from != a);
        }
    }

    /// Re-establishes a previously [`BgpNet::disconnect`]ed session using
    /// the captured per-side configs (capture them with
    /// [`Speaker::peer_config`] before tearing the session down).
    ///
    /// Besides wiring the configs back up, both endpoints schedule a full
    /// re-advertisement: teardown cleared the Adj-RIB-Out fingerprints for
    /// the lost peer, so the fresh session receives the whole table while
    /// established peers diff every re-export to a no-op. This models BGP
    /// session establishment without the refresh-storm of poisoning every
    /// fingerprint on the speaker.
    ///
    /// # Panics
    /// Panics when either speaker is missing or the kinds are inconsistent,
    /// exactly like [`BgpNet::connect`].
    pub fn reconnect(&mut self, a: SpeakerId, a_cfg: PeerConfig, b: SpeakerId, b_cfg: PeerConfig) {
        self.connect(a, a_cfg, b, b_cfg);
        for id in [a, b] {
            let sp = self.speakers.get_mut(&id).expect("speaker exists");
            sp.schedule_initial_advertisement();
            self.active.insert(id);
        }
    }

    /// Originates a prefix at a speaker and schedules propagation.
    pub fn originate(&mut self, at: SpeakerId, prefix: Prefix) {
        self.speakers
            .get_mut(&at)
            .expect("speaker exists")
            .originate(prefix);
        self.active.insert(at);
    }

    /// True when the network holds no unprocessed work: the activation
    /// queue is empty, every inbox is drained, and no speaker has dirty
    /// prefixes.
    ///
    /// Budget exhaustion no longer poisons this check: since the engine
    /// enqueues a speaker's full outgoing batch before the budget test can
    /// fire, an aborted run leaves every counted message in an inbox and
    /// the remaining work visibly queued — `is_quiescent` stays `false`
    /// until a later [`BgpNet::run`] (or [`BgpNet::run_sharded`]) finishes
    /// the job, and honestly reports `true` once one does.
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty()
            && self.inboxes.values().all(VecDeque::is_empty)
            && self.speakers.values().all(|s| !s.has_pending_work())
    }

    /// Runs to quiescence. `message_budget` bounds total deliveries.
    ///
    /// # Budget exhaustion is a resumable pause
    /// The budget is tested *between* activation batches, never inside
    /// one: a speaker's whole outgoing batch is enqueued and counted
    /// first, so [`ConvergenceError::BudgetExhausted`] reports a message
    /// count that exactly matches the enqueued state (the run may overshoot
    /// the budget by at most one batch). Nothing is dropped — `active` and
    /// the inboxes hold precisely the remaining work, and a later run with
    /// fresh budget resumes convergence where this one stopped.
    pub fn run(&mut self, message_budget: u64) -> Result<ConvergenceStats, ConvergenceError> {
        let mut stats = ConvergenceStats::default();
        // Any speaker with local state changes starts active.
        for (id, s) in &self.speakers {
            if s.has_pending_work() {
                self.active.insert(*id);
            }
        }
        while let Some(id) = self.active.pop_first() {
            stats.activations += 1;
            let speaker = self.speakers.get_mut(&id).expect("active speaker exists");
            if let Some(inbox) = self.inboxes.get_mut(&id) {
                while let Some((from, msg)) = inbox.pop_front() {
                    speaker.receive(from, msg);
                }
            }
            let outgoing = speaker.process();
            for (to, msg) in outgoing {
                stats.messages += 1;
                self.inboxes.entry(to).or_default().push_back((id, msg));
                self.active.insert(to);
            }
            if stats.messages > message_budget {
                return Err(ConvergenceError::BudgetExhausted {
                    messages: stats.messages,
                });
            }
        }
        Ok(stats)
    }

    /// Runs to quiescence with per-shard parallelism: speakers are grouped
    /// by their [`BgpNet::set_shard`] assignment, each round sweeps every
    /// active speaker of every live shard exactly once (router-id order
    /// within a shard, shards on parallel workers), and all messages —
    /// intra- and cross-shard — are merged between rounds in canonical
    /// shard order. The thread count only affects wall-clock, never
    /// results: each shard round is a pure function of the shard's state
    /// at the round start, and the merge order is fixed — the same
    /// label-derived-stream discipline the campaign engine uses.
    ///
    /// Like [`BgpNet::run`] this is *delta* convergence: only speakers
    /// with pending work (topology edits, originations, undrained inboxes)
    /// start active, so incremental edits reconverge incrementally.
    ///
    /// The budget is tested between rounds (each live shard may spend up
    /// to the remaining budget within one round, so the overshoot bound is
    /// one round rather than one batch); on
    /// [`ConvergenceError::BudgetExhausted`] all counted messages are
    /// enqueued and the run is resumable, exactly like [`BgpNet::run`].
    pub fn run_sharded(
        &mut self,
        message_budget: u64,
        threads: usize,
    ) -> Result<ConvergenceStats, ConvergenceError> {
        let mut stats = ConvergenceStats::default();
        for (id, s) in &self.speakers {
            if s.has_pending_work() {
                self.active.insert(*id);
            }
        }
        // Partition every speaker, inbox, and activation by shard.
        let mut shards: BTreeMap<u32, Shard> = BTreeMap::new();
        for (id, sp) in std::mem::take(&mut self.speakers) {
            let sid = self.shards.get(&id).copied().unwrap_or(0);
            shards.entry(sid).or_default().speakers.insert(id, sp);
        }
        for (id, q) in std::mem::take(&mut self.inboxes) {
            if !q.is_empty() {
                let sid = self.shards.get(&id).copied().unwrap_or(0);
                shards.entry(sid).or_default().inbox.insert(id, q);
            }
        }
        for id in std::mem::take(&mut self.active) {
            let sid = self.shards.get(&id).copied().unwrap_or(0);
            shards.entry(sid).or_default().active.insert(id);
        }

        let mut failed = false;
        loop {
            let mut live: Vec<(u32, &mut Shard)> = shards
                .iter_mut()
                .filter(|(_, sh)| !sh.active.is_empty())
                .map(|(sid, sh)| (*sid, sh))
                .collect();
            if live.is_empty() {
                break;
            }
            stats.rounds += 1;
            let remaining = message_budget.saturating_sub(stats.messages);
            let workers = threads.max(1).min(live.len());
            let outputs: Vec<(u32, ShardRound)> = if workers <= 1 {
                live.iter_mut()
                    .map(|(sid, sh)| (*sid, run_shard(sh, remaining)))
                    .collect()
            } else {
                // Contiguous chunks, one worker each; chunk outputs are
                // re-joined in spawn order, so `outputs` stays sorted by
                // shard id whatever the scheduling did.
                let chunk = live.len().div_ceil(workers);
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for part in live.chunks_mut(chunk) {
                        handles.push(scope.spawn(move || {
                            part.iter_mut()
                                .map(|(sid, sh)| (*sid, run_shard(sh, remaining)))
                                .collect::<Vec<_>>()
                        }));
                    }
                    handles
                        .into_iter()
                        .flat_map(|h| match h.join() {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                })
            };
            // Canonical-order merge: shard ids ascending, each outbox in
            // its shard's deterministic processing order.
            let mut exhausted = false;
            for (_, round) in outputs {
                stats.activations += round.activations;
                stats.messages += round.messages;
                exhausted |= round.stopped;
                for (from, to, msg) in round.outbox {
                    let sid = self.shards.get(&to).copied().unwrap_or(0);
                    let target = shards.entry(sid).or_default();
                    target.inbox.entry(to).or_default().push_back((from, msg));
                    target.active.insert(to);
                }
            }
            if exhausted || stats.messages > message_budget {
                failed = true;
                break;
            }
        }

        // Reassemble; on failure the residual work survives in
        // `active`/inboxes, making the pause resumable.
        for sh in shards.into_values() {
            self.speakers.extend(sh.speakers);
            for (id, q) in sh.inbox {
                if !q.is_empty() {
                    self.inboxes.insert(id, q);
                }
            }
            self.active.extend(sh.active);
        }
        let ids: Vec<SpeakerId> = self.speakers.keys().copied().collect();
        for id in ids {
            self.inboxes.entry(id).or_default();
        }
        if failed {
            Err(ConvergenceError::BudgetExhausted {
                messages: stats.messages,
            })
        } else {
            Ok(stats)
        }
    }

    /// The best route at `speaker` for `prefix`.
    pub fn best_route(&self, speaker: SpeakerId, prefix: &Prefix) -> Option<&Candidate> {
        self.speakers.get(&speaker)?.best(prefix)
    }

    /// Resolves the router-level forwarding path from `from` towards
    /// `prefix`, following each router's Loc-RIB until the route's
    /// originator is reached. Consecutive entries alternate between
    /// intra-AS moves (towards the iBGP next hop) and eBGP hops.
    pub fn forwarding_path(
        &self,
        from: SpeakerId,
        prefix: &Prefix,
    ) -> Result<Vec<SpeakerId>, PathError> {
        let mut path = vec![from];
        let mut cur = from;
        // Bound derived from world diameter by the generator (router-level
        // paths cross each AS at most twice); see `set_hop_limit`.
        for _ in 0..self.hop_limit {
            let speaker = self
                .speakers
                .get(&cur)
                .ok_or(PathError::NoSuchSpeaker(cur))?;
            let best = speaker.best(prefix).ok_or(PathError::NoRoute(cur))?;
            match best.source {
                RouteSource::Local => return Ok(path),
                RouteSource::Ebgp { peer, .. } => {
                    if path.contains(&peer) {
                        return Err(PathError::ForwardingLoop);
                    }
                    path.push(peer);
                    cur = peer;
                }
                RouteSource::Ibgp { .. } => {
                    // Move inside the AS to the egress border router.
                    let nh = best.attrs.next_hop;
                    if nh == cur || path.contains(&nh) {
                        return Err(PathError::ForwardingLoop);
                    }
                    path.push(nh);
                    cur = nh;
                }
            }
        }
        Err(PathError::HopLimitExceeded {
            limit: self.hop_limit,
        })
    }

    /// Convenience for building sessions: standard eBGP both ways with the
    /// given relation as seen from `a` (`b` gets the inverse).
    pub fn connect_ebgp(
        &mut self,
        a: SpeakerId,
        b: SpeakerId,
        a_view: crate::policy::Relation,
        import: crate::policy::Policy,
    ) {
        let a_asn = self.speakers.get(&a).expect("a exists").asn();
        let b_asn = self.speakers.get(&b).expect("b exists").asn();
        self.connect(
            a,
            PeerConfig {
                kind: PeerKind::Ebgp {
                    peer_as: b_asn,
                    relation: a_view,
                },
                import,
            },
            b,
            PeerConfig {
                kind: PeerKind::Ebgp {
                    peer_as: a_asn,
                    relation: a_view.inverse(),
                },
                import,
            },
        );
    }

    /// Convenience: reflector/client iBGP pair (`rr` treats `client` as a
    /// reflection client).
    pub fn connect_rr_client(
        &mut self,
        rr: SpeakerId,
        client: SpeakerId,
        import: crate::policy::Policy,
    ) {
        self.connect(
            rr,
            PeerConfig {
                kind: PeerKind::IbgpClient,
                import,
            },
            client,
            PeerConfig {
                kind: PeerKind::Ibgp,
                import,
            },
        );
    }
}

/// One shard's share of the network during [`BgpNet::run_sharded`]:
/// its speakers, their inboxes, and the activation queue.
#[derive(Debug, Default)]
struct Shard {
    speakers: BTreeMap<SpeakerId, Speaker>,
    inbox: BTreeMap<SpeakerId, VecDeque<(SpeakerId, Message)>>,
    active: BTreeSet<SpeakerId>,
}

/// What one shard did in one round of [`BgpNet::run_sharded`].
#[derive(Debug, Default)]
struct ShardRound {
    activations: u64,
    messages: u64,
    /// The shard stopped on its local budget before reaching local
    /// quiescence; residual work remains queued in the shard.
    stopped: bool,
    /// Cross-shard messages, `(from, to, msg)`, in deterministic
    /// processing order.
    outbox: Vec<(SpeakerId, SpeakerId, Message)>,
}

/// Runs one synchronous sweep over a shard: every speaker active at the
/// round start drains its inbox and processes exactly once, in router-id
/// order. All deliveries — intra-shard and cross-shard alike — take
/// effect at the *next* round, which keeps rounds pure functions of the
/// round-start state and, crucially, bounds BGP path exploration: letting
/// a shard chase full local quiescence over stale cross-shard state
/// amplifies path hunting combinatorially, while the synchronous model
/// converges in O(diameter) rounds like a classic synchronous BGP
/// simulator. Thread scheduling cannot affect any of it.
fn run_shard(sh: &mut Shard, budget: u64) -> ShardRound {
    let mut round = ShardRound::default();
    let sweep = std::mem::take(&mut sh.active);
    let mut sweep = sweep.into_iter();
    for id in sweep.by_ref() {
        round.activations += 1;
        let outgoing = {
            let speaker = sh.speakers.get_mut(&id).expect("active speaker in shard");
            if let Some(inbox) = sh.inbox.get_mut(&id) {
                while let Some((from, msg)) = inbox.pop_front() {
                    speaker.receive(from, msg);
                }
            }
            speaker.process()
        };
        for (to, msg) in outgoing {
            round.messages += 1;
            if sh.speakers.contains_key(&to) {
                sh.inbox.entry(to).or_default().push_back((id, msg));
                sh.active.insert(to);
            } else {
                round.outbox.push((id, to, msg));
            }
        }
        if round.messages > budget {
            round.stopped = true;
            break;
        }
    }
    // On a budget stop the un-swept speakers keep their activation so a
    // resumed run picks them straight back up.
    sh.active.extend(sweep);
    round
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, Relation};
    use crate::route::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Chain: AS1 (customer) -> AS2 (provider of 1, customer of 3) -> AS3.
    fn chain() -> BgpNet {
        let mut net = BgpNet::new();
        for i in 1..=3 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(3),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net
    }

    #[test]
    fn propagation_along_chain() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let stats = net.run(10_000).unwrap();
        assert!(stats.messages >= 2);
        let best3 = net.best_route(SpeakerId(3), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best3.attrs.as_path, vec![Asn(2), Asn(1)]);
        let path = net
            .forwarding_path(SpeakerId(3), &p("10.1.0.0/16"))
            .unwrap();
        assert_eq!(path, vec![SpeakerId(3), SpeakerId(2), SpeakerId(1)]);
    }

    #[test]
    fn valley_free_blocks_peer_transit() {
        // AS1 -peer- AS2 -peer- AS3: AS3 must NOT learn AS1's prefix via
        // AS2 (peer routes don't go to peers).
        let mut net = BgpNet::new();
        for i in 1..=3 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(3),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(2), &p("10.1.0.0/16")).is_some());
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
    }

    #[test]
    fn prefers_peer_over_provider_path() {
        // AS4 can reach AS1 via provider AS2 or via peer AS3; Gao-Rexford
        // picks the peer.
        let mut net = BgpNet::new();
        for i in 1..=4 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        // AS1 is customer of both 2 and 3.
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(3),
            Relation::Provider,
            Policy::GaoRexford,
        );
        // AS4 buys transit from AS2, peers with AS3.
        net.connect_ebgp(
            SpeakerId(4),
            SpeakerId(2),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(4),
            SpeakerId(3),
            Relation::Peer,
            Policy::GaoRexford,
        );
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        let best = net.best_route(SpeakerId(4), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best.attrs.neighbor_as(), Some(Asn(3)));
    }

    #[test]
    fn withdraw_reconverges() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_some());
        net.speaker_mut(SpeakerId(1))
            .unwrap()
            .withdraw_local(p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
        assert!(net.best_route(SpeakerId(2), &p("10.1.0.0/16")).is_none());
    }

    #[test]
    fn deterministic_runs() {
        let build = || {
            let mut net = chain();
            net.originate(SpeakerId(1), p("10.1.0.0/16"));
            let stats = net.run(10_000).unwrap();
            (
                stats,
                net.best_route(SpeakerId(3), &p("10.1.0.0/16"))
                    .unwrap()
                    .attrs
                    .clone(),
            )
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn budget_error() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let err = net.run(1).unwrap_err();
        assert!(matches!(err, ConvergenceError::BudgetExhausted { .. }));
    }

    #[test]
    fn quiescence_tracks_runs() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        assert!(!net.is_quiescent(), "pending origination is visible work");
        net.run(10_000).unwrap();
        assert!(net.is_quiescent());
    }

    #[test]
    fn budget_exhaustion_counts_exactly_what_it_enqueued() {
        // Regression: the engine used to count the budget-tripping message
        // without enqueueing it and drop the rest of the batch, so the
        // reported count disagreed with the visible state. Enqueue-then-fail
        // means every counted message is in an inbox when the error returns.
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let err = net.run(0).unwrap_err();
        let ConvergenceError::BudgetExhausted { messages } = err;
        let queued: u64 = net.inboxes.values().map(|q| q.len() as u64).sum();
        assert_eq!(messages, queued, "every counted message is enqueued");
        assert!(!net.is_quiescent());
    }

    #[test]
    fn budget_exhaustion_is_a_resumable_pause() {
        // Regression: exhaustion used to drop the aborting speaker's
        // remaining batch, leaving peers permanently stale. Now nothing is
        // lost, so a later run with fresh budget finishes the job and the
        // result matches an uninterrupted run.
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        let mut paused = 0;
        let mut resumed_messages = 0;
        loop {
            match net.run(1) {
                Ok(stats) => {
                    resumed_messages += stats.messages;
                    break;
                }
                Err(ConvergenceError::BudgetExhausted { messages }) => {
                    paused += 1;
                    resumed_messages += messages;
                    assert!(paused < 100, "must converge eventually");
                }
            }
        }
        assert!(paused >= 1, "budget 1 must pause at least once");
        assert!(
            net.is_quiescent(),
            "a completed resume is honest quiescence"
        );
        let best3 = net.best_route(SpeakerId(3), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best3.attrs.as_path, vec![Asn(2), Asn(1)]);
        // Pausing preserves the activation queue and inboxes exactly, so
        // the resumed sequence delivers the same messages an uninterrupted
        // run would.
        let mut mono = chain();
        mono.originate(SpeakerId(1), p("10.1.0.0/16"));
        let mono_stats = mono.run(10_000).unwrap();
        assert_eq!(resumed_messages, mono_stats.messages);
    }

    #[test]
    fn reconnect_restores_withdrawn_routes() {
        let mut net = chain();
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(10_000).unwrap();
        let cfg12 = *net
            .speaker(SpeakerId(1))
            .unwrap()
            .peer_config(SpeakerId(2))
            .unwrap();
        let cfg21 = *net
            .speaker(SpeakerId(2))
            .unwrap()
            .peer_config(SpeakerId(1))
            .unwrap();
        net.disconnect(SpeakerId(1), SpeakerId(2));
        net.run(10_000).unwrap();
        assert!(net.best_route(SpeakerId(3), &p("10.1.0.0/16")).is_none());
        net.reconnect(SpeakerId(1), cfg12, SpeakerId(2), cfg21);
        net.run(10_000).unwrap();
        assert!(net.is_quiescent());
        let best3 = net.best_route(SpeakerId(3), &p("10.1.0.0/16")).unwrap();
        assert_eq!(best3.attrs.as_path, vec![Asn(2), Asn(1)]);
    }

    /// A linear eBGP chain of `n` ASes with FlatPreference (Gao-Rexford
    /// would be fine too — every link is customer→provider).
    fn deep_chain(n: u32) -> BgpNet {
        let mut net = BgpNet::new();
        for i in 1..=n {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        for i in 1..n {
            net.connect_ebgp(
                SpeakerId(i),
                SpeakerId(i + 1),
                Relation::Provider,
                Policy::GaoRexford,
            );
        }
        net
    }

    #[test]
    fn hop_limit_is_typed_and_configurable() {
        // Regression: deep-but-legal paths used to fall through the
        // hard-coded 64-iteration bound and masquerade as ForwardingLoop.
        let n = 80;
        let mut net = deep_chain(n);
        net.originate(SpeakerId(1), p("10.1.0.0/16"));
        net.run(1_000_000).unwrap();
        let err = net
            .forwarding_path(SpeakerId(n), &p("10.1.0.0/16"))
            .unwrap_err();
        assert_eq!(
            err,
            PathError::HopLimitExceeded {
                limit: DEFAULT_HOP_LIMIT
            },
            "a deep legal path is a hop-limit problem, not a loop"
        );
        // Derive the bound from the world's depth and the walk succeeds.
        net.set_hop_limit(2 * n + 2);
        let path = net
            .forwarding_path(SpeakerId(n), &p("10.1.0.0/16"))
            .unwrap();
        assert_eq!(path.len() as u32, n);
        assert_eq!(path[0], SpeakerId(n));
        assert_eq!(*path.last().unwrap(), SpeakerId(1));
    }

    /// Loc-RIB fingerprint of the whole net: every speaker's best routes.
    fn rib_snapshot(net: &BgpNet) -> Vec<(SpeakerId, Vec<(Prefix, String)>)> {
        net.speaker_ids()
            .map(|id| {
                let sp = net.speaker(id).unwrap();
                let routes = sp
                    .loc_rib_prefixes()
                    .map(|pfx| {
                        let best = sp.best(&pfx).unwrap();
                        (pfx, format!("{:?}|{:?}", best.attrs, best.source))
                    })
                    .collect();
                (id, routes)
            })
            .collect()
    }

    /// A two-region world: regions 0 and 1 each hold a provider/customer
    /// pair, the providers peer across regions.
    fn two_region_net() -> BgpNet {
        let mut net = BgpNet::new();
        for i in 1..=4 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(i)));
        }
        // 1 provider of 2 (region 0), 3 provider of 4 (region 1), 1—3 peer.
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(1),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(4),
            SpeakerId(3),
            Relation::Provider,
            Policy::GaoRexford,
        );
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(3),
            Relation::Peer,
            Policy::GaoRexford,
        );
        for id in [1, 2] {
            net.set_shard(SpeakerId(id), 0);
        }
        for id in [3, 4] {
            net.set_shard(SpeakerId(id), 1);
        }
        net
    }

    #[test]
    fn sharded_convergence_matches_monolithic() {
        let build = |sharded: Option<usize>| {
            let mut net = two_region_net();
            net.originate(SpeakerId(2), p("10.2.0.0/16"));
            net.originate(SpeakerId(4), p("10.4.0.0/16"));
            match sharded {
                Some(threads) => {
                    net.run_sharded(100_000, threads).unwrap();
                }
                None => {
                    net.run(100_000).unwrap();
                }
            }
            assert!(net.is_quiescent());
            rib_snapshot(&net)
        };
        let mono = build(None);
        for threads in [1, 2, 8] {
            assert_eq!(build(Some(threads)), mono, "threads {threads}");
        }
    }

    #[test]
    fn sharded_delta_reconvergence_after_disconnect() {
        // Sharded runs are delta runs: after an edit only the dirty
        // speakers reactivate, and the result matches a monolithic
        // reconvergence.
        let run_case = |sharded: bool| {
            let mut net = two_region_net();
            net.originate(SpeakerId(2), p("10.2.0.0/16"));
            if sharded {
                net.run_sharded(100_000, 2).unwrap();
            } else {
                net.run(100_000).unwrap();
            }
            assert!(net.best_route(SpeakerId(4), &p("10.2.0.0/16")).is_some());
            net.disconnect(SpeakerId(1), SpeakerId(3));
            let stats = if sharded {
                net.run_sharded(100_000, 2).unwrap()
            } else {
                net.run(100_000).unwrap()
            };
            assert!(net.is_quiescent());
            // Peer link gone: region 1 loses the route entirely.
            assert!(net.best_route(SpeakerId(4), &p("10.2.0.0/16")).is_none());
            (rib_snapshot(&net), stats.activations)
        };
        let (mono_rib, mono_acts) = run_case(false);
        let (sharded_rib, sharded_acts) = run_case(true);
        assert_eq!(sharded_rib, mono_rib);
        // Delta, not full re-run: reconvergence touches a handful of
        // speakers, far fewer than the initial propagation did.
        assert!(mono_acts <= 8, "delta reconvergence stays local");
        assert!(sharded_acts <= 8, "sharded delta reconvergence stays local");
    }

    #[test]
    fn sharded_budget_exhaustion_is_resumable() {
        let mut net = two_region_net();
        net.originate(SpeakerId(2), p("10.2.0.0/16"));
        net.originate(SpeakerId(4), p("10.4.0.0/16"));
        let mut paused = 0;
        loop {
            match net.run_sharded(1, 2) {
                Ok(_) => break,
                Err(ConvergenceError::BudgetExhausted { .. }) => {
                    paused += 1;
                    assert!(paused < 100, "must converge eventually");
                }
            }
        }
        assert!(paused >= 1);
        assert!(net.is_quiescent());
        let mut mono = two_region_net();
        mono.originate(SpeakerId(2), p("10.2.0.0/16"));
        mono.originate(SpeakerId(4), p("10.4.0.0/16"));
        mono.run(100_000).unwrap();
        assert_eq!(rib_snapshot(&net), rib_snapshot(&mono));
    }

    /// Equal-preference boost for client routes at a reflector — a
    /// stand-in for the geo LOCAL_PREF rewrite when two egresses fall in
    /// the same distance band.
    #[derive(Debug)]
    struct FlatBoost;

    impl crate::speaker::ImportHook for FlatBoost {
        fn on_import(
            &self,
            _from: SpeakerId,
            _prefix: Prefix,
            source: &crate::route::RouteSource,
            attrs: &mut crate::route::RouteAttrs,
        ) {
            if source.is_ibgp() {
                attrs.local_pref = 200;
            }
        }
    }

    /// AS100 with borders 1, 2 and reflectors 3 (near border 1) and
    /// 4 (near border 2); both borders hold an equally-preferred external
    /// route to the same prefix, boosted above the default by the
    /// reflectors' import hook. Reproduces the two-reflector deflection
    /// loop: with a vantage-dependent IGP tie-break each reflector picks
    /// its nearest egress, and each border then prefers the *other*
    /// border's reflected route over its own external one.
    fn two_reflector_net(fixed: bool) -> BgpNet {
        let mut net = BgpNet::new();
        for i in 1..=4 {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(100)));
        }
        net.add_speaker(Speaker::new(SpeakerId(5), Asn(200)));
        net.add_speaker(Speaker::new(SpeakerId(6), Asn(300)));
        net.connect_ebgp(
            SpeakerId(1),
            SpeakerId(5),
            Relation::Provider,
            Policy::FlatPreference,
        );
        net.connect_ebgp(
            SpeakerId(2),
            SpeakerId(6),
            Relation::Provider,
            Policy::FlatPreference,
        );
        for rr in [3, 4] {
            for client in [1, 2] {
                net.connect_rr_client(SpeakerId(rr), SpeakerId(client), Policy::FlatPreference);
            }
        }
        let ibgp = PeerConfig {
            kind: PeerKind::Ibgp,
            import: Policy::FlatPreference,
        };
        net.connect(SpeakerId(3), ibgp, SpeakerId(4), ibgp);
        for (rr, near, far) in [(3, 1, 2), (4, 2, 1)] {
            let sp = net.speaker_mut(SpeakerId(rr)).expect("rr exists");
            sp.set_import_hook(Box::new(FlatBoost));
            sp.set_igp_costs(
                [(SpeakerId(near), 1), (SpeakerId(far), 10)]
                    .into_iter()
                    .collect(),
            );
            sp.set_ignore_igp_metric(fixed);
        }
        for b in [1, 2] {
            net.speaker_mut(SpeakerId(b))
                .expect("border exists")
                .set_best_external(true);
        }
        net.originate(SpeakerId(5), p("10.9.0.0/16"));
        net.originate(SpeakerId(6), p("10.9.0.0/16"));
        net
    }

    #[test]
    fn reflector_igp_tiebreak_creates_deflection_loop() {
        // The pathology, pinned: without `igp-metric ignore` the two
        // reflectors disagree, and the borders deflect to each other —
        // a stable forwarding loop in a fully converged network.
        let mut net = two_reflector_net(false);
        net.run(100_000).unwrap();
        let dst = p("10.9.0.0/16");
        let best1 = net.best_route(SpeakerId(1), &dst).unwrap();
        let best2 = net.best_route(SpeakerId(2), &dst).unwrap();
        assert!(best1.source.is_ibgp());
        assert!(best2.source.is_ibgp());
        assert_eq!(best1.attrs.next_hop, SpeakerId(2));
        assert_eq!(best2.attrs.next_hop, SpeakerId(1));
    }

    #[test]
    fn reflector_igp_metric_ignore_breaks_deflection_loop() {
        // The fix: with the metric ignored, both reflectors resolve the
        // tie identically (lowest sender id — border 1), so border 1
        // keeps its own external route and border 2 deflects to it:
        // consistent egress, no loop.
        let mut net = two_reflector_net(true);
        net.run(100_000).unwrap();
        let dst = p("10.9.0.0/16");
        let best1 = net.best_route(SpeakerId(1), &dst).unwrap();
        let best2 = net.best_route(SpeakerId(2), &dst).unwrap();
        assert!(matches!(
            best1.source,
            crate::route::RouteSource::Ebgp { .. }
        ));
        assert!(best2.source.is_ibgp());
        assert_eq!(best2.attrs.next_hop, SpeakerId(1));
        let path = net.forwarding_path(SpeakerId(2), &dst).unwrap();
        assert_eq!(path, vec![SpeakerId(2), SpeakerId(1), SpeakerId(5)]);
    }

    #[test]
    fn ibgp_full_propagation_with_rr() {
        // AS100: border routers 11, 12, RR 10. External AS200 (speaker 2)
        // announces to router 11; router 12 must learn it via the RR.
        let mut net = BgpNet::new();
        net.add_speaker(Speaker::new(SpeakerId(2), Asn(200)));
        for i in [10, 11, 12] {
            net.add_speaker(Speaker::new(SpeakerId(i), Asn(100)));
        }
        net.connect_ebgp(
            SpeakerId(11),
            SpeakerId(2),
            Relation::Provider,
            Policy::FlatPreference,
        );
        net.connect_rr_client(SpeakerId(10), SpeakerId(11), Policy::FlatPreference);
        net.connect_rr_client(SpeakerId(10), SpeakerId(12), Policy::FlatPreference);
        net.originate(SpeakerId(2), p("10.2.0.0/16"));
        net.run(10_000).unwrap();
        let best12 = net.best_route(SpeakerId(12), &p("10.2.0.0/16")).unwrap();
        assert!(best12.source.is_ibgp());
        assert_eq!(best12.attrs.next_hop, SpeakerId(11));
        // Data plane: 12 -> 11 (intra-AS) -> 2 (eBGP).
        let path = net
            .forwarding_path(SpeakerId(12), &p("10.2.0.0/16"))
            .unwrap();
        assert_eq!(path, vec![SpeakerId(12), SpeakerId(11), SpeakerId(2)]);
    }
}
