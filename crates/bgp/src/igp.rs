//! Interior gateway protocol: weighted shortest paths inside an AS.
//!
//! The decision process's hot-potato step compares IGP costs to candidate
//! next hops; inside VNS the IGP weights are derived from the dedicated
//! L2-link propagation delays, so "nearest exit" means what it means in a
//! real deployment.

use std::collections::{BTreeMap, BinaryHeap};

use crate::route::SpeakerId;

/// An undirected weighted graph over router ids.
#[derive(Debug, Clone, Default)]
pub struct IgpGraph {
    adj: BTreeMap<SpeakerId, Vec<(SpeakerId, u64)>>,
}

impl IgpGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a node exists (isolated until linked).
    pub fn add_node(&mut self, id: SpeakerId) {
        self.adj.entry(id).or_default();
    }

    /// Adds an undirected link with `cost` (typically delay in
    /// microseconds).
    pub fn add_link(&mut self, a: SpeakerId, b: SpeakerId, cost: u64) {
        self.adj.entry(a).or_default().push((b, cost));
        self.adj.entry(b).or_default().push((a, cost));
    }

    /// Removes the undirected link between `a` and `b`, returning its cost
    /// (`None` when no such link exists). Parallel links are all removed;
    /// the first cost is returned. Models a circuit cut — the nodes stay
    /// in the graph and may become unreachable.
    pub fn remove_link(&mut self, a: SpeakerId, b: SpeakerId) -> Option<u64> {
        let mut cost = None;
        if let Some(nbrs) = self.adj.get_mut(&a) {
            nbrs.retain(|&(v, c)| {
                if v == b {
                    cost.get_or_insert(c);
                    false
                } else {
                    true
                }
            });
        }
        if let Some(nbrs) = self.adj.get_mut(&b) {
            nbrs.retain(|&(v, _)| v != a);
        }
        cost
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = SpeakerId> + '_ {
        self.adj.keys().copied()
    }

    /// All undirected edges `(a, b, cost)` with `a < b`.
    pub fn edges(&self) -> Vec<(SpeakerId, SpeakerId, u64)> {
        let mut out = Vec::new();
        for (&a, nbrs) in &self.adj {
            for &(b, cost) in nbrs {
                if a < b {
                    out.push((a, b, cost));
                }
            }
        }
        out
    }

    /// Single-source shortest-path costs (Dijkstra). Unreachable nodes are
    /// absent from the result.
    pub fn shortest_costs(&self, src: SpeakerId) -> BTreeMap<SpeakerId, u64> {
        let mut dist: BTreeMap<SpeakerId, u64> = BTreeMap::new();
        if !self.adj.contains_key(&src) {
            return dist;
        }
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, SpeakerId)>> = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(std::cmp::Reverse((0, src)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(&u).is_some_and(|&best| d > best) {
                continue;
            }
            for &(v, w) in self.adj.get(&u).into_iter().flatten() {
                let nd = d + w;
                if dist.get(&v).is_none_or(|&best| nd < best) {
                    dist.insert(v, nd);
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// Shortest path (node list, inclusive) from `src` to `dst`; `None`
    /// when unreachable. Ties broken towards lower node ids for
    /// determinism.
    pub fn shortest_path(&self, src: SpeakerId, dst: SpeakerId) -> Option<Vec<SpeakerId>> {
        if src == dst {
            return self.adj.contains_key(&src).then(|| vec![src]);
        }
        let dist_from_src = self.shortest_costs(src);
        dist_from_src.get(&dst)?;
        // Walk backwards from dst picking a predecessor on a shortest path.
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            let dc = dist_from_src[&cur];
            let mut pred: Option<(SpeakerId, u64)> = None;
            for &(v, w) in self.adj.get(&cur).into_iter().flatten() {
                if let Some(&dv) = dist_from_src.get(&v) {
                    if dv + w == dc && pred.is_none_or(|(p, _)| v < p) {
                        pred = Some((v, w));
                    }
                }
            }
            let (p, _) = pred?; // graph mutated mid-walk would be a bug
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(id: u32) -> SpeakerId {
        SpeakerId(id)
    }

    fn diamond() -> IgpGraph {
        // 1 -2- 2 -3- 4
        //  \-10- 3 -1-/
        let mut g = IgpGraph::new();
        g.add_link(s(1), s(2), 2);
        g.add_link(s(2), s(4), 3);
        g.add_link(s(1), s(3), 10);
        g.add_link(s(3), s(4), 1);
        g
    }

    #[test]
    fn shortest_costs_basic() {
        let g = diamond();
        let d = g.shortest_costs(s(1));
        assert_eq!(d[&s(1)], 0);
        assert_eq!(d[&s(2)], 2);
        assert_eq!(d[&s(4)], 5);
        assert_eq!(d[&s(3)], 6); // via 2-4-3, not the direct 10
    }

    #[test]
    fn shortest_path_nodes() {
        let g = diamond();
        assert_eq!(g.shortest_path(s(1), s(4)).unwrap(), vec![s(1), s(2), s(4)]);
        assert_eq!(g.shortest_path(s(1), s(1)).unwrap(), vec![s(1)]);
    }

    #[test]
    fn unreachable() {
        let mut g = diamond();
        g.add_node(s(99));
        assert!(!g.shortest_costs(s(1)).contains_key(&s(99)));
        assert!(g.shortest_path(s(1), s(99)).is_none());
        assert!(g.shortest_costs(s(100)).is_empty());
    }

    #[test]
    fn remove_link_cuts_and_returns_cost() {
        let mut g = diamond();
        assert_eq!(g.remove_link(s(2), s(4)), Some(3));
        assert_eq!(g.remove_link(s(2), s(4)), None);
        // 1 now reaches 4 only via the long way round.
        assert_eq!(g.shortest_costs(s(1))[&s(4)], 11);
        g.add_link(s(2), s(4), 3);
        assert_eq!(g.shortest_costs(s(1))[&s(4)], 5);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths 1-2-4 and 1-3-4; predecessor choice must be
        // stable (lower id).
        let mut g = IgpGraph::new();
        g.add_link(s(1), s(2), 1);
        g.add_link(s(1), s(3), 1);
        g.add_link(s(2), s(4), 1);
        g.add_link(s(3), s(4), 1);
        let p1 = g.shortest_path(s(1), s(4)).unwrap();
        let p2 = g.shortest_path(s(1), s(4)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1, vec![s(1), s(2), s(4)]);
    }

    #[test]
    fn path_costs_match_costs_map() {
        let g = diamond();
        let costs = g.shortest_costs(s(1));
        for dst in g.nodes() {
            if let Some(path) = g.shortest_path(s(1), dst) {
                let mut sum = 0;
                for w in path.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let wcost = g.adj[&a]
                        .iter()
                        .filter(|(v, _)| *v == b)
                        .map(|(_, c)| *c)
                        .min()
                        .unwrap();
                    sum += wcost;
                }
                assert_eq!(sum, costs[&dst], "path cost mismatch to {dst}");
            }
        }
    }
}
