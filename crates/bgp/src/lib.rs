//! A message-level BGP implementation.
//!
//! The paper's routing contribution is a *modification* of BGP route
//! reflection: LOCAL_PREF rewritten from geographic distance (Sec 3.2). To
//! show that mechanism's behaviour — including the hidden-routes pathology
//! and its best-external fix — this crate implements the protocol machinery
//! it sits on:
//!
//! * [`Prefix`] and a binary [`trie`] with longest-prefix match;
//! * [`RouteAttrs`] — LOCAL_PREF, AS_PATH, ORIGIN, MED, communities
//!   (including `NO_EXPORT`), originator/cluster list;
//! * the full [`decision`] process in the order the paper lists it
//!   (Sec 3.2): local-pref ▸ AS-path length ▸ origin ▸ MED ▸ eBGP-over-iBGP
//!   ▸ IGP metric to next hop (hot potato) ▸ router id;
//! * [`policy`] — Gao–Rexford import preferences and export scoping used by
//!   the synthetic Internet, plus community filtering;
//! * [`speaker`] — per-router Adj-RIB-In / Loc-RIB / Adj-RIB-Out state with
//!   route-reflector semantics (cluster list, originator id), *best
//!   external* advertisement, and an import hook through which `vns-core`
//!   injects the geo LOCAL_PREF rewrite;
//! * [`igp`] — weighted shortest paths inside an AS, driving the hot-potato
//!   tie-break;
//! * [`net`] — an activation-queue convergence engine over a set of
//!   speakers, deterministic and run-to-quiescence.
//!
//! One speaker models one router. The synthetic Internet runs one speaker
//! per AS (standard practice for interdomain studies); the VNS AS runs one
//! speaker per border router plus dedicated route reflectors, which is what
//! the paper's figures are about.

pub mod decision;
pub mod igp;
pub mod net;
pub mod policy;
pub mod prefix;
pub mod route;
pub mod speaker;
pub mod trie;

pub use decision::{compare_routes, select_best, Candidate, DecisionContext};
pub use igp::IgpGraph;
pub use net::{
    BgpNet, ConvergenceError, ConvergenceStats, PathError, SpeakerId, DEFAULT_HOP_LIMIT,
};
pub use policy::{may_export, ExportScope, ImportAction, Policy, Relation};
pub use prefix::Prefix;
pub use route::{AsPath, Asn, Community, Origin, RouteAttrs, RouteSource, DEFAULT_LOCAL_PREF};
pub use speaker::{ImportHook, Message, PeerConfig, PeerKind, Speaker};
pub use trie::{PrefixTrie, ScanTable};
