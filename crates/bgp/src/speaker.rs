//! A BGP speaker: one router's RIBs, import/export processing, route
//! reflection and best-external.
//!
//! The update flow mirrors a real implementation:
//!
//! ```text
//! receive() ── import policy / loop checks / import hook ──▶ Adj-RIB-In
//! process() ── decision process per dirty prefix ──▶ Loc-RIB
//!          └── export policy per peer, diffed against Adj-RIB-Out ──▶ messages
//! ```
//!
//! The **import hook** is the extension point the paper's contribution
//! plugs into: `vns-core` installs a hook on the route-reflector speakers
//! that rewrites LOCAL_PREF from the great-circle distance between the
//! route's egress router and the prefix's GeoIP location (Sec 3.2).
//!
//! **Best external** (Sec 3.2, "hidden routes"): when a border router's
//! overall best route is iBGP-learned, it would normally stay silent over
//! iBGP, hiding its own eBGP alternative from the reflectors — which can
//! lock the whole AS onto a geographically wrong egress. With
//! `best_external` enabled the router advertises its best eBGP-learned
//! route to its iBGP peers in that situation, exactly the vendor feature
//! the paper enables.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use crate::decision::{select_best, Candidate, DecisionContext};
use crate::policy::{may_export, Policy, Relation};
use crate::prefix::Prefix;
use crate::route::{Asn, Community, RouteAttrs, RouteSource, SpeakerId, DEFAULT_LOCAL_PREF};

/// A BGP message on a session.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Announce/replace a route to `prefix`.
    Update {
        /// The prefix.
        prefix: Prefix,
        /// Attributes as sent on the wire.
        attrs: RouteAttrs,
    },
    /// Withdraw the previously announced route to `prefix`.
    Withdraw {
        /// The prefix.
        prefix: Prefix,
    },
}

/// Session type, from the configuring speaker's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerKind {
    /// External session to a router in `peer_as`, which is our
    /// customer/peer/provider per `relation`.
    Ebgp {
        /// The neighbour's AS.
        peer_as: Asn,
        /// Our relationship to it.
        relation: Relation,
    },
    /// Internal session to a regular iBGP neighbour (from a client's view,
    /// its route reflector; or RR-to-RR).
    Ibgp,
    /// Internal session to one of *our* reflection clients (we are the RR).
    IbgpClient,
}

impl PeerKind {
    /// True for external sessions.
    pub fn is_ebgp(&self) -> bool {
        matches!(self, PeerKind::Ebgp { .. })
    }
}

/// Per-peer configuration.
#[derive(Debug, Clone, Copy)]
pub struct PeerConfig {
    /// Session type.
    pub kind: PeerKind,
    /// Import policy applied to routes from this peer (eBGP only).
    pub import: Policy,
}

/// Hook applied to every accepted route before it enters Adj-RIB-In.
///
/// This is how `vns-core` implements the paper's modified Quagga: the geo
/// route reflector's hook rewrites `attrs.local_pref` as a function of the
/// distance between `attrs.next_hop` (the egress border router) and the
/// prefix's GeoIP location.
///
/// `Send + Sync` so a converged network (and the hooks installed on its
/// speakers) can be shared read-only across campaign worker threads.
pub trait ImportHook: std::fmt::Debug + Send + Sync {
    /// Inspect/rewrite an accepted route. `from` is the sending peer.
    fn on_import(
        &self,
        from: SpeakerId,
        prefix: Prefix,
        source: &RouteSource,
        attrs: &mut RouteAttrs,
    );
}

/// Stable hash of advertised attributes, used to diff Adj-RIB-Out without
/// storing full copies.
fn attrs_fingerprint(attrs: &RouteAttrs) -> u64 {
    let mut h = DefaultHasher::new();
    attrs.local_pref.hash(&mut h);
    attrs.as_path.hash(&mut h);
    (attrs.origin as u8).hash(&mut h);
    attrs.med.hash(&mut h);
    attrs.communities.hash(&mut h);
    attrs.next_hop.hash(&mut h);
    attrs.originator_id.hash(&mut h);
    attrs.cluster_list.hash(&mut h);
    h.finish()
}

/// One router.
#[derive(Debug)]
pub struct Speaker {
    id: SpeakerId,
    asn: Asn,
    cluster_id: u32,
    peers: BTreeMap<SpeakerId, PeerConfig>,
    /// prefix -> sender -> candidate (post-import).
    adj_rib_in: BTreeMap<Prefix, BTreeMap<SpeakerId, Candidate>>,
    /// Locally originated routes.
    local: BTreeMap<Prefix, RouteAttrs>,
    /// Current best per prefix.
    loc_rib: BTreeMap<Prefix, Candidate>,
    /// peer -> prefix -> fingerprint of what we last advertised.
    adj_rib_out: BTreeMap<SpeakerId, BTreeMap<Prefix, u64>>,
    /// IGP cost from this router to other routers in the AS.
    igp_costs: BTreeMap<SpeakerId, u64>,
    /// Hot-potato cost of exiting through a given eBGP peer (AS-level
    /// speakers: intra-AS haul to that session's interconnect; router-level
    /// speakers leave this empty, meaning 0).
    session_costs: BTreeMap<SpeakerId, u64>,
    import_hook: Option<Box<dyn ImportHook>>,
    best_external: bool,
    /// Skip the IGP-metric step of the decision process (step 6), the
    /// `bgp bestpath igp-metric ignore` of real routers. Deployed on
    /// route reflectors whose choice is re-advertised network-wide: a
    /// vantage-dependent tie-break there lets two reflectors pick
    /// different egresses for equally-preferred routes, and clients of
    /// different reflectors then deflect traffic to each other — a stable
    /// forwarding loop. With the metric ignored, ties fall through to the
    /// vantage-independent steps (cluster list, sender id), so every
    /// reflector picks the same egress.
    ignore_igp_metric: bool,
    /// Whether iBGP-learned routes *originated inside this AS* (empty AS
    /// path, no ingress relation tag) are exported over eBGP. Multi-router
    /// transit providers announce their whole address space at every edge
    /// (true); VNS keeps PoP-local service prefixes PoP-local (false).
    export_own_ibgp: bool,
    dirty: BTreeSet<Prefix>,
}

impl Speaker {
    /// Creates a speaker. `cluster_id` only matters for route reflectors;
    /// by convention we use the router id.
    pub fn new(id: SpeakerId, asn: Asn) -> Self {
        Self {
            id,
            asn,
            cluster_id: id.0,
            peers: BTreeMap::new(),
            adj_rib_in: BTreeMap::new(),
            local: BTreeMap::new(),
            loc_rib: BTreeMap::new(),
            adj_rib_out: BTreeMap::new(),
            igp_costs: BTreeMap::new(),
            session_costs: BTreeMap::new(),
            import_hook: None,
            best_external: false,
            ignore_igp_metric: false,
            export_own_ibgp: false,
            dirty: BTreeSet::new(),
        }
    }

    /// Router id.
    pub fn id(&self) -> SpeakerId {
        self.id
    }

    /// AS number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Configures a peer session (one side; the other side configures its
    /// own view).
    pub fn add_peer(&mut self, peer: SpeakerId, config: PeerConfig) {
        self.peers.insert(peer, config);
    }

    /// Tears a session down: the peer's routes leave Adj-RIB-In (as if a
    /// withdraw arrived for each), our advertisements to it are forgotten,
    /// and affected prefixes are reselected on the next
    /// [`Speaker::process`]. Models session/router failure.
    pub fn remove_peer(&mut self, peer: SpeakerId) {
        if self.peers.remove(&peer).is_none() {
            return;
        }
        for (prefix, per_peer) in self.adj_rib_in.iter_mut() {
            if per_peer.remove(&peer).is_some() {
                self.dirty.insert(*prefix);
            }
        }
        self.adj_rib_out.remove(&peer);
        // Best-external and reflection decisions can change even for
        // prefixes the peer never announced (it may have been an export
        // target): reconsider everything we currently advertise.
        let all: Vec<Prefix> = self.loc_rib.keys().copied().collect();
        self.dirty.extend(all);
    }

    /// The configured peers.
    pub fn peer_ids(&self) -> impl Iterator<Item = SpeakerId> + '_ {
        self.peers.keys().copied()
    }

    /// Peer configuration lookup.
    pub fn peer_config(&self, peer: SpeakerId) -> Option<&PeerConfig> {
        self.peers.get(&peer)
    }

    /// Installs the import hook (route reflectors in VNS).
    pub fn set_import_hook(&mut self, hook: Box<dyn ImportHook>) {
        self.import_hook = Some(hook);
    }

    /// Enables best-external advertisement (border routers in VNS).
    pub fn set_best_external(&mut self, on: bool) {
        self.best_external = on;
    }

    /// Enables eBGP export of AS-internal (empty-path) iBGP-learned routes
    /// (multi-router transit providers; see the field docs).
    pub fn set_export_own_ibgp(&mut self, on: bool) {
        self.export_own_ibgp = on;
    }

    /// Sets IGP costs from this router to others in its AS.
    pub fn set_igp_costs(&mut self, costs: BTreeMap<SpeakerId, u64>) {
        self.igp_costs = costs;
        // Hot-potato inputs changed: every prefix could select differently.
        let all: Vec<Prefix> = self
            .adj_rib_in
            .keys()
            .chain(self.local.keys())
            .copied()
            .collect();
        self.dirty.extend(all);
    }

    /// Originates a prefix locally with default attributes.
    pub fn originate(&mut self, prefix: Prefix) {
        self.originate_with(prefix, Vec::new());
    }

    /// Originates a prefix locally with communities (e.g. `NO_EXPORT` for
    /// the management interface's injected more-specifics).
    pub fn originate_with(&mut self, prefix: Prefix, communities: Vec<Community>) {
        let mut attrs = RouteAttrs::originate(self.id);
        attrs.communities = communities;
        self.local.insert(prefix, attrs);
        self.dirty.insert(prefix);
    }

    /// Requests a full re-advertisement to every peer (BGP route refresh,
    /// outbound). Used after import-policy state changes on a neighbour —
    /// e.g. the management interface flipping a geo-routing override —
    /// so the neighbour re-receives (and re-transforms) every route.
    pub fn request_refresh_all(&mut self) {
        // Poison the out-fingerprints so the next process() re-sends even
        // unchanged advertisements.
        for per_peer in self.adj_rib_out.values_mut() {
            for fp in per_peer.values_mut() {
                *fp ^= 0x5a5a_5a5a_5a5a_5a5a;
            }
        }
        let all: Vec<Prefix> = self
            .adj_rib_in
            .keys()
            .chain(self.local.keys())
            .chain(self.loc_rib.keys())
            .copied()
            .collect();
        self.dirty.extend(all);
    }

    /// Schedules re-evaluation (and hence re-export) of every known prefix
    /// *without* poisoning existing Adj-RIB-Out fingerprints. Peers that
    /// already hold the current state diff each re-export to a no-op; a
    /// freshly (re)connected peer — whose fingerprints were cleared at
    /// session teardown — receives the full table. This is the outbound
    /// half of BGP session establishment, used by
    /// [`crate::BgpNet::reconnect`].
    pub fn schedule_initial_advertisement(&mut self) {
        let all: Vec<Prefix> = self
            .adj_rib_in
            .keys()
            .chain(self.local.keys())
            .chain(self.loc_rib.keys())
            .copied()
            .collect();
        self.dirty.extend(all);
    }

    /// Stops originating a prefix.
    pub fn withdraw_local(&mut self, prefix: Prefix) {
        if self.local.remove(&prefix).is_some() {
            self.dirty.insert(prefix);
        }
    }

    /// Handles one incoming message from `from`. Call [`Speaker::process`]
    /// afterwards to recompute and collect outbound messages.
    pub fn receive(&mut self, from: SpeakerId, msg: Message) {
        let Some(cfg) = self.peers.get(&from).copied() else {
            debug_assert!(false, "message from unconfigured peer {from}");
            return;
        };
        match msg {
            Message::Withdraw { prefix } => {
                if let Some(per_peer) = self.adj_rib_in.get_mut(&prefix) {
                    if per_peer.remove(&from).is_some() {
                        self.dirty.insert(prefix);
                    }
                }
            }
            Message::Update { prefix, mut attrs } => {
                let source = match cfg.kind {
                    PeerKind::Ebgp { peer_as, relation } => {
                        // eBGP loop prevention: our AS already on the path.
                        if attrs.path_contains(self.asn) {
                            // Treat as implicit withdraw of any previous
                            // route from this peer.
                            self.receive(from, Message::Withdraw { prefix });
                            return;
                        }
                        // Import policy sets LOCAL_PREF.
                        let _ = cfg.import.import_ebgp(relation, &mut attrs);
                        // Next-hop-self at ingress; reflection attributes
                        // never cross AS boundaries.
                        attrs.next_hop = self.id;
                        attrs.originator_id = None;
                        attrs.cluster_list.clear();
                        RouteSource::Ebgp {
                            peer: from,
                            peer_as,
                            relation,
                        }
                    }
                    PeerKind::Ibgp | PeerKind::IbgpClient => {
                        // iBGP loop prevention (reflection).
                        if attrs.originator_id == Some(self.id)
                            || attrs.cluster_list.contains(&self.cluster_id)
                        {
                            return;
                        }
                        RouteSource::Ibgp { peer: from }
                    }
                };
                if let Some(hook) = &self.import_hook {
                    hook.on_import(from, prefix, &source, &mut attrs);
                }
                self.adj_rib_in
                    .entry(prefix)
                    .or_default()
                    .insert(from, Candidate { attrs, source });
                self.dirty.insert(prefix);
            }
        }
    }

    /// Sets the hot-potato cost of exiting through eBGP peer `peer`
    /// (AS-level modelling; see [`DecisionContext::exit_cost`]).
    pub fn set_session_cost(&mut self, peer: SpeakerId, cost: u64) {
        self.session_costs.insert(peer, cost);
        let all: Vec<Prefix> = self.adj_rib_in.keys().copied().collect();
        self.dirty.extend(all);
    }

    /// Enables/disables the IGP-metric decision step (step 6). See the
    /// field doc: reflectors ignore it so their choice is
    /// vantage-independent. Re-runs the decision process on every prefix.
    pub fn set_ignore_igp_metric(&mut self, on: bool) {
        self.ignore_igp_metric = on;
        let all: Vec<Prefix> = self.adj_rib_in.keys().copied().collect();
        self.dirty.extend(all);
    }

    /// Whether the IGP-metric decision step is skipped here.
    pub fn ignores_igp_metric(&self) -> bool {
        self.ignore_igp_metric
    }

    /// Hot-potato exit cost for a candidate (decision step 6).
    fn exit_cost(&self, c: &Candidate) -> Option<u64> {
        if self.ignore_igp_metric {
            return Some(0);
        }
        match c.source {
            RouteSource::Local => Some(0),
            RouteSource::Ebgp { peer, .. } => {
                Some(self.session_costs.get(&peer).copied().unwrap_or(0))
            }
            RouteSource::Ibgp { .. } => {
                let nh = c.attrs.next_hop;
                if nh == self.id {
                    Some(0)
                } else {
                    self.igp_costs.get(&nh).copied()
                }
            }
        }
    }

    /// Recomputes all dirty prefixes; returns the messages to deliver.
    pub fn process(&mut self) -> Vec<(SpeakerId, Message)> {
        let dirty: Vec<Prefix> = std::mem::take(&mut self.dirty).into_iter().collect();
        let mut out = Vec::new();
        for prefix in dirty {
            self.reselect(prefix, &mut out);
        }
        out
    }

    /// Whether any prefix awaits processing.
    pub fn has_pending_work(&self) -> bool {
        !self.dirty.is_empty()
    }

    fn reselect(&mut self, prefix: Prefix, out: &mut Vec<(SpeakerId, Message)>) {
        // Gather candidates: learned + local.
        let local_cand = self.local.get(&prefix).map(|attrs| Candidate {
            attrs: attrs.clone(),
            source: RouteSource::Local,
        });
        let ctx_costs = |c: &Candidate| self.exit_cost(c);
        let ctx = DecisionContext {
            exit_cost: &ctx_costs,
        };
        let learned = self.adj_rib_in.get(&prefix);
        let best = {
            let iter = learned
                .into_iter()
                .flat_map(|m| m.values())
                .chain(local_cand.iter());
            select_best(iter, &ctx).cloned()
        };

        // Best eBGP-learned candidate (for best-external).
        let best_ext = if self.best_external {
            let iter = learned
                .into_iter()
                .flat_map(|m| m.values())
                .filter(|c| c.source.is_ebgp());
            select_best(iter, &ctx).cloned()
        } else {
            None
        };

        match &best {
            Some(b) => {
                self.loc_rib.insert(prefix, b.clone());
            }
            None => {
                self.loc_rib.remove(&prefix);
            }
        }

        // Export to every peer.
        let peers: Vec<(SpeakerId, PeerConfig)> =
            self.peers.iter().map(|(k, v)| (*k, *v)).collect();
        for (peer, cfg) in peers {
            let desired = self.export_for(&best, best_ext.as_ref(), peer, &cfg);
            // Runtime twin of the vns-verify no-export containment
            // invariant: a NO_EXPORT route must never be put on an eBGP
            // session's wire.
            debug_assert!(
                !(cfg.kind.is_ebgp()
                    && desired
                        .as_ref()
                        .is_some_and(|a| a.has_community(Community::NoExport))),
                "NO_EXPORT route for {prefix} would leak over eBGP {} -> {peer}",
                self.id
            );
            let fp = desired.as_ref().map(attrs_fingerprint);
            let sent = self
                .adj_rib_out
                .get(&peer)
                .and_then(|m| m.get(&prefix))
                .copied();
            match (desired, fp, sent) {
                (Some(attrs), Some(new_fp), old) if old != Some(new_fp) => {
                    self.adj_rib_out
                        .entry(peer)
                        .or_default()
                        .insert(prefix, new_fp);
                    out.push((peer, Message::Update { prefix, attrs }));
                }
                (None, _, Some(_)) => {
                    self.adj_rib_out.entry(peer).or_default().remove(&prefix);
                    out.push((peer, Message::Withdraw { prefix }));
                }
                _ => {}
            }
        }
    }

    /// Computes what (if anything) to advertise to `peer` for the current
    /// best route.
    fn export_for(
        &self,
        best: &Option<Candidate>,
        best_ext: Option<&Candidate>,
        peer: SpeakerId,
        cfg: &PeerConfig,
    ) -> Option<RouteAttrs> {
        let best = best.as_ref()?;
        if let Some(attrs) = self.advertise(best, peer, cfg) {
            return Some(attrs);
        }
        // Best-external: when the best route is iBGP-learned (and therefore
        // not advertised back over iBGP by the rules above), a border
        // router still offers its best eBGP-learned route to its iBGP
        // peers so the reflectors keep seeing every external option.
        if !cfg.kind.is_ebgp() && best.source.is_ibgp() {
            if let Some(ext) = best_ext {
                return self.advertise(ext, peer, cfg);
            }
        }
        None
    }

    /// Standard export rules for one concrete candidate.
    fn advertise(
        &self,
        candidate: &Candidate,
        peer: SpeakerId,
        cfg: &PeerConfig,
    ) -> Option<RouteAttrs> {
        // Never echo a route back to the peer it came from.
        if candidate.source.peer() == Some(peer) {
            return None;
        }
        if candidate.attrs.has_community(Community::NoAdvertise) {
            return None;
        }

        match cfg.kind {
            PeerKind::Ebgp { peer_as, relation } => {
                if candidate.attrs.has_community(Community::NoExport) {
                    return None;
                }
                // Valley-free scoping. iBGP-learned routes export over
                // eBGP only when an ingress relation tag proves they came
                // from a customer/peer/provider session elsewhere in this
                // AS (multi-router transit providers); untagged ones (VNS
                // runs FlatPreference and never tags) stay internal — VNS
                // provides no transit.
                let learned_rel = match candidate.source {
                    RouteSource::Local => None,
                    RouteSource::Ebgp { relation, .. } => Some(relation),
                    RouteSource::Ibgp { .. } => {
                        match crate::policy::relation_from_tags(&candidate.attrs) {
                            Some(rel) => Some(rel),
                            // Empty path + no tag = originated by a sibling
                            // router in this AS.
                            None if self.export_own_ibgp && candidate.attrs.as_path.is_empty() => {
                                None
                            }
                            None => return None,
                        }
                    }
                };
                if !may_export(learned_rel, relation) {
                    return None;
                }
                // Sender-side loop avoidance.
                if candidate.attrs.path_contains(peer_as) {
                    return None;
                }
                let mut attrs = candidate.attrs.clone();
                crate::policy::strip_relation_tags(&mut attrs);
                attrs.as_path = attrs.as_path.prepend(self.asn);
                attrs.local_pref = DEFAULT_LOCAL_PREF; // non-transitive
                attrs.med = 0; // non-transitive
                attrs.next_hop = self.id;
                attrs.originator_id = None;
                attrs.cluster_list.clear();
                Some(attrs)
            }
            PeerKind::Ibgp | PeerKind::IbgpClient => {
                match candidate.source {
                    // Own and eBGP-learned routes go to every iBGP peer.
                    RouteSource::Local | RouteSource::Ebgp { .. } => Some(candidate.attrs.clone()),
                    // iBGP-learned routes: reflection rules.
                    RouteSource::Ibgp { peer: learned_from } => {
                        let from_client = self
                            .peers
                            .get(&learned_from)
                            .is_some_and(|c| c.kind == PeerKind::IbgpClient);
                        let to_client = cfg.kind == PeerKind::IbgpClient;
                        if !from_client && !to_client {
                            // Plain iBGP: no re-advertisement.
                            return None;
                        }
                        // Acting as reflector: stamp ORIGINATOR_ID and
                        // CLUSTER_LIST.
                        let mut attrs = candidate.attrs.clone();
                        if attrs.originator_id.is_none() {
                            attrs.originator_id = Some(learned_from);
                        }
                        attrs.cluster_list.insert(0, self.cluster_id);
                        Some(attrs)
                    }
                }
            }
        }
    }

    /// The current best route for `prefix`.
    pub fn best(&self, prefix: &Prefix) -> Option<&Candidate> {
        self.loc_rib.get(prefix)
    }

    /// All prefixes with a selected route.
    pub fn loc_rib_prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.loc_rib.keys().copied()
    }

    /// Longest-prefix match over the Loc-RIB for a host address.
    pub fn lookup(&self, ip: u32) -> Option<(Prefix, &Candidate)> {
        self.lookup_up_to(ip, None)
    }

    /// Longest-prefix match restricted to prefixes *shorter than*
    /// `max_len_exclusive`. The data-plane resolver uses this to fall
    /// through a locally injected steering more-specific (the management
    /// interface's Sec 3.2 trick) onto the covering route that actually
    /// leaves the AS.
    pub fn lookup_up_to(
        &self,
        ip: u32,
        max_len_exclusive: Option<u8>,
    ) -> Option<(Prefix, &Candidate)> {
        // Loc-RIB is a BTreeMap; scan for the most specific containing
        // prefix. Speakers hold O(1k) prefixes in our campaigns, so the
        // linear scan is acceptable; hot paths cache resolutions upstream.
        self.loc_rib
            .iter()
            .filter(|(p, _)| p.contains(ip) && max_len_exclusive.is_none_or(|m| p.len() < m))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, c)| (*p, c))
    }

    /// The best *eBGP-learned* candidate for a prefix, regardless of what
    /// the overall decision selected. A router that statically injects a
    /// steering more-specific (Sec 3.2) resolves it over its own external
    /// route to the covering prefix — this is that route.
    pub fn best_external_route(&self, prefix: &Prefix) -> Option<&Candidate> {
        let ctx_costs = |c: &Candidate| self.exit_cost(c);
        let ctx = DecisionContext {
            exit_cost: &ctx_costs,
        };
        let learned = self.adj_rib_in.get(prefix)?;
        select_best(learned.values().filter(|c| c.source.is_ebgp()), &ctx)
    }

    /// Candidates currently in Adj-RIB-In for a prefix (diagnostics).
    pub fn candidates(&self, prefix: &Prefix) -> Vec<&Candidate> {
        self.adj_rib_in
            .get(prefix)
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    /// Locally originated prefixes.
    pub fn local_prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.local.keys().copied()
    }

    // --- Read-only introspection (static analysis / vns-verify) -----------
    //
    // These accessors expose converged control-plane state without any
    // mutation, so an external checker can audit RIBs the way Batfish
    // audits vendor configs: what is in Adj-RIB-In, what *would* go out on
    // each session, and whether next hops resolve.

    /// Every Adj-RIB-In entry as `(prefix, sending peer, candidate)`, in
    /// prefix order. Read-only; intended for invariant checkers.
    pub fn adj_rib_in_entries(&self) -> impl Iterator<Item = (Prefix, SpeakerId, &Candidate)> + '_ {
        self.adj_rib_in
            .iter()
            .flat_map(|(p, per_peer)| per_peer.iter().map(|(from, c)| (*p, *from, c)))
    }

    /// Recomputes the exact attributes this router would currently
    /// advertise to `peer` for `prefix` — the full export pipeline
    /// (echo suppression, community filtering, valley-free scoping,
    /// best-external fallback, reflection stamping) applied to the
    /// converged best route. `None` when nothing would be advertised or
    /// the peer is not configured.
    ///
    /// The stored Adj-RIB-Out keeps only fingerprints to diff against; this
    /// is the authoritative way to inspect outbound state.
    pub fn exported_to(&self, peer: SpeakerId, prefix: &Prefix) -> Option<RouteAttrs> {
        let cfg = self.peers.get(&peer)?;
        let best = self.loc_rib.get(prefix).cloned();
        let best_ext = if self.best_external {
            self.best_external_route(prefix).cloned()
        } else {
            None
        };
        self.export_for(&best, best_ext.as_ref(), peer, cfg)
    }

    /// Installed IGP cost from this router to `to` (`Some(0)` for itself,
    /// `None` when `to` is IGP-unreachable or outside the AS).
    pub fn igp_cost(&self, to: SpeakerId) -> Option<u64> {
        if to == self.id {
            return Some(0);
        }
        self.igp_costs.get(&to).copied()
    }

    /// Configured hot-potato exit cost towards eBGP peer `peer` (defaults
    /// to 0 when unset, matching the decision process).
    pub fn session_cost(&self, peer: SpeakerId) -> u64 {
        self.session_costs.get(&peer).copied().unwrap_or(0)
    }

    /// Whether best-external advertisement is enabled on this router.
    pub fn best_external_enabled(&self) -> bool {
        self.best_external
    }

    // --- Planted-defect harness (vns-verify mutation corpus) ---------------
    //
    // These hooks corrupt the *selected* route in the Loc-RIB in place,
    // without touching Adj-RIB-In, the Adj-RIB-Out fingerprints, or the
    // dirty set. The control plane stays quiescent and keeps believing its
    // own (now wrong) state — exactly the kind of silent forwarding-plane
    // damage the data-plane model checker exists to catch. The simulator
    // itself never calls them; only the verification harness does.

    /// Drops the selected route for `prefix` from the Loc-RIB (downstream
    /// routers still forward here — a silent blackhole). Returns `false`
    /// when no route was selected.
    pub fn corrupt_drop_route(&mut self, prefix: &Prefix) -> bool {
        self.loc_rib.remove(prefix).is_some()
    }

    /// Rewrites the selected route for `prefix` into an iBGP-style entry
    /// whose next hop is `next_hop`, keeping the original path attributes.
    /// Pointing two routers at each other forges a forwarding cycle;
    /// pointing at an IGP-unreachable or phantom speaker forges a
    /// blackhole. Returns `false` when no route was selected.
    pub fn corrupt_redirect_ibgp(&mut self, prefix: &Prefix, next_hop: SpeakerId) -> bool {
        match self.loc_rib.get_mut(prefix) {
            Some(cand) => {
                cand.attrs.next_hop = next_hop;
                cand.source = RouteSource::Ibgp { peer: next_hop };
                true
            }
            None => false,
        }
    }

    /// Replaces the selected route for `prefix` wholesale, returning the
    /// previous entry. Lets the harness restore a candidate corruption
    /// site that turned out unusable and move to the next one.
    pub fn corrupt_replace_route(&mut self, prefix: Prefix, cand: Candidate) -> Option<Candidate> {
        self.loc_rib.insert(prefix, cand)
    }

    /// Rewrites the forwarding peer of an eBGP-selected route for `prefix`
    /// (the AS-level analogue of a corrupted FIB next hop). Returns `false`
    /// when the selected route is not eBGP-learned.
    pub fn corrupt_forward_peer(&mut self, prefix: &Prefix, peer: SpeakerId) -> bool {
        match self.loc_rib.get_mut(prefix) {
            Some(cand) => match cand.source {
                RouteSource::Ebgp {
                    peer_as, relation, ..
                } => {
                    cand.source = RouteSource::Ebgp {
                        peer,
                        peer_as,
                        relation,
                    };
                    true
                }
                _ => false,
            },
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Origin;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ebgp_cfg(peer_as: u32, rel: Relation) -> PeerConfig {
        PeerConfig {
            kind: PeerKind::Ebgp {
                peer_as: Asn(peer_as),
                relation: rel,
            },
            import: Policy::GaoRexford,
        }
    }

    fn update(prefix: Prefix, path: Vec<u32>, from: SpeakerId) -> Message {
        Message::Update {
            prefix,
            attrs: RouteAttrs {
                local_pref: DEFAULT_LOCAL_PREF,
                as_path: path.into_iter().map(Asn).collect(),
                origin: Origin::Igp,
                med: 0,
                communities: vec![],
                next_hop: from,
                originator_id: None,
                cluster_list: vec![],
            },
        }
    }

    #[test]
    fn origination_advertises_to_peers() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Peer));
        s.originate(p("10.0.0.0/8"));
        let msgs = s.process();
        assert_eq!(msgs.len(), 1);
        let (to, Message::Update { prefix, attrs }) = &msgs[0] else {
            panic!("expected update")
        };
        assert_eq!(*to, SpeakerId(2));
        assert_eq!(*prefix, p("10.0.0.0/8"));
        assert_eq!(attrs.as_path, vec![Asn(100)]);
    }

    #[test]
    fn ebgp_loop_rejected() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200, 100, 300], SpeakerId(2)),
        );
        s.process();
        assert!(s.best(&p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn import_sets_local_pref_and_next_hop_self() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Customer));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        s.process();
        let best = s.best(&p("10.0.0.0/8")).unwrap();
        assert_eq!(best.attrs.local_pref, 130); // customer preference
        assert_eq!(best.attrs.next_hop, SpeakerId(1)); // next-hop-self
    }

    #[test]
    fn customer_route_preferred_over_provider() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.add_peer(SpeakerId(3), ebgp_cfg(300, Relation::Customer));
        // Provider offers a shorter path; customer still wins on LOCAL_PREF.
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        s.receive(
            SpeakerId(3),
            update(p("10.0.0.0/8"), vec![300, 400, 500], SpeakerId(3)),
        );
        s.process();
        let best = s.best(&p("10.0.0.0/8")).unwrap();
        assert_eq!(best.attrs.neighbor_as(), Some(Asn(300)));
    }

    #[test]
    fn no_export_not_advertised_over_ebgp() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Peer));
        s.add_peer(
            SpeakerId(3),
            PeerConfig {
                kind: PeerKind::Ibgp,
                import: Policy::FlatPreference,
            },
        );
        s.originate_with(p("10.0.0.0/8"), vec![Community::NoExport]);
        let msgs = s.process();
        // Only the iBGP peer hears about it.
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, SpeakerId(3));
    }

    #[test]
    fn peer_routes_not_given_to_peers() {
        // Valley-free: a route learned from a peer is not exported to
        // another peer, only to customers.
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Peer));
        s.add_peer(SpeakerId(3), ebgp_cfg(300, Relation::Peer));
        s.add_peer(SpeakerId(4), ebgp_cfg(400, Relation::Customer));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        let msgs = s.process();
        let to: Vec<SpeakerId> = msgs.iter().map(|(t, _)| *t).collect();
        assert_eq!(to, vec![SpeakerId(4)]);
    }

    #[test]
    fn withdraw_propagates() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.add_peer(SpeakerId(4), ebgp_cfg(400, Relation::Customer));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        let msgs = s.process();
        assert_eq!(msgs.len(), 1, "advertised to customer");
        s.receive(
            SpeakerId(2),
            Message::Withdraw {
                prefix: p("10.0.0.0/8"),
            },
        );
        let msgs = s.process();
        assert!(matches!(msgs.as_slice(), [(to, Message::Withdraw { .. })] if *to == SpeakerId(4)));
        assert!(s.best(&p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn no_duplicate_updates() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.add_peer(SpeakerId(4), ebgp_cfg(400, Relation::Customer));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        assert_eq!(s.process().len(), 1);
        // Same update again: nothing new to say.
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        assert_eq!(s.process().len(), 0);
    }

    #[test]
    fn reflector_stamps_cluster_list_and_originator() {
        let mut rr = Speaker::new(SpeakerId(10), Asn(100));
        rr.add_peer(
            SpeakerId(1),
            PeerConfig {
                kind: PeerKind::IbgpClient,
                import: Policy::FlatPreference,
            },
        );
        rr.add_peer(
            SpeakerId(2),
            PeerConfig {
                kind: PeerKind::IbgpClient,
                import: Policy::FlatPreference,
            },
        );
        // Client 1 sends an iBGP update (its eBGP-learned route).
        rr.receive(
            SpeakerId(1),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(1)),
        );
        let msgs = rr.process();
        // Reflected to client 2 only (not back to 1).
        assert_eq!(msgs.len(), 1);
        let (to, Message::Update { attrs, .. }) = &msgs[0] else {
            panic!("expected update");
        };
        assert_eq!(*to, SpeakerId(2));
        assert_eq!(attrs.originator_id, Some(SpeakerId(1)));
        assert_eq!(attrs.cluster_list, vec![10]);
    }

    #[test]
    fn reflection_loop_prevented() {
        let mut rr = Speaker::new(SpeakerId(10), Asn(100));
        rr.add_peer(
            SpeakerId(1),
            PeerConfig {
                kind: PeerKind::IbgpClient,
                import: Policy::FlatPreference,
            },
        );
        let mut msg = update(p("10.0.0.0/8"), vec![200], SpeakerId(1));
        if let Message::Update { attrs, .. } = &mut msg {
            attrs.cluster_list = vec![10]; // our own cluster id
        }
        rr.receive(SpeakerId(1), msg);
        rr.process();
        assert!(rr.best(&p("10.0.0.0/8")).is_none());
    }

    #[test]
    fn plain_ibgp_does_not_re_advertise() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(
            SpeakerId(2),
            PeerConfig {
                kind: PeerKind::Ibgp,
                import: Policy::FlatPreference,
            },
        );
        s.add_peer(
            SpeakerId(3),
            PeerConfig {
                kind: PeerKind::Ibgp,
                import: Policy::FlatPreference,
            },
        );
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        let msgs = s.process();
        assert!(
            msgs.is_empty(),
            "iBGP-learned must not go to plain iBGP peers"
        );
    }

    #[test]
    fn best_external_advertises_ebgp_alternative() {
        // Border router: best route is iBGP-learned (higher LOCAL_PREF set
        // by an RR hook elsewhere), but it still tells its RR about its own
        // eBGP route when best-external is on.
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.set_best_external(true);
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.add_peer(
            SpeakerId(10),
            PeerConfig {
                kind: PeerKind::Ibgp,
                import: Policy::FlatPreference,
            },
        );
        // Own eBGP route.
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        let msgs = s.process();
        assert_eq!(msgs.len(), 1, "eBGP best goes to RR");
        // Now the RR sends a better (geo-boosted) route via iBGP.
        let mut better = update(p("10.0.0.0/8"), vec![300, 200], SpeakerId(10));
        if let Message::Update { attrs, .. } = &mut better {
            attrs.local_pref = 500;
            attrs.next_hop = SpeakerId(5);
        }
        s.receive(SpeakerId(10), better);
        let msgs = s.process();
        // Best is now iBGP-learned; without best-external we would withdraw
        // from the RR. With it, we keep advertising the eBGP route.
        assert!(
            msgs.is_empty(),
            "best-external keeps the previous eBGP advertisement in place: {msgs:?}"
        );
        let best = s.best(&p("10.0.0.0/8")).unwrap();
        assert!(best.source.is_ibgp());
    }

    #[test]
    fn without_best_external_route_hides() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.add_peer(
            SpeakerId(10),
            PeerConfig {
                kind: PeerKind::Ibgp,
                import: Policy::FlatPreference,
            },
        );
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        assert_eq!(s.process().len(), 1);
        let mut better = update(p("10.0.0.0/8"), vec![300, 200], SpeakerId(10));
        if let Message::Update { attrs, .. } = &mut better {
            attrs.local_pref = 500;
            attrs.next_hop = SpeakerId(5);
        }
        s.receive(SpeakerId(10), better);
        let msgs = s.process();
        // The hidden-routes pathology: our eBGP route is withdrawn from the
        // RR's view.
        assert!(
            matches!(msgs.as_slice(), [(to, Message::Withdraw { .. })] if *to == SpeakerId(10)),
            "got {msgs:?}"
        );
    }

    #[test]
    fn import_hook_rewrites_local_pref() {
        #[derive(Debug)]
        struct Boost;
        impl ImportHook for Boost {
            fn on_import(
                &self,
                _from: SpeakerId,
                _prefix: Prefix,
                _source: &RouteSource,
                attrs: &mut RouteAttrs,
            ) {
                attrs.local_pref = 999;
            }
        }
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.set_import_hook(Box::new(Boost));
        s.add_peer(SpeakerId(2), ebgp_cfg(200, Relation::Provider));
        s.receive(
            SpeakerId(2),
            update(p("10.0.0.0/8"), vec![200], SpeakerId(2)),
        );
        s.process();
        assert_eq!(s.best(&p("10.0.0.0/8")).unwrap().attrs.local_pref, 999);
    }

    #[test]
    fn lookup_longest_match() {
        let mut s = Speaker::new(SpeakerId(1), Asn(100));
        s.originate(p("10.0.0.0/8"));
        s.originate(p("10.1.0.0/16"));
        s.process();
        let (pre, _) = s.lookup(0x0a010203).unwrap();
        assert_eq!(pre, p("10.1.0.0/16"));
        let (pre, _) = s.lookup(0x0aff0000).unwrap();
        assert_eq!(pre, p("10.0.0.0/8"));
    }
}
