//! End-to-end verifier tests: build a real (tiny) world, seed each
//! invariant class broken, and assert `vns-verify` catches every one —
//! plus the override-precedence semantics the management interface
//! promises.

use vns_bgp::{
    Asn, Community, Message, Origin, PeerKind, Prefix, RouteAttrs, RouteSource, SpeakerId,
    DEFAULT_LOCAL_PREF,
};
use vns_core::{build_vns, LocalPrefFn, PopId, RoutingMode, Vns, VnsConfig};
use vns_topo::{generate, Internet, TopoConfig};
use vns_verify::{verify, Invariant, Severity};

fn world_with(seed: u64, tweak: impl FnOnce(&mut VnsConfig)) -> (Internet, Vns) {
    let mut internet = generate(&TopoConfig::tiny(seed)).expect("topology generation");
    let mut cfg = VnsConfig::default();
    tweak(&mut cfg);
    let vns = build_vns(&mut internet, &cfg).expect("VNS convergence");
    (internet, vns)
}

fn world(seed: u64) -> (Internet, Vns) {
    world_with(seed, |_| {})
}

/// First externally learned prefix in a reflector's Adj-RIB-In (non-empty
/// AS path — VNS-originated service prefixes are exempt from geo scoring).
fn reflector_external_prefix(internet: &Internet, vns: &Vns) -> Prefix {
    let rr = vns.reflectors()[0];
    let sp = internet.net.speaker(rr).expect("reflector registered");
    sp.adj_rib_in_entries()
        .find(|(_, _, c)| !c.attrs.as_path.is_empty())
        .map(|(p, _, _)| p)
        .expect("reflector sees external routes")
}

fn wire_attrs(as_path: Vec<Asn>, communities: Vec<Community>) -> RouteAttrs {
    RouteAttrs {
        local_pref: DEFAULT_LOCAL_PREF,
        as_path: as_path.into(),
        origin: Origin::Igp,
        med: 0,
        communities,
        next_hop: SpeakerId(0),
        originator_id: None,
        cluster_list: vec![],
    }
}

#[test]
fn tiny_world_verifies_clean_in_both_modes() {
    for mode in [RoutingMode::GeoColdPotato, RoutingMode::HotPotato] {
        let (internet, vns) = world_with(41, |c| c.mode = mode);
        let report = verify(&internet, &vns);
        assert!(report.is_clean(), "{mode:?}:\n{}", report.render());
    }
}

#[test]
fn broken_lp_fn_deployment_flagged() {
    // A floor of 0 collapses every geo score to ~0 — below the BGP
    // default, so geo-scored routes lose to untouched ones.
    let (internet, vns) = world_with(42, |c| {
        c.lp_fn = LocalPrefFn::BandedLinear {
            floor: 0,
            band_km: 1_000_000.0,
        };
    });
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::LpFnShape)
            .any(|v| v.severity == Severity::Error),
        "{}",
        report.render()
    );
}

#[test]
fn stale_override_table_flagged() {
    let (internet, vns) = world(43);
    assert!(verify(&internet, &vns).is_clean());
    // Mutate the override table WITHOUT the route refresh the management
    // interface performs: the reflectors' RIBs still carry the old geo
    // preferences, contradicting the table.
    let prefix = reflector_external_prefix(&internet, &vns);
    vns.overrides()
        .write()
        .unwrap()
        .force_exit(prefix, PopId(1));
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::GeoPreference)
            .any(|v| v.severity == Severity::Error && v.prefix == Some(prefix)),
        "{}",
        report.render()
    );
}

#[test]
fn no_export_leak_flagged() {
    let (mut internet, vns) = world(44);
    // Deliver a NO_EXPORT-tagged update across an eBGP session, as a buggy
    // border that failed to filter would: the community is now outside the
    // originating AS.
    let border = vns.pops()[0].borders[0];
    let ext_peer = {
        let sp = internet.net.speaker(border).expect("border registered");
        sp.peer_ids()
            .find(|p| sp.peer_config(*p).is_some_and(|c| c.kind.is_ebgp()))
            .expect("border has external sessions")
    };
    let leaked: Prefix = "123.45.0.0/20".parse().expect("prefix");
    let attrs = wire_attrs(vec![vns.asn()], vec![Community::NoExport]);
    internet
        .net
        .speaker_mut(ext_peer)
        .expect("peer registered")
        .receive(
            border,
            Message::Update {
                prefix: leaked,
                attrs,
            },
        );
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::NoExportLeak)
            .any(|v| v.severity == Severity::Error && v.prefix == Some(leaked)),
        "{}",
        report.render()
    );
}

#[test]
fn corrupted_override_table_flagged() {
    let (internet, vns) = world(45);
    let prefix = reflector_external_prefix(&internet, &vns);
    // Hand-corrupt the table into the both-exempt-and-forced state the
    // mutators normally make unrepresentable, and force a second prefix to
    // a PoP that does not exist.
    vns.overrides()
        .write()
        .unwrap()
        .inject_inconsistent_for_test(prefix, PopId(3));
    let ghost: Prefix = "200.1.0.0/16".parse().expect("prefix");
    vns.overrides()
        .write()
        .unwrap()
        .force_exit(ghost, PopId(99));
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::OverrideSanity)
            .any(|v| v.prefix == Some(prefix) && v.message.contains("both")),
        "{}",
        report.render()
    );
    assert!(
        report
            .of(Invariant::OverrideSanity)
            .any(|v| v.prefix == Some(ghost) && v.message.contains("not a deployed PoP")),
        "{}",
        report.render()
    );
    assert!(!report.passes());
}

#[test]
fn hidden_routes_surface_without_best_external() {
    // The paper's pathology, reproduced deliberately: with best-external
    // off, borders whose best route is iBGP-learned hide their eBGP
    // alternatives from the reflectors. Warning severity (the deployment
    // chose this), never error.
    let (internet, vns) = world_with(46, |c| c.best_external = false);
    let report = verify(&internet, &vns);
    let hidden: Vec<_> = report.of(Invariant::HiddenRoute).collect();
    assert!(!hidden.is_empty(), "{}", report.render());
    assert!(
        hidden.iter().all(|v| v.severity == Severity::Warning),
        "{}",
        report.render()
    );
    // Warnings alone must not fail the campaign pre-flight gate.
    assert!(report.passes(), "{}", report.render());
}

#[test]
fn valley_violation_flagged() {
    let (mut internet, vns) = world(47);
    // Find an external neighbour that VNS relates to as a *peer*, holding
    // a best route it learned from its own provider or peer — a route
    // Gao–Rexford forbids it from exporting to us.
    let mut seeded = None;
    'outer: for pop in vns.pops() {
        for b in pop.borders {
            let sp = internet.net.speaker(b).expect("border registered");
            let peers: Vec<SpeakerId> = sp
                .peer_ids()
                .filter(|p| {
                    matches!(
                        sp.peer_config(*p).map(|c| c.kind),
                        Some(PeerKind::Ebgp {
                            relation: vns_bgp::Relation::Peer,
                            ..
                        })
                    )
                })
                .collect();
            for x in peers {
                let xs = internet.net.speaker(x).expect("peer registered");
                let candidate = xs.loc_rib_prefixes().find(|p| {
                    matches!(
                        xs.best(p).map(|c| &c.source),
                        Some(RouteSource::Ebgp {
                            relation: vns_bgp::Relation::Peer | vns_bgp::Relation::Provider,
                            ..
                        })
                    )
                });
                if let Some(prefix) = candidate {
                    seeded = Some((b, x, xs.asn(), prefix));
                    break 'outer;
                }
            }
        }
    }
    let (border, x, x_asn, prefix) = seeded.expect("a peer with a non-exportable best route");
    // Deliver the forbidden advertisement over the session.
    let attrs = wire_attrs(vec![x_asn, Asn(64_999)], vec![]);
    internet
        .net
        .speaker_mut(border)
        .expect("border registered")
        .receive(x, Message::Update { prefix, attrs });
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::ValleyFree)
            .any(|v| v.severity == Severity::Error
                && v.speaker == Some(border)
                && v.prefix == Some(prefix)),
        "{}",
        report.render()
    );
}

#[test]
fn unresolvable_next_hop_flagged() {
    let (mut internet, vns) = world(48);
    // An iBGP update naming a next hop outside the VNS IGP: wins on
    // LOCAL_PREF, blackholes on forwarding.
    let border = vns.pops()[0].borders[0];
    let rr = vns.reflectors()[0];
    let bogus: Prefix = "99.99.0.0/16".parse().expect("prefix");
    let mut attrs = wire_attrs(vec![Asn(65_000)], vec![]);
    attrs.local_pref = 1_000_000;
    attrs.next_hop = SpeakerId(9_999);
    internet
        .net
        .speaker_mut(border)
        .expect("border registered")
        .receive(
            rr,
            Message::Update {
                prefix: bogus,
                attrs,
            },
        );
    let report = verify(&internet, &vns);
    assert!(
        report
            .of(Invariant::NextHopResolution)
            .any(|v| v.severity == Severity::Error
                && v.speaker == Some(border)
                && v.prefix == Some(bogus)),
        "{}",
        report.render()
    );
}

/// A last-mile prefix plus two PoPs that can both reach it externally:
/// the geo egress and a different PoP to force it to.
fn steerable_prefix(internet: &Internet, vns: &Vns) -> (Prefix, u32, PopId, PopId) {
    for info in internet.prefixes().filter(|p| p.last_mile) {
        let ip = info.prefix.first_host();
        let Some(geo) = vns.egress_pop(internet, vns.pops()[0].id(), ip) else {
            continue;
        };
        let other = vns.pops().iter().find(|p| {
            p.id() != geo
                && internet
                    .net
                    .speaker(p.borders[0])
                    .is_some_and(|sp| sp.best_external_route(&info.prefix).is_some())
        });
        if let Some(other) = other {
            return (info.prefix, ip, geo, other.id());
        }
    }
    panic!("no steerable prefix in tiny world");
}

#[test]
fn override_precedence_end_to_end() {
    let (mut internet, vns) = world(49);
    let vantage = vns.pops()[0].id();
    let (prefix, ip, geo_egress, forced) = steerable_prefix(&internet, &vns);

    // Force wins over geography, and the refreshed RIBs agree with the
    // table (verifier clean).
    vns.mgmt_force_exit(&mut internet, prefix, forced)
        .expect("reconvergence");
    assert_eq!(vns.egress_pop(&internet, vantage, ip), Some(forced));
    let report = verify(&internet, &vns);
    assert!(report.passes(), "{}", report.render());

    // Exempt replaces force (this order)…
    vns.mgmt_exempt(&mut internet, prefix)
        .expect("reconvergence");
    {
        let ov = vns.overrides().read().unwrap();
        assert!(ov.is_exempt(&prefix));
        assert_eq!(ov.forced_exit(&prefix), None);
    }
    assert!(verify(&internet, &vns).passes());

    // …and force replaces exempt (the other order).
    vns.mgmt_force_exit(&mut internet, prefix, forced)
        .expect("reconvergence");
    {
        let ov = vns.overrides().read().unwrap();
        assert!(!ov.is_exempt(&prefix));
        assert_eq!(ov.forced_exit(&prefix), Some(forced));
    }
    assert_eq!(vns.egress_pop(&internet, vantage, ip), Some(forced));

    // Clear restores pure geo-routing.
    vns.mgmt_clear(&mut internet, prefix)
        .expect("reconvergence");
    assert!(vns.overrides().read().unwrap().is_empty());
    assert_eq!(vns.egress_pop(&internet, vantage, ip), Some(geo_egress));
    let report = verify(&internet, &vns);
    assert!(report.is_clean(), "{}", report.render());
}
