//! Planted-defect corpus for the data-plane model checker.
//!
//! A checker that has never caught anything proves nothing. This module
//! seeds twelve classes of silent forwarding-plane damage into an
//! otherwise converged world — forced next-hop cycles, dropped RIB
//! entries, poisoned landings, wrong-relay path tables — by corrupting
//! *selected* state only (Loc-RIB entries, cached service tables) so the
//! control plane still looks healthy to every stage-1 check. The
//! catch-rate harness (`crates/bench/tests/dataplane.rs`) then asserts
//! the checker reports each defect with the right check name at the
//! planted location, and that clean worlds stay at zero findings.
//!
//! Every selection below iterates deterministic orders (registration
//! order for prefixes, id order for speakers and PoPs), so a defect
//! plants identically for a given world.

use vns_bgp::{Prefix, RouteSource, SpeakerId};
use vns_core::{Pop, Vns};
use vns_service::{EndpointTable, PathTable};
use vns_topo::Internet;

use crate::Invariant;

/// The corpus, in planting order. Defect semantics:
///
/// | name | corruption | expected check |
/// |------|------------|----------------|
/// | `ibgp-border-cycle` | two PoP borders point an external prefix at each other | LOOP-FREE |
/// | `ebgp-echo-cycle` | an external AS forwards a prefix back to the AS it heard it from | LOOP-FREE |
/// | `self-next-hop` | a border's selected next hop is itself | LOOP-FREE |
/// | `dropped-transit-rib` | a transit hop silently loses its only covering route | NO-BLACKHOLE |
/// | `dropped-anycast-rib` | same, for the anycast service prefix | NO-BLACKHOLE |
/// | `igp-unreachable-next-hop` | a border's next hop leaves the VNS IGP | NO-BLACKHOLE |
/// | `phantom-next-hop` | a border's next hop is no known speaker | NO-BLACKHOLE |
/// | `anycast-far-landing` | every border re-points the anycast route at the PoP farthest from the client population | ANYCAST-NEAREST |
/// | `poisoned-landing-table` | a cached caller landing re-homed to the wrong PoP | WAYPOINT |
/// | `swapped-tails` | two PoPs' cached tail rows exchanged | WAYPOINT |
/// | `echo-detour` | a border reaches a nearby echo prefix via the farthest border | STRETCH-BOUND |
/// | `echo-detour-return` | the same detour planted from the opposite end of the backbone | STRETCH-BOUND |
pub const DEFECT_NAMES: [&str; 12] = [
    "ibgp-border-cycle",
    "ebgp-echo-cycle",
    "self-next-hop",
    "dropped-transit-rib",
    "dropped-anycast-rib",
    "igp-unreachable-next-hop",
    "phantom-next-hop",
    "anycast-far-landing",
    "poisoned-landing-table",
    "swapped-tails",
    "echo-detour",
    "echo-detour-return",
];

/// What was planted and what the checker must report for it.
#[derive(Debug, Clone)]
pub struct PlantedDefect {
    /// Corpus name (one of [`DEFECT_NAMES`]).
    pub name: &'static str,
    /// The check that must fire.
    pub expect: Invariant,
    /// When set, a violation of `expect` must be located at this speaker.
    pub speaker: Option<SpeakerId>,
    /// When set, a violation of `expect` must name this prefix.
    pub prefix: Option<Prefix>,
}

/// Plants one named defect into a converged world. `service` supplies the
/// cached service-plane tables for the table-corruption defects
/// (`poisoned-landing-table`, `swapped-tails`); the rest ignore it.
///
/// Returns `None` when the world offers no site for the defect (the
/// harness treats that as a failure — every corpus entry must plant on
/// every campaign world).
pub fn plant_defect(
    name: &str,
    internet: &mut Internet,
    vns: &Vns,
    service: Option<(&EndpointTable, &mut PathTable)>,
) -> Option<PlantedDefect> {
    match name {
        "ibgp-border-cycle" => ibgp_border_cycle(internet, vns),
        "ebgp-echo-cycle" => ebgp_echo_cycle(internet, vns),
        "self-next-hop" => self_next_hop(internet, vns),
        "dropped-transit-rib" => dropped_rib(internet, vns, false),
        "dropped-anycast-rib" => dropped_rib(internet, vns, true),
        "igp-unreachable-next-hop" => bad_next_hop(internet, vns, false),
        "phantom-next-hop" => bad_next_hop(internet, vns, true),
        "anycast-far-landing" => anycast_far_landing(internet, vns),
        "poisoned-landing-table" => {
            service.and_then(|(e, p)| poisoned_landing(internet, vns, e, p))
        }
        "swapped-tails" => service.and_then(|(_, p)| swapped_tails(vns, p)),
        "echo-detour" => echo_detour(internet, vns, false),
        "echo-detour-return" => echo_detour(internet, vns, true),
        _ => None,
    }
}

/// External (non-VNS) last-mile prefixes in registration order.
fn external_lastmile(internet: &Internet, vns: &Vns) -> Vec<Prefix> {
    internet
        .prefixes()
        .filter(|p| p.last_mile && p.origin != vns.as_id())
        .map(|p| p.prefix)
        .collect()
}

/// Two PoP borders re-point an external prefix at each other: the
/// textbook iBGP forwarding cycle.
fn ibgp_border_cycle(internet: &mut Internet, vns: &Vns) -> Option<PlantedDefect> {
    let pops = vns.pops();
    let (a, b) = (pops.first()?.borders[0], pops.get(1)?.borders[0]);
    let prefix = external_lastmile(internet, vns).into_iter().find(|p| {
        internet.net.speaker(a).is_some_and(|s| s.best(p).is_some())
            && internet.net.speaker(b).is_some_and(|s| s.best(p).is_some())
    })?;
    internet
        .net
        .speaker_mut(a)?
        .corrupt_redirect_ibgp(&prefix, b);
    internet
        .net
        .speaker_mut(b)?
        .corrupt_redirect_ibgp(&prefix, a);
    Some(PlantedDefect {
        name: "ibgp-border-cycle",
        expect: Invariant::LoopFree,
        speaker: Some(a.min(b)),
        prefix: Some(prefix),
    })
}

/// An external AS forwards a prefix straight back to the neighbour it
/// heard it from: an AS-level forwarding echo.
fn ebgp_echo_cycle(internet: &mut Internet, vns: &Vns) -> Option<PlantedDefect> {
    let vns_as = vns.as_id();
    let speakers: Vec<SpeakerId> = internet.net.speaker_ids().collect();
    for prefix in external_lastmile(internet, vns) {
        for &s in &speakers {
            if internet.as_of_speaker(s) == Some(vns_as) {
                continue;
            }
            let Some(RouteSource::Ebgp { peer: t, .. }) = internet
                .net
                .speaker(s)
                .and_then(|sp| sp.best(&prefix))
                .map(|c| c.source)
            else {
                continue;
            };
            if t == s || internet.as_of_speaker(t) == Some(vns_as) {
                continue;
            }
            // T must currently forward elsewhere over eBGP, so the
            // corruption genuinely reverses an edge.
            let Some(RouteSource::Ebgp { peer: u, .. }) = internet
                .net
                .speaker(t)
                .and_then(|sp| sp.best(&prefix))
                .map(|c| c.source)
            else {
                continue;
            };
            if u == s {
                continue;
            }
            internet
                .net
                .speaker_mut(t)?
                .corrupt_forward_peer(&prefix, s);
            return Some(PlantedDefect {
                name: "ebgp-echo-cycle",
                expect: Invariant::LoopFree,
                speaker: Some(s.min(t)),
                prefix: Some(prefix),
            });
        }
    }
    None
}

/// A border whose selected next hop is itself: the degenerate 1-cycle.
fn self_next_hop(internet: &mut Internet, vns: &Vns) -> Option<PlantedDefect> {
    let a = vns.pops().first()?.borders[0];
    let prefix = external_lastmile(internet, vns)
        .into_iter()
        .find(|p| internet.net.speaker(a).is_some_and(|s| s.best(p).is_some()))?;
    internet
        .net
        .speaker_mut(a)?
        .corrupt_redirect_ibgp(&prefix, a);
    Some(PlantedDefect {
        name: "self-next-hop",
        expect: Invariant::LoopFree,
        speaker: Some(a),
        prefix: Some(prefix),
    })
}

/// A transit hop silently drops its only covering route while upstream
/// neighbours keep forwarding through it.
fn dropped_rib(internet: &mut Internet, vns: &Vns, anycast: bool) -> Option<PlantedDefect> {
    let vns_as = vns.as_id();
    let prefixes = if anycast {
        vec![vns.anycast_prefix()]
    } else {
        external_lastmile(internet, vns)
    };
    let speakers: Vec<SpeakerId> = internet.net.speaker_ids().collect();
    for prefix in prefixes {
        let ip = prefix.first_host();
        for &s in &speakers {
            if internet.as_of_speaker(s) == Some(vns_as) {
                continue;
            }
            let Some(RouteSource::Ebgp { peer: t, .. }) = internet
                .net
                .speaker(s)
                .and_then(|sp| sp.best(&prefix))
                .map(|c| c.source)
            else {
                continue;
            };
            if t == s || internet.as_of_speaker(t) == Some(vns_as) {
                continue;
            }
            // After the drop T must hold *no* other covering route, so the
            // defect is a clean blackhole rather than a re-route.
            let only_cover = internet
                .net
                .speaker(t)
                .map(|sp| sp.loc_rib_prefixes().filter(|p| p.contains(ip)).count())
                == Some(1);
            if !only_cover {
                continue;
            }
            internet.net.speaker_mut(t)?.corrupt_drop_route(&prefix);
            return Some(PlantedDefect {
                name: if anycast {
                    "dropped-anycast-rib"
                } else {
                    "dropped-transit-rib"
                },
                expect: Invariant::NoBlackhole,
                speaker: Some(t),
                prefix: Some(prefix),
            });
        }
    }
    None
}

/// A border's selected next hop stops resolving: re-pointed outside the
/// VNS IGP (`phantom: false`) or at a speaker id that does not exist at
/// all (`phantom: true`).
fn bad_next_hop(internet: &mut Internet, vns: &Vns, phantom: bool) -> Option<PlantedDefect> {
    let vns_as = vns.as_id();
    let a = vns.pops().first()?.borders[0];
    let prefix = external_lastmile(internet, vns).into_iter().find(|p| {
        internet
            .net
            .speaker(a)
            .is_some_and(|s| s.best(p).is_some_and(|c| c.source.is_ibgp()))
    })?;
    let target = if phantom {
        SpeakerId(u32::MAX)
    } else {
        internet
            .net
            .speaker_ids()
            .find(|&s| internet.as_of_speaker(s) != Some(vns_as))?
    };
    internet
        .net
        .speaker_mut(a)?
        .corrupt_redirect_ibgp(&prefix, target);
    Some(PlantedDefect {
        name: if phantom {
            "phantom-next-hop"
        } else {
            "igp-unreachable-next-hop"
        },
        expect: Invariant::NoBlackhole,
        speaker: Some(a),
        prefix: Some(prefix),
    })
}

/// Every border's anycast route re-pointed at one far border — the
/// landing collapse a poisoned fleet-wide anycast push produces. BGP
/// still spreads clients across ingress borders, but each border now
/// tunnels the traffic to the PoP farthest from the client population,
/// so the landing-distance tail swallows most of the deployment.
fn anycast_far_landing(internet: &mut Internet, vns: &Vns) -> Option<PlantedDefect> {
    let anycast = vns.anycast_prefix();
    // Client prefix locations: the population ANYCAST-NEAREST scores.
    let clients: Vec<vns_geo::GeoPoint> = internet
        .prefixes()
        .filter(|p| p.last_mile)
        .map(|p| p.location)
        .collect();
    // The PoP farthest from the client population in aggregate — the
    // worst possible single landing.
    let far_pop = vns.pops().iter().max_by(|a, b| {
        let da: f64 = clients.iter().map(|c| c.distance_km(&a.location())).sum();
        let db: f64 = clients.iter().map(|c| c.distance_km(&b.location())).sum();
        da.total_cmp(&db)
    })?;
    let far = far_pop.borders[0];
    let borders: Vec<SpeakerId> = vns
        .pops()
        .iter()
        .flat_map(|p| p.borders)
        .filter(|&b| b != far)
        .collect();
    let mut planted = false;
    for b in borders {
        if let Some(sp) = internet.net.speaker_mut(b) {
            planted |= sp.corrupt_redirect_ibgp(&anycast, far);
        }
    }
    planted.then_some(PlantedDefect {
        name: "anycast-far-landing",
        expect: Invariant::AnycastNearest,
        speaker: Some(far),
        prefix: Some(anycast),
    })
}

/// A cached caller landing re-homed to a PoP the forwarding graph never
/// lands it on — the shape of a poisoned GeoIP-driven landing table.
fn poisoned_landing(
    internet: &Internet,
    vns: &Vns,
    endpoints: &EndpointTable,
    paths: &mut PathTable,
) -> Option<PlantedDefect> {
    let caller = (0..endpoints.len()).find(|&i| paths.landing_pop(i).is_some())?;
    let actual = paths.landing_pop(caller)?;
    let wrong: &Pop = vns.pops().iter().find(|p| p.id() != actual)?;
    if !paths.corrupt_landing(caller, wrong.id()) {
        return None;
    }
    let prefix = internet
        .lookup_prefix(endpoints.endpoint(caller).ip)
        .map(|p| p.prefix);
    Some(PlantedDefect {
        name: "poisoned-landing-table",
        expect: Invariant::Waypoint,
        speaker: Some(wrong.borders[0]),
        prefix,
    })
}

/// Two PoPs' cached tail rows exchanged — a wrong-relay path table.
fn swapped_tails(vns: &Vns, paths: &mut PathTable) -> Option<PlantedDefect> {
    let pops = vns.pops();
    let (a, b) = (pops.first()?, pops.get(1)?);
    if !paths.corrupt_swap_tails(a.id(), b.id()) {
        return None;
    }
    Some(PlantedDefect {
        name: "swapped-tails",
        expect: Invariant::Waypoint,
        speaker: Some(a.borders[0]),
        prefix: None,
    })
}

/// A border reaches a *nearby* echo prefix via a distant PoP's border:
/// the path still delivers (the far border holds a clean iBGP route to
/// the true origin), but the ride is a continent-scale detour.
///
/// Site selection maximises the violation margin — the detour's
/// great-circle lower bound minus the default STRETCH-BOUND allowance —
/// so the planted path exceeds the bound by construction, not by luck.
/// `from_tail` picks the best site whose source PoP differs from the
/// primary one, giving the corpus two independent instances.
fn echo_detour(internet: &mut Internet, vns: &Vns, from_tail: bool) -> Option<PlantedDefect> {
    let pops = vns.pops();
    let cfg = crate::DataplaneConfig::default();
    let mut sites: Vec<(f64, &Pop, &Pop, &Pop)> = Vec::new();
    for q in pops {
        for near in pops {
            if near.id() == q.id() || !vns.echo_servers().iter().any(|e| e.pop == near.id()) {
                continue;
            }
            for far in pops {
                if far.id() == q.id() || far.id() == near.id() {
                    continue;
                }
                let detour = q.location().distance_km(&far.location())
                    + far.location().distance_km(&near.location());
                let allowed = cfg.stretch_bound * q.location().distance_km(&near.location())
                    + cfg.stretch_slack_km;
                sites.push((detour - allowed, q, near, far));
            }
        }
    }
    sites.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id().cmp(&b.1.id())));
    // The great-circle margin ranks candidate sites, but whether a detour
    // actually *resolves* (instead of folding into an IGP revisit that
    // `resolve_path` reports as a loop) depends on the backbone geometry.
    // Validate each site by applying the corruption and replaying the
    // exact path the STRETCH-BOUND check will measure; restore and move
    // on when the site does not produce a clean, bound-breaking ride.
    let mut primary_q = None;
    for &(margin, q, near, far) in &sites {
        if margin <= 1_000.0 {
            // Remaining sites cannot clear the bound comfortably: refuse
            // to plant a defect the checker is not guaranteed to catch.
            return None;
        }
        let echo = vns
            .echo_servers()
            .iter()
            .find(|e| e.pop == near.id())?
            .prefix;
        let start = q.borders[0];
        // The far border must hold its own (clean) route whose next hop is
        // not the router we corrupt, or the detour trivially cycles.
        let Some(far_border) = far.borders.into_iter().find(|&b| {
            internet.net.speaker(b).is_some_and(|s| {
                s.best(&echo)
                    .is_some_and(|c| c.attrs.next_hop != start && c.source.peer() != Some(start))
            })
        }) else {
            continue;
        };
        let Some(original) = internet
            .net
            .speaker(start)
            .and_then(|s| s.best(&echo))
            .cloned()
        else {
            continue;
        };
        internet
            .net
            .speaker_mut(start)?
            .corrupt_redirect_ibgp(&echo, far_border);
        let gc = q.location().distance_km(
            &internet
                .prefixes()
                .find(|p| p.prefix == echo)
                .map_or_else(|| near.location(), |p| p.location),
        );
        let rides = vns
            .path_via_vns(internet, q.id(), echo.first_host())
            .is_ok_and(|path| path.total_km() > cfg.stretch_bound * gc + cfg.stretch_slack_km);
        let site_ok = rides
            && match (from_tail, primary_q) {
                // The primary defect takes the best workable site; the
                // return variant skips that site's source PoP so the two
                // corpus entries are independent.
                (false, _) => true,
                (true, None) => {
                    primary_q = Some(q.id());
                    false
                }
                (true, Some(pq)) => q.id() != pq,
            };
        if site_ok {
            return Some(PlantedDefect {
                name: if from_tail {
                    "echo-detour-return"
                } else {
                    "echo-detour"
                },
                expect: Invariant::StretchBound,
                speaker: Some(start),
                prefix: Some(echo),
            });
        }
        internet
            .net
            .speaker_mut(start)?
            .corrupt_replace_route(echo, original);
    }
    None
}
