//! Stage 2: the data-plane model checker.
//!
//! Five whole-network properties proved statically over the derived
//! forwarding graph ([`crate::forwarding_graph`]), in the style CDN
//! overlay systems use to validate path selection before deployment:
//!
//! 1. **LOOP-FREE** — no forwarding cycles anywhere, for any destination.
//! 2. **NO-BLACKHOLE** — every reachable source resolves to an origin (or
//!    an explicit dead-router sink under a fault [`VerifyScope`]).
//! 3. **ANYCAST-NEAREST** — the *fraction* of client prefixes whose
//!    anycast landing falls beyond a stretch tolerance of their
//!    geo-nearest *live* PoP stays under a deployment-level threshold.
//!    BGP decides landings, so a per-client tail exists even in healthy
//!    deployments (the paper's Fig. 3 distribution); what the checker
//!    rules out is the landing *collapse* a poisoned anycast
//!    announcement produces, where most clients ride to one far PoP.
//! 4. **WAYPOINT** — the service plane's pre-resolved
//!    [`vns_service::PathTable`] agrees with the forwarding graph:
//!    landings match, tails start at the admitted PoP's border, and
//!    admitted calls' media paths traverse their assigned relay PoP.
//! 5. **STRETCH-BOUND** — geodesic stretch of every PoP→destination
//!    egress path stays under the campaign bound (geo cold-potato mode
//!    only: hot-potato detours are the paper's disease, not a checker
//!    defect).
//!
//! Each run carries a per-check wall-clock ledger so campaigns can prove
//! the pre-flight stays cheap. Timings are **never** part of campaign
//! artifacts — only violation counts are — so byte-identity across
//! thread counts is preserved.

use std::collections::BTreeMap;
use std::time::Instant;

use vns_bgp::SpeakerId;
use vns_core::{RoutingMode, Vns};
use vns_geo::GeoPoint;
use vns_service::{EndpointTable, PathTable};
use vns_topo::{Internet, PrefixInfo};

use crate::forwarding_graph::{self, ForwardingAnalysis, Terminal};
use crate::{Invariant, Report, Reporter, VerifyScope, Violation};

/// Tolerances for the geometric properties.
///
/// The defaults are calibrated against every clean seed-sweep×mode world
/// (zero false positives) while still catching planted geo defects by an
/// order of magnitude — see `crates/bench/tests/dataplane.rs`.
#[derive(Debug, Clone, Copy)]
pub struct DataplaneConfig {
    /// ANYCAST-NEAREST: allowed ratio of landing distance to the
    /// geo-nearest live PoP distance.
    pub anycast_stretch: f64,
    /// ANYCAST-NEAREST: additive slack in km (keeps the ratio meaningful
    /// for clients sitting practically on top of a PoP).
    pub anycast_slack_km: f64,
    /// ANYCAST-NEAREST: maximum tolerated fraction of clients landing
    /// beyond the stretch tolerance. Clean seed-sweep worlds sit at
    /// 0.06–0.16 (the Fig. 3 BGP tail); a poisoned announcement that
    /// drags landings to one far PoP pushes this near 1.0.
    pub anycast_tail_frac: f64,
    /// STRETCH-BOUND: allowed ratio of egress path length to the
    /// great-circle distance.
    pub stretch_bound: f64,
    /// STRETCH-BOUND: additive slack in km (short geodesics cross IXPs
    /// and last-mile segments whose length is independent of distance).
    pub stretch_slack_km: f64,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        Self {
            anycast_stretch: 2.0,
            anycast_slack_km: 2_500.0,
            anycast_tail_frac: 0.35,
            stretch_bound: 4.0,
            stretch_slack_km: 4_000.0,
        }
    }
}

/// One entry in the per-check timing ledger.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Check (or derivation stage) name.
    pub stage: &'static str,
    /// Wall-clock seconds spent.
    pub seconds: f64,
}

/// The outcome of a data-plane verification pass: violations plus the
/// timing ledger proving the pass is cheap enough for pre-flight use.
#[derive(Debug)]
pub struct DataplaneReport {
    /// The violations, via the shared report machinery.
    pub report: Report,
    /// Per-stage wall-clock ledger. Excluded from campaign artifacts.
    pub timings: Vec<StageTiming>,
    /// Destination prefixes analysed.
    pub destinations: usize,
    /// (source, destination) pairs resolved.
    pub pairs: usize,
}

impl DataplaneReport {
    /// True when no error-severity violations were found.
    pub fn passes(&self) -> bool {
        self.report.passes()
    }

    /// Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.report.error_count()
    }

    /// Warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.report.warning_count()
    }

    /// Total wall-clock seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.timings.iter().map(|t| t.seconds).sum()
    }

    /// Renders the violations plus the timing ledger (CLI output; never
    /// written into campaign artifacts).
    pub fn render(&self) -> String {
        let mut out = if self.report.is_clean() {
            format!(
                "vns-verify dataplane: clean ({} destinations, {} source-destination pairs)\n",
                self.destinations, self.pairs
            )
        } else {
            self.report.render()
        };
        let stages: Vec<String> = self
            .timings
            .iter()
            .map(|t| format!("{} {:.3}s", t.stage, t.seconds))
            .collect();
        out.push_str(&format!(
            "  timing: {} | total {:.3}s\n",
            stages.join(", "),
            self.total_seconds()
        ));
        out
    }
}

/// Runs the data-plane checks on a healthy converged deployment with
/// default tolerances (no service-plane tables: WAYPOINT is skipped).
pub fn verify_dataplane(internet: &Internet, vns: &Vns) -> DataplaneReport {
    verify_dataplane_scoped(
        internet,
        vns,
        &VerifyScope::default(),
        &DataplaneConfig::default(),
    )
}

/// Runs the graph-level data-plane checks (LOOP-FREE, NO-BLACKHOLE,
/// ANYCAST-NEAREST, STRETCH-BOUND) under a fault scope. WAYPOINT needs
/// the service plane's tables — see [`verify_dataplane_with_service`].
pub fn verify_dataplane_scoped(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    cfg: &DataplaneConfig,
) -> DataplaneReport {
    run(internet, vns, scope, cfg, None)
}

/// Runs all five data-plane checks, cross-checking the service plane's
/// pre-resolved [`PathTable`] (WAYPOINT) against the forwarding graph.
pub fn verify_dataplane_with_service(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    cfg: &DataplaneConfig,
    endpoints: &EndpointTable,
    paths: &PathTable,
) -> DataplaneReport {
    run(internet, vns, scope, cfg, Some((endpoints, paths)))
}

fn run(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    cfg: &DataplaneConfig,
    service: Option<(&EndpointTable, &PathTable)>,
) -> DataplaneReport {
    let mut rep = Reporter::default();
    let mut timings = Vec::new();

    let t0 = Instant::now();
    let analysis = forwarding_graph::analyze(internet, scope);
    timings.push(StageTiming {
        stage: "graph",
        seconds: t0.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    check_loop_free(&analysis, &mut rep);
    timings.push(StageTiming {
        stage: "loop-free",
        seconds: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    check_no_blackhole(&analysis, &mut rep);
    timings.push(StageTiming {
        stage: "no-blackhole",
        seconds: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    check_anycast_nearest(internet, vns, scope, cfg, &analysis, &mut rep);
    timings.push(StageTiming {
        stage: "anycast-nearest",
        seconds: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    if let Some((endpoints, paths)) = service {
        check_waypoint(internet, vns, &analysis, endpoints, paths, &mut rep);
    }
    timings.push(StageTiming {
        stage: "waypoint",
        seconds: t.elapsed().as_secs_f64(),
    });

    let t = Instant::now();
    check_stretch_bound(internet, vns, scope, cfg, &mut rep);
    timings.push(StageTiming {
        stage: "stretch-bound",
        seconds: t.elapsed().as_secs_f64(),
    });

    DataplaneReport {
        report: rep.finish(),
        timings,
        destinations: analysis.destinations.len(),
        pairs: analysis.pairs(),
    }
}

/// LOOP-FREE: no destination's forwarding graph contains a cycle.
fn check_loop_free(analysis: &ForwardingAnalysis, rep: &mut Reporter) {
    for dest in &analysis.destinations {
        for (idx, members) in dest.cycles.iter().enumerate() {
            let feeders = dest
                .outcomes
                .values()
                .filter(|t| matches!(t, Terminal::Cycle { idx: i } if *i == idx))
                .count();
            let ring: Vec<String> = members.iter().map(|s| s.to_string()).collect();
            let lead = members.first().copied().unwrap_or(SpeakerId(0));
            rep.push(
                Violation::error(
                    Invariant::LoopFree,
                    format!(
                        "forwarding cycle {} -> {} ({feeders} sources feed it)",
                        ring.join(" -> "),
                        ring.first().map_or("?", String::as_str)
                    ),
                )
                .at(lead)
                .on(dest.prefix),
            );
        }
    }
}

/// NO-BLACKHOLE: every reachable source's traffic is delivered (or sinks
/// at a router the scope declares dead — an accounted-for fault, not a
/// silent failure).
fn check_no_blackhole(analysis: &ForwardingAnalysis, rep: &mut Reporter) {
    for dest in &analysis.destinations {
        let mut seen: Vec<Terminal> = Vec::new();
        for t in dest.outcomes.values() {
            let Terminal::Blackhole { at, cause } = *t else {
                continue;
            };
            if seen.contains(t) {
                continue;
            }
            seen.push(*t);
            let affected = dest.sources_with(*t);
            rep.push(
                Violation::error(
                    Invariant::NoBlackhole,
                    format!("traffic dies at {at}: {cause} ({affected} sources affected)"),
                )
                .at(at)
                .on(dest.prefix),
            );
        }
    }
}

/// PoPs that still have at least one live border under the scope.
fn live_pops(vns: &Vns, scope: &VerifyScope) -> Vec<(vns_core::PopId, GeoPoint)> {
    vns.pops()
        .iter()
        .filter(|p| p.borders.iter().any(|&b| !scope.is_dead(b)))
        .map(|p| (p.id(), p.location()))
        .collect()
}

/// ANYCAST-NEAREST: the fraction of client prefixes whose anycast
/// landing falls beyond the stretch tolerance of their geo-nearest live
/// PoP stays under `anycast_tail_frac`. Geo cold-potato deployments
/// only — under hot-potato announcements, far landings are the paper's
/// Fig. 3 baseline pathology, not a deployment defect.
fn check_anycast_nearest(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    cfg: &DataplaneConfig,
    analysis: &ForwardingAnalysis,
    rep: &mut Reporter,
) {
    if vns.mode() != RoutingMode::GeoColdPotato {
        return;
    }
    let anycast = vns.anycast_prefix();
    let Some(dest) = analysis.destination(&anycast) else {
        rep.push(Violation::error(
            Invariant::AnycastNearest,
            "anycast prefix missing from the forwarding analysis",
        ));
        return;
    };
    let live = live_pops(vns, scope);
    let mut clients = 0usize;
    // Tail landings, counted per delivering router so the dominant far
    // landing can be named in the finding.
    let mut tail: BTreeMap<SpeakerId, usize> = BTreeMap::new();
    for pi in internet.prefixes().filter(|p| p.last_mile) {
        let Some(client) = internet.router_of(pi.origin, pi.city) else {
            continue;
        };
        match dest.outcomes.get(&client) {
            // No route to the anycast address (possible under faults; the
            // service plane records these callers as unreachable) — and
            // blackholes/cycles are LOOP-FREE / NO-BLACKHOLE findings, not
            // landing-quality ones.
            None
            | Some(Terminal::Blackhole { .. })
            | Some(Terminal::Cycle { .. })
            | Some(Terminal::DeadSink { .. }) => {}
            Some(Terminal::Origin { at }) => {
                rep.push(
                    Violation::error(
                        Invariant::AnycastNearest,
                        format!("anycast traffic terminates as unicast at {at}"),
                    )
                    .at(*at)
                    .on(pi.prefix),
                );
            }
            Some(Terminal::Anycast { at }) => {
                clients += 1;
                let Some(pop) = vns.pop_of_router(*at) else {
                    rep.push(
                        Violation::error(
                            Invariant::AnycastNearest,
                            format!("anycast delivery at {at}, which is not a PoP border"),
                        )
                        .at(*at)
                        .on(pi.prefix),
                    );
                    continue;
                };
                let landing_km = pi.location.distance_km(&vns.pop(pop).location());
                let nearest_km = live
                    .iter()
                    .map(|(_, loc)| pi.location.distance_km(loc))
                    .min_by(f64::total_cmp)
                    .unwrap_or(0.0);
                if landing_km > cfg.anycast_stretch * nearest_km + cfg.anycast_slack_km {
                    *tail.entry(*at).or_insert(0) += 1;
                }
            }
        }
    }
    let far = tail.values().sum::<usize>();
    if clients > 0 && (far as f64) > cfg.anycast_tail_frac * (clients as f64) {
        // Name the dominant far landing (ties break to the smallest id —
        // BTreeMap iteration order makes this deterministic).
        let (&dominant, &count) = tail
            .iter()
            .max_by_key(|&(&id, &n)| (n, std::cmp::Reverse(id)))
            .unwrap_or((&SpeakerId(0), &0));
        let pop = vns
            .pop_of_router(dominant)
            .map_or_else(|| "?".into(), |p| vns.pop(p).code().to_string());
        rep.push(
            Violation::error(
                Invariant::AnycastNearest,
                format!(
                    "{far} of {clients} clients land beyond {}x nearest + {:.0} km \
                     (tolerated fraction {:.2}); dominant far landing {dominant} ({pop}, \
                     {count} clients)",
                    cfg.anycast_stretch, cfg.anycast_slack_km, cfg.anycast_tail_frac
                ),
            )
            .at(dominant)
            .on(anycast),
        );
    }
}

/// WAYPOINT: the service plane's pre-resolved paths agree with the
/// forwarding graph and traverse the admitted relay PoP.
fn check_waypoint(
    internet: &Internet,
    vns: &Vns,
    analysis: &ForwardingAnalysis,
    endpoints: &EndpointTable,
    paths: &PathTable,
    rep: &mut Reporter,
) {
    let anycast = vns.anycast_prefix();
    let graph_landing = |ip: u32| -> Option<vns_core::PopId> {
        let pi = internet.lookup_prefix(ip)?;
        let client = internet.router_of(pi.origin, pi.city)?;
        match analysis.destination(&anycast)?.outcomes.get(&client) {
            Some(Terminal::Anycast { at }) => vns.pop_of_router(*at),
            _ => None,
        }
    };

    // Landings: table vs graph, per endpoint.
    for i in 0..endpoints.len() {
        let ip = endpoints.endpoint(i).ip;
        let table = paths.landing_pop(i);
        let graph = graph_landing(ip);
        if table == graph {
            continue;
        }
        let pfx = internet.lookup_prefix(ip).map(|p| p.prefix);
        let name = |p: Option<vns_core::PopId>| match p {
            Some(id) => vns.pop(id).code().to_string(),
            None => "none".to_string(),
        };
        let mut v = Violation::error(
            Invariant::Waypoint,
            format!(
                "PathTable lands endpoint {i} on {} but the forwarding graph says {}",
                name(table),
                name(graph)
            ),
        );
        if let Some(p) = pfx {
            v = v.on(p);
        }
        if let Some(pop) = table {
            v = v.at(vns.pop(pop).borders[0]);
        }
        rep.push(v);
    }

    // Tails: each cached PoP→callee path must start at that PoP's border
    // and never revisit a router.
    for pop in vns.pops() {
        for i in 0..endpoints.len() {
            let Some(tail) = paths.tail(pop.id(), i) else {
                continue;
            };
            let start = tail.routers.first().copied();
            if start != Some(pop.borders[0]) {
                rep.push(
                    Violation::error(
                        Invariant::Waypoint,
                        format!(
                            "tail for callee {i} from {} starts at {:?}, not its border {}",
                            pop.code(),
                            start,
                            pop.borders[0]
                        ),
                    )
                    .at(pop.borders[0]),
                );
                continue;
            }
            let mut seen = std::collections::BTreeSet::new();
            if !tail.routers.iter().all(|r| seen.insert(*r)) {
                rep.push(
                    Violation::error(
                        Invariant::Waypoint,
                        format!("tail for callee {i} from {} revisits a router", pop.code()),
                    )
                    .at(pop.borders[0]),
                );
            }
        }
    }

    // Relay traversal: an admitted call's media path must cross a router
    // of its admitted PoP. One routable caller/callee pair suffices per
    // PoP — the tail and splice parts are shared across calls.
    let caller = (0..endpoints.len()).find(|&i| paths.landing_pop(i).is_some());
    if let Some(caller) = caller {
        let callee = (caller + 1) % endpoints.len();
        for pop in vns.pops() {
            let Some(path) = paths.call_path(caller, callee, pop.id()) else {
                continue;
            };
            let hits_relay = path
                .routers
                .iter()
                .any(|&r| vns.pop_of_router(r) == Some(pop.id()));
            if !hits_relay {
                rep.push(
                    Violation::error(
                        Invariant::Waypoint,
                        format!(
                            "media path admitted at {} never traverses that PoP",
                            pop.code()
                        ),
                    )
                    .at(pop.borders[0]),
                );
            }
        }
    }
}

/// Destinations for STRETCH-BOUND: the VNS's own unicast infrastructure
/// prefixes (echo servers). Paths to *external* last-mile prefixes ride
/// the public Internet past the egress, where double-digit geodesic
/// stretch is the paper's measured baseline — only the managed backbone
/// promises tight paths, so only VNS-origin destinations are bounded.
fn stretch_destinations<'a>(
    internet: &'a Internet,
    vns: &Vns,
) -> impl Iterator<Item = &'a PrefixInfo> {
    let vns_as = vns.as_id();
    internet
        .prefixes()
        .filter(move |p| !p.anycast && p.origin == vns_as)
}

/// STRETCH-BOUND: geodesic stretch of every live-PoP→destination path
/// stays under the bound. Geo cold-potato deployments only — hot-potato
/// detours are the paper's measured pathology, not a checker defect.
fn check_stretch_bound(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    cfg: &DataplaneConfig,
    rep: &mut Reporter,
) {
    if vns.mode() != RoutingMode::GeoColdPotato {
        return;
    }
    for pop in vns.pops() {
        if scope.is_dead(pop.borders[0]) {
            continue;
        }
        let from = pop.location();
        for pi in stretch_destinations(internet, vns) {
            let Ok(path) = vns.path_via_vns(internet, pop.id(), pi.prefix.first_host()) else {
                // Unreachable destinations are NO-BLACKHOLE's domain.
                continue;
            };
            let km = path.total_km();
            let gc = from.distance_km(&pi.location);
            let bound = cfg.stretch_bound * gc + cfg.stretch_slack_km;
            if km > bound {
                rep.push(
                    Violation::error(
                        Invariant::StretchBound,
                        format!(
                            "egress path from {} rides {km:.0} km for a {gc:.0} km geodesic \
                             (bound {bound:.0} km)",
                            pop.code()
                        ),
                    )
                    .at(pop.borders[0])
                    .on(pi.prefix),
                );
            }
        }
    }
}
