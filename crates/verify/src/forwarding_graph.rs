//! Whole-network forwarding-graph extraction from converged RIBs.
//!
//! The control-plane checks audit routers one at a time; this module
//! derives what the *network* does: for every advertised destination it
//! computes each speaker's forwarding successor (mirroring
//! [`vns_topo::path::resolve_path`]'s decision exactly — longest match,
//! steering-more-specific fall-through, eBGP interconnect choice, iBGP
//! next-hop IGP resolution) and walks the resulting functional graph.
//! Because each speaker has at most one successor per destination, every
//! walk is a rho-shaped chain: terminal fates are memoised and propagated
//! backwards, so the whole pass is linear in `speakers × destinations`
//! successor evaluations.
//!
//! The output ([`ForwardingAnalysis`]) assigns every reachable source a
//! [`Terminal`]: delivery at the origin AS, delivery at an anycast
//! instance, an explicit dead-router sink (under a fault
//! [`VerifyScope`]), a blackhole with a cause, or membership in a
//! forwarding cycle. The data-plane properties in [`crate::dataplane`]
//! are all predicates over this structure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use vns_bgp::{Prefix, RouteSource, SpeakerId};
use vns_topo::Internet;

use crate::VerifyScope;

/// Why traffic dies at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlackholeCause {
    /// No covering Loc-RIB entry (the route a neighbour forwarded on no
    /// longer exists here).
    NoRoute,
    /// The selected route forwards to an eBGP peer with no interconnect
    /// link.
    NoInterconnect,
    /// The selected iBGP next hop does not resolve in the AS's IGP.
    IgpUnreachable,
    /// The next hop is not a known speaker at all.
    UnknownSpeaker,
}

impl fmt::Display for BlackholeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlackholeCause::NoRoute => f.write_str("no covering route"),
            BlackholeCause::NoInterconnect => f.write_str("no interconnect to forwarding peer"),
            BlackholeCause::IgpUnreachable => f.write_str("iBGP next hop IGP-unreachable"),
            BlackholeCause::UnknownSpeaker => f.write_str("next hop is not a known speaker"),
        }
    }
}

/// Where a speaker's traffic for one destination ultimately ends up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Delivered at `at`, a router of the destination's origin AS.
    Origin {
        /// The delivering router.
        at: SpeakerId,
    },
    /// Delivered at anycast instance `at` (whichever originating router
    /// the routes led to).
    Anycast {
        /// The instance reached.
        at: SpeakerId,
    },
    /// The walk entered a router declared dead by the [`VerifyScope`] —
    /// an explicit, accounted-for sink under an injected fault, never a
    /// silent failure.
    DeadSink {
        /// The dead router.
        at: SpeakerId,
    },
    /// Traffic dies at `at`.
    Blackhole {
        /// The router where it dies.
        at: SpeakerId,
        /// Why.
        cause: BlackholeCause,
    },
    /// Traffic feeds forwarding cycle `idx` in
    /// [`DestinationAnalysis::cycles`].
    Cycle {
        /// Index into the destination's cycle list.
        idx: usize,
    },
}

/// One forwarding decision: where a speaker sends traffic for a
/// destination, or why it cannot.
enum Step {
    /// Delivered here; `anycast` when the destination prefix is anycast.
    Deliver {
        /// Whether this is an anycast delivery.
        anycast: bool,
    },
    /// Forwarded to the next BGP-level router.
    Forward(SpeakerId),
    /// Dies here.
    Dead(BlackholeCause),
}

/// The per-destination slice of the forwarding graph: every speaker that
/// holds a covering route, with where its traffic ends.
#[derive(Debug)]
pub struct DestinationAnalysis {
    /// The destination prefix.
    pub prefix: Prefix,
    /// The representative host address the graph was derived for.
    pub ip: u32,
    /// Terminal fate per reachable source speaker.
    pub outcomes: BTreeMap<SpeakerId, Terminal>,
    /// Distinct forwarding cycles, each canonicalised to start at its
    /// smallest member.
    pub cycles: Vec<Vec<SpeakerId>>,
}

impl DestinationAnalysis {
    /// Sources whose terminal equals `t` (used for affected-source counts).
    pub fn sources_with(&self, t: Terminal) -> usize {
        self.outcomes.values().filter(|o| **o == t).count()
    }
}

/// The whole-network forwarding analysis: one
/// [`DestinationAnalysis`] per registered, unshadowed destination prefix.
#[derive(Debug)]
pub struct ForwardingAnalysis {
    /// Per-destination analyses in prefix registration order.
    pub destinations: Vec<DestinationAnalysis>,
}

impl ForwardingAnalysis {
    /// The analysis for a specific destination prefix.
    pub fn destination(&self, prefix: &Prefix) -> Option<&DestinationAnalysis> {
        self.destinations.iter().find(|d| d.prefix == *prefix)
    }

    /// Total (source, destination) pairs analysed.
    pub fn pairs(&self) -> usize {
        self.destinations.iter().map(|d| d.outcomes.len()).sum()
    }
}

/// Evaluates one speaker's forwarding decision for `dst_ip`, resolving
/// locally injected steering more-specifics through the same
/// longest-match-ceiling fall-through as `resolve_path`. Returns `None`
/// when the speaker holds no covering route at all.
fn successor(
    internet: &Internet,
    cur: SpeakerId,
    dst_ip: u32,
    covering: &[Prefix],
) -> Option<Step> {
    let speaker = internet.net.speaker(cur)?;
    // Longest-match ceiling, lowered when falling through an injected
    // steering more-specific onto its covering route. The ceiling only
    // ever decreases, so this loop terminates.
    let mut max_len: Option<u8> = None;
    loop {
        let found = covering.iter().find_map(|p| {
            if max_len.is_some_and(|m| p.len() >= m) {
                return None;
            }
            speaker.best(p).map(|c| (*p, c))
        });
        let Some((matched, cand)) = found else {
            // Nothing under the ceiling. At ceiling `None` the speaker is
            // simply not a source for this destination; below a lowered
            // ceiling the fall-through found no covering route, which
            // `resolve_path` reports as NoRoute — a blackhole.
            return if max_len.is_some() {
                Some(Step::Dead(BlackholeCause::NoRoute))
            } else {
                None
            };
        };
        let Some(cur_as) = internet.as_of_speaker(cur) else {
            return Some(Step::Dead(BlackholeCause::UnknownSpeaker));
        };
        match cand.source {
            RouteSource::Local => {
                let Some(pinfo) = internet.lookup_prefix(dst_ip) else {
                    // Locally originated but unregistered (pure
                    // control-plane prefixes): terminates here.
                    return Some(Step::Deliver { anycast: false });
                };
                if pinfo.origin != cur_as {
                    // A locally injected steering more-specific for someone
                    // else's prefix (Sec 3.2): resolve over this router's
                    // *own* external route to the covering prefix, else
                    // fall through the ceiling onto the covering route.
                    if matched.len() == 0 {
                        return Some(Step::Dead(BlackholeCause::NoRoute));
                    }
                    let cover = covering
                        .iter()
                        .find(|p| p.len() < matched.len() && speaker.best(p).is_some());
                    let Some(cover) = cover else {
                        return Some(Step::Dead(BlackholeCause::NoRoute));
                    };
                    if let Some(ext) = speaker.best_external_route(cover) {
                        if let RouteSource::Ebgp { peer, .. } = ext.source {
                            if internet.links_between(cur, peer).is_empty() {
                                return Some(Step::Dead(BlackholeCause::NoInterconnect));
                            }
                            return Some(Step::Forward(peer));
                        }
                    }
                    max_len = Some(matched.len());
                    continue;
                }
                return Some(Step::Deliver {
                    anycast: pinfo.anycast,
                });
            }
            RouteSource::Ebgp { peer, .. } => {
                if internet.net.speaker(peer).is_none() {
                    return Some(Step::Dead(BlackholeCause::UnknownSpeaker));
                }
                if internet.links_between(cur, peer).is_empty() {
                    return Some(Step::Dead(BlackholeCause::NoInterconnect));
                }
                return Some(Step::Forward(peer));
            }
            RouteSource::Ibgp { .. } => {
                let nh = cand.attrs.next_hop;
                if nh == cur {
                    // Degenerate self-next-hop: surfaces as a 1-cycle.
                    return Some(Step::Forward(cur));
                }
                if internet.net.speaker(nh).is_none() {
                    return Some(Step::Dead(BlackholeCause::UnknownSpeaker));
                }
                let resolvable = internet
                    .as_info(cur_as)
                    .igp
                    .as_ref()
                    .and_then(|g| g.shortest_path(cur, nh))
                    .is_some();
                if !resolvable {
                    return Some(Step::Dead(BlackholeCause::IgpUnreachable));
                }
                return Some(Step::Forward(nh));
            }
        }
    }
}

/// Derives the forwarding graph for one destination and walks every
/// source to its terminal.
pub fn analyze_destination(
    internet: &Internet,
    scope: &VerifyScope,
    prefix: Prefix,
    advertised: &BTreeSet<Prefix>,
) -> DestinationAnalysis {
    let ip = prefix.first_host();
    // Covering candidates, most specific first. Two distinct prefixes of
    // equal length cannot both contain `ip`, so length alone orders the
    // longest match.
    let mut covering: Vec<Prefix> = advertised
        .iter()
        .filter(|p| p.contains(ip))
        .copied()
        .collect();
    covering.sort_by_key(|p| std::cmp::Reverse(p.len()));

    let mut outcomes: BTreeMap<SpeakerId, Terminal> = BTreeMap::new();
    let mut cycles: Vec<Vec<SpeakerId>> = Vec::new();
    let mut cycle_index: BTreeMap<Vec<SpeakerId>, usize> = BTreeMap::new();

    let sources: Vec<SpeakerId> = internet.net.speaker_ids().collect();
    for src in sources {
        if outcomes.contains_key(&src) || scope.is_dead(src) {
            continue;
        }
        let mut chain: Vec<SpeakerId> = Vec::new();
        let mut on_chain: BTreeMap<SpeakerId, usize> = BTreeMap::new();
        let mut cur = src;
        let terminal: Option<Terminal> = loop {
            if let Some(&t) = outcomes.get(&cur) {
                break Some(t);
            }
            if scope.is_dead(cur) {
                break Some(Terminal::DeadSink { at: cur });
            }
            match successor(internet, cur, ip, &covering) {
                None => {
                    // `cur` holds no covering route. At the walk's origin
                    // that just means it is not a source for this
                    // destination; downstream it is a silent blackhole.
                    break if chain.is_empty() {
                        None
                    } else {
                        let t = Terminal::Blackhole {
                            at: cur,
                            cause: BlackholeCause::NoRoute,
                        };
                        Some(t)
                    };
                }
                Some(Step::Deliver { anycast }) => {
                    let t = if anycast {
                        Terminal::Anycast { at: cur }
                    } else {
                        Terminal::Origin { at: cur }
                    };
                    outcomes.insert(cur, t);
                    break Some(t);
                }
                Some(Step::Dead(cause)) => {
                    let t = Terminal::Blackhole { at: cur, cause };
                    outcomes.insert(cur, t);
                    break Some(t);
                }
                Some(Step::Forward(next)) => {
                    on_chain.insert(cur, chain.len());
                    chain.push(cur);
                    if let Some(&start) = on_chain.get(&next) {
                        let mut members: Vec<SpeakerId> = chain[start..].to_vec();
                        let lead = members
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| **s)
                            .map_or(0, |(i, _)| i);
                        members.rotate_left(lead);
                        let idx = match cycle_index.get(&members) {
                            Some(&i) => i,
                            None => {
                                cycles.push(members.clone());
                                cycle_index.insert(members, cycles.len() - 1);
                                cycles.len() - 1
                            }
                        };
                        break Some(Terminal::Cycle { idx });
                    }
                    cur = next;
                }
            }
        };
        if let Some(t) = terminal {
            for s in chain {
                outcomes.insert(s, t);
            }
        }
    }
    DestinationAnalysis {
        prefix,
        ip,
        outcomes,
        cycles,
    }
}

/// Derives and walks the forwarding graph for every registered,
/// unshadowed destination prefix.
pub fn analyze(internet: &Internet, scope: &VerifyScope) -> ForwardingAnalysis {
    let advertised = internet.net.advertised_prefixes();
    let destinations: Vec<DestinationAnalysis> = internet
        .prefixes()
        .filter(|pi| {
            // A registered prefix shadowed by a more-specific registered
            // prefix has no representative host of its own; its fate is
            // the more specific destination's.
            internet
                .lookup_prefix(pi.prefix.first_host())
                .is_some_and(|m| m.prefix == pi.prefix)
        })
        .map(|pi| analyze_destination(internet, scope, pi.prefix, &advertised))
        .collect();
    ForwardingAnalysis { destinations }
}
