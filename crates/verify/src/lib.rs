//! Static control-plane invariant checker for a built VNS deployment.
//!
//! `vns-verify` is to this simulator what Batfish is to vendor configs: it
//! audits *converged control-plane state* — every speaker's Adj-RIB-In,
//! Loc-RIB and (recomputed) Adj-RIB-Out — against the routing invariants
//! the paper's design depends on, without running the simulator forward.
//! A deployment that converges can still be silently wrong: a stale
//! override table, a LOCAL_PREF function that dips below the BGP default,
//! a `NO_EXPORT` more-specific that escaped the AS, or a hidden route the
//! reflectors never saw. Each of those is a paper-level failure mode
//! (Secs 3.2 and 4.2), and each has a check here.
//!
//! The seven invariants:
//!
//! 1. **LP-SHAPE** — the `lp = f(d)` function is monotone nonincreasing
//!    over the whole great-circle distance domain and its floor stays
//!    *much* higher than the default preference of 100 (Sec 3.2: "always
//!    much higher than the default value of 100").
//! 2. **GEO-PREF** — every route in a reflector's Adj-RIB-In carries
//!    exactly the LOCAL_PREF the geo hook assigns for its egress router
//!    and prefix, overrides included (the hook was applied exactly once
//!    and the override table is not stale).
//! 3. **NO-EXPORT** — no `NO_EXPORT`-tagged route crossed or would cross
//!    an AS boundary (Sec 3.2: injected steering more-specifics must stay
//!    inside VNS).
//! 4. **OVERRIDE** — the management override table is sane: forced exits
//!    reference existing PoPs and no prefix is simultaneously exempt and
//!    forced.
//! 5. **HIDDEN-ROUTE** — a border router whose best route is iBGP-learned
//!    but which holds an eBGP alternative still advertises that external
//!    route to the reflectors (Sec 3.2's hidden-routes pathology and its
//!    best-external fix).
//! 6. **VALLEY-FREE** — every eBGP advertisement respects Gao–Rexford
//!    export scoping: peer- or provider-learned routes are only exported
//!    to customers.
//! 7. **NEXT-HOP** — every iBGP-learned route held by a VNS router has a
//!    next hop reachable in the VNS IGP (a route that wins on LOCAL_PREF
//!    but cannot be resolved would blackhole traffic).
//!
//! Those checks are *local*: each one audits a single router's RIBs. A
//! control plane can pass all of them and still forward wrongly — two
//! routers pointing at each other loop traffic even though each next hop
//! resolves locally. The second stage is therefore a **data-plane model
//! checker** ([`dataplane`]): it derives the whole-network forwarding
//! graph from the converged RIBs + IGP next hops ([`forwarding_graph`])
//! and statically proves five global properties — LOOP-FREE,
//! NO-BLACKHOLE, ANYCAST-NEAREST, WAYPOINT and STRETCH-BOUND. The checker
//! itself is validated by a planted-defect corpus ([`mutations`]) with a
//! measured catch rate.
//!
//! The checks assume the network has been run to quiescence
//! ([`vns_bgp::BgpNet::run`]); on a mid-convergence network they may
//! report transients.
//!
//! Entry points: [`verify`] (stage 1) and [`dataplane::verify_dataplane`]
//! (stage 2). The `vns-verify` binary (in `vns-bench`) pretty-prints the
//! [`Report`]s and exits nonzero on errors, and the campaign drivers run
//! both stages as a fail-fast pre-flight.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use vns_bgp::{Prefix, SpeakerId};
use vns_core::{LocalPrefFn, Vns};
use vns_topo::Internet;

mod checks;
pub mod dataplane;
pub mod forwarding_graph;
pub mod mutations;

pub use dataplane::{
    verify_dataplane, verify_dataplane_scoped, verify_dataplane_with_service, DataplaneConfig,
    DataplaneReport,
};
pub use mutations::{plant_defect, PlantedDefect, DEFECT_NAMES};

/// What the verifier should assume about the deployment's health.
///
/// The default scope audits a fully healthy deployment. When a fault
/// campaign has deliberately taken routers down (e.g. a route-reflector
/// failover scenario), checks that assert the *presence* of sessions or
/// RIB state on those routers would report the injected fault itself as a
/// violation — a border router is *supposed* to have no iBGP session to a
/// dead reflector. Scoping the dead routers lets the remaining invariants
/// (which are exactly the ones that must still hold on the surviving
/// topology) be enforced at full strength.
#[derive(Debug, Clone, Default)]
pub struct VerifyScope {
    dead: BTreeSet<SpeakerId>,
}

impl VerifyScope {
    /// The healthy-deployment scope (equivalent to [`VerifyScope::default`]).
    pub fn converged() -> Self {
        Self::default()
    }

    /// A scope in which the given routers are known to be down
    /// (control-plane dead: all BGP sessions torn).
    pub fn with_dead_routers(dead: impl IntoIterator<Item = SpeakerId>) -> Self {
        VerifyScope {
            dead: dead.into_iter().collect(),
        }
    }

    /// True when `router` is assumed dead under this scope.
    pub fn is_dead(&self, router: SpeakerId) -> bool {
        self.dead.contains(&router)
    }

    /// True when no routers are assumed dead.
    pub fn is_converged(&self) -> bool {
        self.dead.is_empty()
    }
}

/// How bad a violation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (e.g. a hidden route on a
    /// deployment that deliberately disabled best-external).
    Warning,
    /// The invariant is broken; the deployment will misroute.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("WARN"),
            Severity::Error => f.write_str("ERROR"),
        }
    }
}

/// Which invariant a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// LOCAL_PREF function shape (monotonicity + floor).
    LpFnShape,
    /// Reflector Adj-RIB-In preference matches the geo hook.
    GeoPreference,
    /// `NO_EXPORT` containment inside the AS.
    NoExportLeak,
    /// Override table sanity.
    OverrideSanity,
    /// Best-external visibility of hidden routes.
    HiddenRoute,
    /// Gao–Rexford export compliance.
    ValleyFree,
    /// IGP resolvability of iBGP next hops.
    NextHopResolution,
    /// No forwarding cycles anywhere in the derived forwarding graph.
    LoopFree,
    /// Every reachable source resolves to an origin (or an explicit
    /// dead-router sink under a fault scope).
    NoBlackhole,
    /// Each client's anycast landing is its geo-nearest live PoP within
    /// the configured stretch tolerance (the paper's Fig. 3 property).
    AnycastNearest,
    /// Admitted calls' forward paths traverse their assigned relay PoP
    /// (cross-checked against the service plane's `PathTable`).
    Waypoint,
    /// Geodesic stretch of egress paths stays under the campaign bound.
    StretchBound,
}

impl Invariant {
    /// Short code used in rendered reports.
    pub fn code(self) -> &'static str {
        match self {
            Invariant::LpFnShape => "LP-SHAPE",
            Invariant::GeoPreference => "GEO-PREF",
            Invariant::NoExportLeak => "NO-EXPORT",
            Invariant::OverrideSanity => "OVERRIDE",
            Invariant::HiddenRoute => "HIDDEN-ROUTE",
            Invariant::ValleyFree => "VALLEY-FREE",
            Invariant::NextHopResolution => "NEXT-HOP",
            Invariant::LoopFree => "LOOP-FREE",
            Invariant::NoBlackhole => "NO-BLACKHOLE",
            Invariant::AnycastNearest => "ANYCAST-NEAREST",
            Invariant::Waypoint => "WAYPOINT",
            Invariant::StretchBound => "STRETCH-BOUND",
        }
    }

    /// The control-plane (stage 1) invariants, in report order.
    pub const CONTROL_PLANE: [Invariant; 7] = [
        Invariant::LpFnShape,
        Invariant::GeoPreference,
        Invariant::NoExportLeak,
        Invariant::OverrideSanity,
        Invariant::HiddenRoute,
        Invariant::ValleyFree,
        Invariant::NextHopResolution,
    ];

    /// The data-plane (stage 2) properties, in report order.
    pub const DATA_PLANE: [Invariant; 5] = [
        Invariant::LoopFree,
        Invariant::NoBlackhole,
        Invariant::AnycastNearest,
        Invariant::Waypoint,
        Invariant::StretchBound,
    ];

    /// All invariants across both stages, in report order.
    pub const ALL: [Invariant; 12] = [
        Invariant::LpFnShape,
        Invariant::GeoPreference,
        Invariant::NoExportLeak,
        Invariant::OverrideSanity,
        Invariant::HiddenRoute,
        Invariant::ValleyFree,
        Invariant::NextHopResolution,
        Invariant::LoopFree,
        Invariant::NoBlackhole,
        Invariant::AnycastNearest,
        Invariant::Waypoint,
        Invariant::StretchBound,
    ];
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding: an invariant broken at a specific place.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The invariant that is violated.
    pub invariant: Invariant,
    /// How bad it is.
    pub severity: Severity,
    /// The speaker where the violation was observed, if localisable.
    pub speaker: Option<SpeakerId>,
    /// The prefix involved, if localisable.
    pub prefix: Option<Prefix>,
    /// Human explanation of what is wrong and why it matters.
    pub message: String,
}

impl Violation {
    /// An error-severity violation.
    pub fn error(invariant: Invariant, message: impl Into<String>) -> Self {
        Self {
            invariant,
            severity: Severity::Error,
            speaker: None,
            prefix: None,
            message: message.into(),
        }
    }

    /// A warning-severity violation.
    pub fn warning(invariant: Invariant, message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Warning,
            ..Self::error(invariant, message)
        }
    }

    /// Attaches the speaker the violation was observed at.
    #[must_use]
    pub fn at(mut self, speaker: SpeakerId) -> Self {
        self.speaker = Some(speaker);
        self
    }

    /// Attaches the prefix involved.
    #[must_use]
    pub fn on(mut self, prefix: Prefix) -> Self {
        self.prefix = Some(prefix);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}]", self.severity, self.invariant)?;
        if let Some(s) = self.speaker {
            write!(f, " {s}")?;
        }
        if let Some(p) = self.prefix {
            write!(f, " {p}")?;
        }
        write!(f, " — {}", self.message)
    }
}

/// Per-invariant cap on individually reported violations; a single broken
/// mechanism (say, a stale override table) can taint thousands of RIB
/// entries, and one summary line carries the same signal as the flood.
const MAX_PER_INVARIANT: usize = 100;

/// Collects violations with per-invariant truncation.
#[derive(Debug, Default)]
pub(crate) struct Reporter {
    violations: Vec<Violation>,
    /// (invariant, severity) -> total observed (reported + suppressed).
    counts: BTreeMap<(Invariant, Severity), usize>,
}

impl Reporter {
    /// Records a violation (dropped past [`MAX_PER_INVARIANT`] per
    /// invariant; the total still counts toward the summary).
    pub(crate) fn push(&mut self, v: Violation) {
        *self.counts.entry((v.invariant, v.severity)).or_default() += 1;
        let reported: usize = Severity::ALL_FOR_COUNT
            .iter()
            .filter_map(|s| self.counts.get(&(v.invariant, *s)))
            .sum();
        if reported <= MAX_PER_INVARIANT {
            self.violations.push(v);
        }
    }

    /// Finalises into a [`Report`], appending one summary line per
    /// truncated invariant.
    pub(crate) fn finish(mut self) -> Report {
        for inv in Invariant::ALL {
            let total: usize = Severity::ALL_FOR_COUNT
                .iter()
                .filter_map(|s| self.counts.get(&(inv, *s)))
                .sum();
            if total > MAX_PER_INVARIANT {
                let worst = if self.counts.contains_key(&(inv, Severity::Error)) {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                let suppressed = total - MAX_PER_INVARIANT;
                let mut v = Violation::error(
                    inv,
                    format!("… and {suppressed} more {inv} violations suppressed"),
                );
                v.severity = worst;
                self.violations.push(v);
            }
        }
        Report {
            violations: self.violations,
            counts: self.counts,
        }
    }
}

impl Severity {
    /// Both severities (counting helper).
    const ALL_FOR_COUNT: [Severity; 2] = [Severity::Warning, Severity::Error];
}

/// The outcome of a verification run.
#[derive(Debug)]
pub struct Report {
    violations: Vec<Violation>,
    /// Total observed per (invariant, severity), truncation included.
    counts: BTreeMap<(Invariant, Severity), usize>,
}

impl Report {
    /// All recorded violations (per-invariant truncated, summary lines
    /// included).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations of a specific invariant.
    pub fn of(&self, invariant: Invariant) -> impl Iterator<Item = &Violation> + '_ {
        self.violations
            .iter()
            .filter(move |v| v.invariant == invariant)
    }

    /// Total error-severity findings (untruncated count).
    pub fn error_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|((_, s), _)| *s == Severity::Error)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total warning-severity findings (untruncated count).
    pub fn warning_count(&self) -> usize {
        self.counts
            .iter()
            .filter(|((_, s), _)| *s == Severity::Warning)
            .map(|(_, n)| n)
            .sum()
    }

    /// True when no violations at all were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when no *error*-severity violations were found (the campaign
    /// pre-flight gate).
    pub fn passes(&self) -> bool {
        self.error_count() == 0
    }

    /// Renders the whole report as human-readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str("vns-verify: clean (no violations)\n");
            return out;
        }
        out.push_str(&format!(
            "vns-verify: {} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        for v in &self.violations {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs every invariant check against a converged deployment.
///
/// `internet` must have been run to quiescence; `vns` is the deployment
/// built into it by [`vns_core::build_vns`].
pub fn verify(internet: &Internet, vns: &Vns) -> Report {
    verify_scoped(internet, vns, &VerifyScope::default())
}

/// Runs the invariant checks against a deployment that may be running
/// degraded: routers listed dead in `scope` are exempt from
/// presence-asserting checks (HIDDEN-ROUTE's session-to-reflector audit,
/// GEO-PREF and NEXT-HOP on the dead routers themselves), while every
/// other invariant still applies at full strength to the surviving
/// topology. With an empty scope this is exactly [`verify`].
///
/// `internet` must still have been run to quiescence *after* the faults
/// were injected — this scopes what "healthy" means, it does not excuse
/// mid-convergence transients.
pub fn verify_scoped(internet: &Internet, vns: &Vns, scope: &VerifyScope) -> Report {
    let mut rep = Reporter::default();
    checks::lp_fn_shape(vns.lp_fn(), "deployed", &mut rep);
    checks::override_sanity(vns, &mut rep);
    checks::geo_preference(internet, vns, scope, &mut rep);
    checks::no_export_containment(internet, &mut rep);
    checks::hidden_routes(internet, vns, scope, &mut rep);
    checks::valley_free(internet, &mut rep);
    checks::next_hop_resolution(internet, vns, scope, &mut rep);
    rep.finish()
}

/// Audits a single LOCAL_PREF function shape in isolation (invariant 1
/// only) — lets tests and the ablation tooling vet a candidate `f(d)`
/// before deploying it.
pub fn check_local_pref_fn(lp_fn: LocalPrefFn) -> Vec<Violation> {
    let mut rep = Reporter::default();
    checks::lp_fn_shape(lp_fn, "candidate", &mut rep);
    rep.finish().violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_renders_location() {
        let v = Violation::error(Invariant::GeoPreference, "mismatch")
            .at(SpeakerId(7))
            .on("10.0.0.0/8".parse().expect("prefix"));
        let s = v.to_string();
        assert!(s.contains("ERROR"), "{s}");
        assert!(s.contains("GEO-PREF"), "{s}");
        assert!(s.contains("R7"), "{s}");
        assert!(s.contains("10.0.0.0/8"), "{s}");
    }

    #[test]
    fn reporter_truncates_per_invariant() {
        let mut rep = Reporter::default();
        for _ in 0..(MAX_PER_INVARIANT + 50) {
            rep.push(Violation::error(Invariant::ValleyFree, "x"));
        }
        rep.push(Violation::warning(Invariant::HiddenRoute, "y"));
        let report = rep.finish();
        // 100 individual + 1 summary for valley-free, 1 for hidden-route.
        assert_eq!(report.violations().len(), MAX_PER_INVARIANT + 2);
        assert_eq!(report.error_count(), MAX_PER_INVARIANT + 50);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.passes());
        let summary = report
            .of(Invariant::ValleyFree)
            .last()
            .expect("summary line");
        assert!(summary.message.contains("50 more"), "{}", summary.message);
    }

    #[test]
    fn clean_report_renders_clean() {
        let report = Reporter::default().finish();
        assert!(report.is_clean());
        assert!(report.passes());
        assert!(report.render().contains("clean"));
    }

    #[test]
    fn default_shapes_pass_shape_check() {
        for f in [
            LocalPrefFn::default(),
            LocalPrefFn::Inverse {
                floor: 1_000,
                scale: 2_000_000.0,
            },
            LocalPrefFn::Stepped,
        ] {
            let vs = check_local_pref_fn(f);
            assert!(vs.is_empty(), "{f:?}: {vs:?}");
        }
    }

    #[test]
    fn broken_shapes_flagged() {
        // Floor at or below the BGP default: geo scores stop dominating
        // plain routes.
        let low = check_local_pref_fn(LocalPrefFn::BandedLinear {
            floor: 0,
            band_km: 1_000_000.0,
        });
        assert!(low.iter().any(|v| v.severity == Severity::Error), "{low:?}");
        // Floor above default but nowhere near "much higher": warning.
        let near = check_local_pref_fn(LocalPrefFn::BandedLinear {
            floor: 150,
            band_km: 1_000_000.0,
        });
        assert!(
            near.iter().any(|v| v.severity == Severity::Warning),
            "{near:?}"
        );
    }
}
