//! The seven invariant checks.
//!
//! Each check walks read-only control-plane state (the introspection
//! accessors on [`vns_bgp::Speaker`]) and pushes [`Violation`]s into the
//! shared [`Reporter`]. None of them mutate the network or depend on
//! check order.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use vns_bgp::policy::relation_from_tags;
use vns_bgp::{may_export, Community, Prefix, RouteSource, SpeakerId, DEFAULT_LOCAL_PREF};
use vns_core::lpfunc::MAX_DISTANCE_KM;
use vns_core::{GeoHook, LocalPrefFn, RoutingMode, Vns};
use vns_topo::Internet;

use crate::{Invariant, Reporter, VerifyScope, Violation};

/// Floor must exceed this multiple of the BGP default to count as the
/// paper's "always much higher than the default value of 100"; between
/// `DEFAULT_LOCAL_PREF` and this it is legal but fragile (warning).
const FLOOR_HEADROOM: u32 = 5;

/// Sweep granularity over the distance domain, km. 1 km resolves every
/// band of every implemented shape (the coarsest real structure is the
/// 25 km default band).
const SWEEP_STEP_KM: f64 = 1.0;

/// Invariant 1 — LP-SHAPE: `f(d)` is monotone nonincreasing over the whole
/// great-circle domain, its floor stays ≫ 100, and out-of-domain inputs
/// clamp to the endpoints. `label` distinguishes the deployed function
/// from candidates vetted via [`crate::check_local_pref_fn`].
pub(crate) fn lp_fn_shape(lp_fn: LocalPrefFn, label: &str, rep: &mut Reporter) {
    let mut prev = lp_fn.compute(0.0);
    let mut min = prev;
    let mut monotone_broken = false;
    let mut d = SWEEP_STEP_KM;
    while d <= MAX_DISTANCE_KM {
        let lp = lp_fn.compute(d);
        if lp > prev && !monotone_broken {
            monotone_broken = true;
            rep.push(Violation::error(
                Invariant::LpFnShape,
                format!(
                    "{label} {lp_fn:?} is not monotone nonincreasing: \
                     f({:.0} km) = {prev} but f({d:.0} km) = {lp} — a farther \
                     egress would be preferred over a nearer one",
                    d - SWEEP_STEP_KM
                ),
            ));
        }
        min = min.min(lp);
        prev = lp;
        d += SWEEP_STEP_KM;
    }
    let floor = lp_fn.compute(MAX_DISTANCE_KM);
    min = min.min(floor);
    if min <= DEFAULT_LOCAL_PREF {
        rep.push(Violation::error(
            Invariant::LpFnShape,
            format!(
                "{label} {lp_fn:?} floor is {min}, at or below the BGP default \
                 of {DEFAULT_LOCAL_PREF}: geo-scored routes would lose to (or \
                 tie with) routes the hook never touched"
            ),
        ));
    } else if min < DEFAULT_LOCAL_PREF * FLOOR_HEADROOM {
        rep.push(Violation::warning(
            Invariant::LpFnShape,
            format!(
                "{label} {lp_fn:?} floor is {min} — above the BGP default of \
                 {DEFAULT_LOCAL_PREF} but not \"much higher\" (Sec 3.2); \
                 expected at least {}",
                DEFAULT_LOCAL_PREF * FLOOR_HEADROOM
            ),
        ));
    }
    // Out-of-domain inputs must clamp, not extrapolate: a GeoIP artefact
    // (negative or antipode-exceeding distance) must never mint an
    // off-scale preference.
    if lp_fn.compute(-1_000.0) != lp_fn.compute(0.0) {
        rep.push(Violation::error(
            Invariant::LpFnShape,
            format!("{label} {lp_fn:?} does not clamp negative distances to f(0)"),
        ));
    }
    if lp_fn.compute(MAX_DISTANCE_KM + 1_000.0) != floor {
        rep.push(Violation::error(
            Invariant::LpFnShape,
            format!(
                "{label} {lp_fn:?} does not clamp beyond-antipode distances \
                 to f({MAX_DISTANCE_KM:.0})"
            ),
        ));
    }
}

/// Invariant 4 — OVERRIDE: forced exits reference PoPs that exist, and the
/// exempt set and forced map are disjoint (the table's own mutators keep
/// them so; a corrupted table makes the geo hook's answer depend on
/// lookup order).
pub(crate) fn override_sanity(vns: &Vns, rep: &mut Reporter) {
    let pop_ids: BTreeSet<_> = vns.pops().iter().map(|p| p.id()).collect();
    let overrides = vns.overrides().read().expect("overrides lock poisoned");
    let exempt: BTreeSet<Prefix> = overrides.exempt_prefixes().collect();
    for (prefix, pop) in overrides.forced_exits() {
        if !pop_ids.contains(&pop) {
            rep.push(
                Violation::error(
                    Invariant::OverrideSanity,
                    format!(
                        "forced exit references {pop}, which is not a deployed \
                         PoP — the force can never take effect"
                    ),
                )
                .on(prefix),
            );
        }
        if exempt.contains(&prefix) {
            rep.push(
                Violation::error(
                    Invariant::OverrideSanity,
                    format!(
                        "prefix is both exempt from geo-routing and forced to \
                         exit at {pop}; the two directives contradict and the \
                         hook's behaviour depends on evaluation order"
                    ),
                )
                .on(prefix),
            );
        }
    }
}

/// Rebuilds the reflectors' geo hook from deployment state, exactly as
/// `build_vns` wired it: border locations from their PoPs, the shared
/// GeoIP view, the deployed `f(d)` and the *live* override table.
fn mirror_hook(internet: &Internet, vns: &Vns) -> GeoHook {
    let mut locations = BTreeMap::new();
    let mut pops = BTreeMap::new();
    for pop in vns.pops() {
        for b in pop.borders {
            locations.insert(b, pop.location());
            pops.insert(b, pop.id());
        }
    }
    GeoHook::new(
        Arc::new(internet.geoip.clone()),
        Arc::new(locations),
        Arc::new(pops),
        vns.lp_fn(),
        Arc::clone(vns.overrides()),
    )
}

/// Invariant 2 — GEO-PREF: every route in a reflector's Adj-RIB-In carries
/// exactly the LOCAL_PREF the geo hook assigns for (egress, prefix) under
/// the *current* override table. Catches a hook that was skipped, applied
/// twice non-idempotently, or — the common operational failure — an
/// override change that was never pushed through a route refresh, leaving
/// the RIBs stale.
pub(crate) fn geo_preference(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    rep: &mut Reporter,
) {
    if vns.mode() != RoutingMode::GeoColdPotato {
        // Hot-potato deployments install no hook; nothing to audit.
        return;
    }
    let hook = mirror_hook(internet, vns);
    for rr in vns.reflectors() {
        if scope.is_dead(rr) {
            // A downed reflector's Adj-RIB-In is empty by construction;
            // nothing it holds can be stale.
            continue;
        }
        let Some(sp) = internet.net.speaker(rr) else {
            rep.push(
                Violation::error(
                    Invariant::GeoPreference,
                    "reflector is not a registered speaker",
                )
                .at(rr),
            );
            continue;
        };
        for (prefix, from, cand) in sp.adj_rib_in_entries() {
            if !cand.source.is_ibgp() {
                rep.push(
                    Violation::error(
                        Invariant::GeoPreference,
                        format!(
                            "reflector holds a non-iBGP route from {from}; \
                             reflectors must have no external sessions"
                        ),
                    )
                    .at(rr)
                    .on(prefix),
                );
                continue;
            }
            if cand.attrs.as_path.is_empty() {
                // VNS-originated service prefixes are exempt from geo
                // scoring by design (the hook skips empty AS paths).
                continue;
            }
            let egress = cand.attrs.next_hop;
            if let Some(expected) = hook.assigned_pref(egress, prefix) {
                let got = cand.attrs.local_pref;
                if got != expected {
                    let pop = vns
                        .pop_of_router(egress)
                        .map_or_else(|| "unknown PoP".to_string(), |p| p.to_string());
                    rep.push(
                        Violation::error(
                            Invariant::GeoPreference,
                            format!(
                                "Adj-RIB-In route from {from} via egress \
                                 {egress} ({pop}) carries LOCAL_PREF {got} but \
                                 the geo hook assigns {expected} — stale or \
                                 mis-applied geo preference"
                            ),
                        )
                        .at(rr)
                        .on(prefix),
                    );
                }
            }
            // `None` means the prefix is absent from GeoIP with no override
            // active: the hook leaves such routes untouched by design.
        }
    }
}

/// Invariant 3 — NO-EXPORT: `NO_EXPORT`-tagged routes never cross an AS
/// boundary. Checked from both ends of every session: (a) receive side —
/// an eBGP-learned Adj-RIB-In entry carrying the community means a leak
/// already happened; (b) send side — recompute every eBGP export for
/// prefixes whose best (or best-external) route carries the community and
/// confirm the export pipeline dropped it.
pub(crate) fn no_export_containment(internet: &Internet, rep: &mut Reporter) {
    let net = &internet.net;
    let ids: Vec<SpeakerId> = net.speaker_ids().collect();
    for id in ids {
        let Some(sp) = net.speaker(id) else { continue };
        // (a) Receive side.
        for (prefix, from, cand) in sp.adj_rib_in_entries() {
            if cand.source.is_ebgp() && cand.attrs.has_community(Community::NoExport) {
                rep.push(
                    Violation::error(
                        Invariant::NoExportLeak,
                        format!(
                            "NO_EXPORT route learned over eBGP from {from} — \
                             the community crossed an AS boundary; injected \
                             steering more-specifics must stay inside the \
                             originating AS"
                        ),
                    )
                    .at(id)
                    .on(prefix),
                );
            }
        }
        // (b) Send side.
        let ebgp_peers: Vec<SpeakerId> = sp
            .peer_ids()
            .filter(|p| sp.peer_config(*p).is_some_and(|c| c.kind.is_ebgp()))
            .collect();
        if ebgp_peers.is_empty() {
            continue;
        }
        for prefix in sp.loc_rib_prefixes() {
            let tagged_best = sp
                .best(&prefix)
                .is_some_and(|c| c.attrs.has_community(Community::NoExport));
            let tagged_ext = sp.best_external_enabled()
                && sp
                    .best_external_route(&prefix)
                    .is_some_and(|c| c.attrs.has_community(Community::NoExport));
            if !tagged_best && !tagged_ext {
                continue;
            }
            for &peer in &ebgp_peers {
                if let Some(attrs) = sp.exported_to(peer, &prefix) {
                    if attrs.has_community(Community::NoExport) {
                        rep.push(
                            Violation::error(
                                Invariant::NoExportLeak,
                                format!(
                                    "export pipeline would advertise a \
                                     NO_EXPORT route over the eBGP session to \
                                     {peer}"
                                ),
                            )
                            .at(id)
                            .on(prefix),
                        );
                    }
                }
            }
        }
    }
}

/// Invariant 5 — HIDDEN-ROUTE: a border whose overall best route is
/// iBGP-learned but which holds a viable eBGP alternative must still
/// advertise that external route to both reflectors (Sec 3.2: without
/// best-external the alternative is invisible AS-wide and geo-routing
/// cannot consider that egress). Error when best-external is enabled and
/// the advertisement is still missing (machinery broken); warning when the
/// deployment runs with best-external off (the paper's pathology,
/// reproduced deliberately).
pub(crate) fn hidden_routes(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    rep: &mut Reporter,
) {
    for pop in vns.pops() {
        for b in pop.borders {
            if scope.is_dead(b) {
                // A downed border advertises nothing; there is no
                // best-external machinery left to audit.
                continue;
            }
            let Some(sp) = internet.net.speaker(b) else {
                rep.push(
                    Violation::error(Invariant::HiddenRoute, "border is not a registered speaker")
                        .at(b),
                );
                continue;
            };
            for prefix in sp.loc_rib_prefixes() {
                let Some(best) = sp.best(&prefix) else {
                    continue;
                };
                if !best.source.is_ibgp() {
                    continue;
                }
                let Some(ext) = sp.best_external_route(&prefix) else {
                    continue;
                };
                if ext.attrs.has_community(Community::NoAdvertise) {
                    continue;
                }
                for rr in vns.reflectors() {
                    if scope.is_dead(rr) {
                        // Sessions to a dead reflector are *expected* to be
                        // gone; the surviving reflector's visibility is
                        // what keeps the route un-hidden.
                        continue;
                    }
                    if sp.peer_config(rr).is_none() {
                        rep.push(
                            Violation::error(
                                Invariant::HiddenRoute,
                                format!("border has no iBGP session to reflector {rr}"),
                            )
                            .at(b),
                        );
                        continue;
                    }
                    if sp.exported_to(rr, &prefix).is_none() {
                        let v = if sp.best_external_enabled() {
                            Violation::error(
                                Invariant::HiddenRoute,
                                format!(
                                    "best route is iBGP-learned and an eBGP \
                                     alternative exists, but nothing is \
                                     advertised to reflector {rr} despite \
                                     best-external being enabled"
                                ),
                            )
                        } else {
                            Violation::warning(
                                Invariant::HiddenRoute,
                                format!(
                                    "hidden route: eBGP alternative is \
                                     invisible to reflector {rr}; enable \
                                     best-external (Sec 3.2)"
                                ),
                            )
                        };
                        rep.push(v.at(b).on(prefix));
                    }
                }
            }
        }
    }
}

/// Invariant 6 — VALLEY-FREE: for every eBGP-learned Adj-RIB-In entry,
/// the *sender's* current best route for that prefix was exportable to us
/// under Gao–Rexford scoping (own and customer routes go everywhere;
/// peer- and provider-learned routes go only to customers). Also flags
/// routes echoed straight back to the speaker they were learned from.
pub(crate) fn valley_free(internet: &Internet, rep: &mut Reporter) {
    let net = &internet.net;
    let ids: Vec<SpeakerId> = net.speaker_ids().collect();
    for id in ids {
        let Some(sp) = net.speaker(id) else { continue };
        for (prefix, _from, cand) in sp.adj_rib_in_entries() {
            let RouteSource::Ebgp { peer, relation, .. } = cand.source else {
                continue;
            };
            let Some(sender) = net.speaker(peer) else {
                rep.push(
                    Violation::error(
                        Invariant::ValleyFree,
                        format!("eBGP route from {peer}, which is not a registered speaker"),
                    )
                    .at(id)
                    .on(prefix),
                );
                continue;
            };
            // Converged state: what the sender advertised derives from its
            // current best for the prefix. Absence means a withdraw is the
            // correct converged state — skip rather than guess.
            let Some(sbest) = sender.best(&prefix) else {
                continue;
            };
            if sbest.source.peer() == Some(id) {
                rep.push(
                    Violation::error(
                        Invariant::ValleyFree,
                        format!(
                            "{peer}'s best route for this prefix was learned \
                             from us, yet we hold its advertisement — the \
                             route was echoed back across the session"
                        ),
                    )
                    .at(id)
                    .on(prefix),
                );
                continue;
            }
            let learned = match &sbest.source {
                RouteSource::Local => None,
                RouteSource::Ebgp { relation, .. } => Some(*relation),
                RouteSource::Ibgp { .. } => match relation_from_tags(&sbest.attrs) {
                    Some(r) => Some(r),
                    None if sbest.attrs.as_path.is_empty() => None,
                    None => {
                        rep.push(
                            Violation::error(
                                Invariant::ValleyFree,
                                format!(
                                    "{peer} exported an iBGP-learned transit \
                                     route with no ingress-relation tag; its \
                                     Gao–Rexford class cannot be established"
                                ),
                            )
                            .at(id)
                            .on(prefix),
                        );
                        continue;
                    }
                },
            };
            // `relation` is *our* relationship to the sender; the sender
            // sees us as the inverse.
            let sender_to_us = relation.inverse();
            if !may_export(learned, sender_to_us) {
                rep.push(
                    Violation::error(
                        Invariant::ValleyFree,
                        format!(
                            "{peer} exported a {learned:?}-learned route to a \
                             {sender_to_us:?} — a valley: peer/provider routes \
                             may only be exported to customers"
                        ),
                    )
                    .at(id)
                    .on(prefix),
                );
            }
        }
    }
}

/// Invariant 7 — NEXT-HOP: every iBGP-learned route a VNS router holds
/// (selected or candidate) names a next hop reachable in the VNS IGP.
/// The decision process compares LOCAL_PREF before resolvability, so an
/// unresolvable high-preference candidate would win selection and
/// blackhole traffic.
pub(crate) fn next_hop_resolution(
    internet: &Internet,
    vns: &Vns,
    scope: &VerifyScope,
    rep: &mut Reporter,
) {
    let routers: Vec<SpeakerId> = vns
        .pops()
        .iter()
        .flat_map(|p| p.borders)
        .chain(vns.reflectors())
        .collect();
    for r in routers {
        if scope.is_dead(r) {
            // A downed router forwards nothing; routes *naming it* as next
            // hop are still audited from the surviving routers below.
            continue;
        }
        let Some(sp) = internet.net.speaker(r) else {
            rep.push(
                Violation::error(
                    Invariant::NextHopResolution,
                    "VNS router is not a registered speaker",
                )
                .at(r),
            );
            continue;
        };
        let mut seen: BTreeSet<(Prefix, SpeakerId)> = BTreeSet::new();
        for (prefix, from, cand) in sp.adj_rib_in_entries() {
            if !cand.source.is_ibgp() {
                continue;
            }
            let nh = cand.attrs.next_hop;
            if nh != r && sp.igp_cost(nh).is_none() && seen.insert((prefix, nh)) {
                rep.push(
                    Violation::error(
                        Invariant::NextHopResolution,
                        format!(
                            "iBGP route from {from} names next hop {nh}, \
                             which is unreachable in the VNS IGP — if \
                             selected it blackholes traffic"
                        ),
                    )
                    .at(r)
                    .on(prefix),
                );
            }
        }
        for prefix in sp.loc_rib_prefixes() {
            let Some(best) = sp.best(&prefix) else {
                continue;
            };
            if !best.source.is_ibgp() {
                continue;
            }
            let nh = best.attrs.next_hop;
            if nh != r && sp.igp_cost(nh).is_none() && seen.insert((prefix, nh)) {
                rep.push(
                    Violation::error(
                        Invariant::NextHopResolution,
                        format!("selected route names IGP-unreachable next hop {nh}"),
                    )
                    .at(r)
                    .on(prefix),
                );
            }
        }
    }
}
