//! Property tests over the Internet generator: for arbitrary seeds the
//! generated world must satisfy its structural invariants.

use proptest::prelude::*;
use vns_topo::{generate, AsType, TopoConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn generated_world_invariants(seed in 0u64..10_000) {
        let internet = generate(&TopoConfig::tiny(seed)).expect("generation succeeds");

        // Registry consistency: every router of every AS maps back to it.
        for info in internet.ases() {
            prop_assert!(!info.routers.is_empty());
            for &(city, sp) in &info.routers {
                prop_assert_eq!(internet.as_of_speaker(sp), Some(info.id));
                prop_assert_eq!(internet.city_of_router(sp), Some(city));
            }
            prop_assert!(!info.presence.is_empty());
            // Multi-router ASes carry an IGP for data-plane expansion.
            if info.routers.len() > 1 {
                prop_assert!(info.igp.is_some(), "{} lacks an IGP", info.asn);
            }
        }

        // Every prefix registered in the table is originated by its AS and
        // geolocated.
        for p in internet.prefixes() {
            let origin = internet.as_info(p.origin);
            prop_assert!(origin.prefixes.contains(&p.prefix));
            prop_assert!(internet.geoip.lookup(p.prefix).is_ok());
            // True location is near the claimed city (placement scatter is
            // tens of km).
            let city_loc = vns_geo::city(p.city).location;
            prop_assert!(p.location.distance_km(&city_loc) < 60.0);
        }

        // Near-full reachability from every AS-level speaker.
        let reach = vns_topo::gen::reachability(&internet);
        prop_assert!(reach > 0.99, "reachability {reach}");

        // Type mix present.
        for ty in AsType::ALL {
            prop_assert!(internet.ases().any(|a| a.ty == ty));
        }
    }

    #[test]
    fn link_geometry_is_symmetric(seed in 0u64..10_000) {
        let internet = generate(&TopoConfig::tiny(seed)).expect("generation succeeds");
        let speakers: Vec<_> = internet
            .ases()
            .flat_map(|a| a.routers.iter().map(|(_, s)| *s))
            .collect();
        let mut checked = 0;
        for &a in speakers.iter().take(30) {
            for &b in speakers.iter().take(30) {
                let ab = internet.links_between(a, b);
                let ba = internet.links_between(b, a);
                prop_assert_eq!(ab.len(), ba.len());
                for (x, y) in ab.iter().zip(ba.iter().rev()) {
                    // Same multiset of city pairs, mirrored.
                    let _ = (x, y);
                }
                if !ab.is_empty() {
                    checked += 1;
                    let mirrored: Vec<_> = ba.iter().map(|(x, y)| (*y, *x)).collect();
                    for pair in ab {
                        prop_assert!(mirrored.contains(pair));
                    }
                }
            }
        }
        prop_assert!(checked > 0);
    }
}
