//! Calibration-rule tests for the channel factory: the region-pair rules
//! that encode the paper's transit observations.

use vns_bgp::Asn;
use vns_geo::cities::city_by_name;
use vns_geo::Region;
use vns_netsim::RngTree;
use vns_topo::path::{HopKind, ResolvedHop};
use vns_topo::{AsType, CalibrationConfig, ChannelFactory};

fn factory() -> ChannelFactory {
    ChannelFactory::new(CalibrationConfig::default(), RngTree::new(1).subtree("t"))
}

fn haul(from: &str, to: &str, km: f64) -> ResolvedHop {
    let to_region = city_by_name(to).expect("known city").1.region;
    ResolvedHop {
        kind: HopKind::IntraAs {
            asn: Asn(9),
            ty: AsType::Ltp,
            region: to_region,
            dedicated: false,
        },
        from_city: city_by_name(from).expect("known city").0,
        to_city: city_by_name(to).expect("known city").0,
        km,
        label: format!("t:{from}->{to}"),
    }
}

#[test]
fn transatlantic_takes_the_milder_profile() {
    // NA->EU ~ EU->EU per km (the paper: "loss from NA PoPs to EU
    // destinations is comparable to that from EU PoPs").
    let f = factory();
    let atlantic = f.loss_model(&haul("NewYork", "London", 6000.0)).mean_rate();
    let eu_same_km = f.loss_model(&haul("Oslo", "Athens", 6000.0)).mean_rate();
    assert!(
        atlantic <= eu_same_km * 1.3,
        "atlantic {atlantic} vs EU-internal {eu_same_km}"
    );
}

#[test]
fn eu_ap_route_is_hot() {
    // The Suez-era EU<->AP haul takes the heavy AP profile: far lossier
    // than a trans-Atlantic of the same length.
    let f = factory();
    let suez = f
        .loss_model(&haul("Frankfurt", "Singapore", 6000.0))
        .mean_rate();
    let atlantic = f.loss_model(&haul("NewYork", "London", 6000.0)).mean_rate();
    assert!(
        suez > 2.0 * atlantic,
        "EU-AP {suez} should dwarf Atlantic {atlantic}"
    );
}

#[test]
fn transpacific_is_premium() {
    // NA<->AP takes the milder NA profile (the paper's SJS observation).
    let f = factory();
    let pacific = f
        .loss_model(&haul("SanJose", "Singapore", 13000.0))
        .mean_rate();
    let suez = f
        .loss_model(&haul("Frankfurt", "Singapore", 13000.0))
        .mean_rate();
    assert!(
        pacific < suez,
        "trans-Pacific {pacific} should be cleaner than EU-AP {suez}"
    );
}

#[test]
fn scarce_regions_dominate_their_hauls() {
    // Anything touching OC/ME/AF/SA runs on the hot "rest" profile.
    let f = factory();
    let au = f
        .loss_model(&haul("Singapore", "Sydney", 6300.0))
        .mean_rate();
    let intra_ap = f
        .loss_model(&haul("Singapore", "HongKong", 6300.0))
        .mean_rate();
    assert!(
        au >= intra_ap,
        "AU haul {au} at least as hot as AP {intra_ap}"
    );
}

#[test]
fn long_leased_ports_are_oversubscribed() {
    // The >2000 km InterAs case (London's Ashburn port) must be far
    // lossier than a metro cross-connect.
    let f = factory();
    let mk = |km| ResolvedHop {
        kind: HopKind::InterAs {
            region: Region::NorthAmerica,
        },
        from_city: city_by_name("London").unwrap().0,
        to_city: city_by_name("Ashburn").unwrap().0,
        km,
        label: "port".into(),
    };
    let metro = f.loss_model(&mk(1.0)).mean_rate();
    let backhaul = f.loss_model(&mk(5900.0)).mean_rate();
    assert!(
        backhaul > 20.0 * metro,
        "backhaul {backhaul} vs metro {metro}"
    );
}

#[test]
fn last_mile_diurnality_differs_by_type() {
    // CAHPs peak in the evening, ECs during business hours.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vns_netsim::{Dur, LossProcess, SimTime};
    let f = factory();
    let lm = |ty| ResolvedHop {
        kind: HopKind::LastMile {
            ty,
            region: Region::Europe,
        },
        from_city: city_by_name("Amsterdam").unwrap().0,
        to_city: city_by_name("Amsterdam").unwrap().0,
        km: 30.0,
        label: format!("lm:{ty:?}"),
    };
    let prob_at = |ty, hour: u64| {
        let model = f.loss_model(&lm(ty));
        // Average the window probability over many fluctuation draws.
        let mut acc = 0.0;
        for s in 0..60 {
            let mut p = LossProcess::new(model.clone(), SmallRng::seed_from_u64(s));
            acc += p.loss_prob(SimTime::EPOCH + Dur::from_hours(hour) + Dur::from_secs(s));
        }
        acc / 60.0
    };
    // Amsterdam is UTC+0.33h; local evening ~ 20:00 local ≈ 20h sim.
    let cahp_evening = prob_at(AsType::Cahp, 20);
    let cahp_dawn = prob_at(AsType::Cahp, 4);
    assert!(
        cahp_evening > 3.0 * cahp_dawn.max(1e-9),
        "CAHP evening {cahp_evening} vs dawn {cahp_dawn}"
    );
    let ec_noon = prob_at(AsType::Ec, 13);
    let ec_dawn = prob_at(AsType::Ec, 4);
    assert!(
        ec_noon > 3.0 * ec_dawn.max(1e-9),
        "EC noon {ec_noon} vs dawn {ec_dawn}"
    );
}
