//! AS classification.
//!
//! Sec 5.2 of the paper groups last-mile hosts by the four AS types of
//! Dhamdhere & Dovrolis (IMC'08), and Table 1 / Fig 12 report loss per
//! type. The generator assigns every synthetic AS one of these types, which
//! then selects its size, connectivity and last-mile loss profile.

use std::fmt;

/// The four AS classes used throughout the paper's Sec 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsType {
    /// Large Transit Provider — global Tier-1 style network.
    Ltp,
    /// Small Transit Provider — regional transit.
    Stp,
    /// Content / Access / Hosting Provider — serves residential users and
    /// content; the congested edge in the paper's findings.
    Cahp,
    /// Enterprise Customer — stub business network.
    Ec,
}

impl AsType {
    /// All types in the order the paper's Table 1 reports them.
    pub const ALL: [AsType; 4] = [AsType::Ltp, AsType::Stp, AsType::Cahp, AsType::Ec];

    /// Legend code.
    pub fn code(&self) -> &'static str {
        match self {
            AsType::Ltp => "LTP",
            AsType::Stp => "STP",
            AsType::Cahp => "CAHP",
            AsType::Ec => "EC",
        }
    }

    /// Whether this type sells transit (can appear mid-path).
    pub fn is_transit(&self) -> bool {
        matches!(self, AsType::Ltp | AsType::Stp)
    }
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_transit() {
        assert_eq!(AsType::Ltp.code(), "LTP");
        assert!(AsType::Ltp.is_transit());
        assert!(AsType::Stp.is_transit());
        assert!(!AsType::Cahp.is_transit());
        assert!(!AsType::Ec.is_transit());
        assert_eq!(AsType::ALL.len(), 4);
    }
}
