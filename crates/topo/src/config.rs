//! Generator configuration.

use vns_geo::Region;

/// Prefix counts originated per AS, by type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCounts {
    /// Prefixes per LTP.
    pub ltp: usize,
    /// Prefixes per STP.
    pub stp: usize,
    /// Prefixes per CAHP.
    pub cahp: usize,
    /// Prefixes per EC.
    pub ec: usize,
}

impl Default for PrefixCounts {
    fn default() -> Self {
        Self {
            ltp: 5,
            stp: 4,
            cahp: 3,
            ec: 1,
        }
    }
}

/// Configuration for [`crate::generate`].
///
/// The defaults build a ~200-AS, ~600-prefix Internet that converges in
/// well under a second — the paper's 400k-prefix table is scaled down by
/// ~3 orders of magnitude, preserving structure (see DESIGN.md). Multiply
/// the counts for paper-scale runs.
#[derive(Debug, Clone)]
pub struct TopoConfig {
    /// Master seed for all generator randomness.
    pub seed: u64,
    /// Number of global Tier-1-style LTPs.
    pub ltps: usize,
    /// STPs per unit-weight region (scaled by region weight).
    pub stps_per_region: usize,
    /// CAHPs per unit-weight region.
    pub cahps_per_region: usize,
    /// ECs per unit-weight region.
    pub ecs_per_region: usize,
    /// Prefixes originated per AS by type.
    pub prefixes: PrefixCounts,
    /// Fraction of AP transit providers that also maintain their own
    /// trans-Pacific presence on the US west coast (the paper observed
    /// "many Asian network providers carry data to the USA over own
    /// trans-Pacific infrastructure").
    pub ap_transpacific_fraction: f64,
    /// Fraction of non-LTP ASes whose prefixes are geographically spread
    /// across two regions (the paper's Sec 3.2 "subnets of a contiguous
    /// prefix can have a large geographic spread").
    pub spread_as_fraction: f64,
    /// Probability that two same-region STPs peer (given a shared city).
    pub stp_peering_prob: f64,
    /// Probability that two same-region CAHPs peer at a regional hub.
    pub cahp_peering_prob: f64,
    /// Whether to apply the GeoIP error models (city jitter + the Russian
    /// centroid collapse + the Indian stale-WHOIS relocation).
    pub geoip_errors: bool,
    /// Uniform city-level GeoIP jitter radius, km.
    pub geoip_jitter_km: f64,
    /// Message budget for the initial BGP convergence.
    pub message_budget: u64,
    /// Worker threads for the sharded initial convergence
    /// ([`vns_bgp::BgpNet::run_sharded`]); `0` means one per available
    /// hardware thread. The count never affects generated worlds — only
    /// wall-clock — matching the campaign engine's determinism contract.
    pub convergence_threads: usize,
    /// Converge with the monolithic activation-queue engine
    /// ([`vns_bgp::BgpNet::run`]) instead of the sharded one. A reference
    /// oracle for differential tests — the two engines must produce
    /// identical Loc-RIBs; production builds leave this off.
    pub monolithic_convergence: bool,
}

impl Default for TopoConfig {
    fn default() -> Self {
        Self {
            seed: 20130909, // CoNEXT'13 camera-ready season
            ltps: 8,
            stps_per_region: 6,
            cahps_per_region: 14,
            ecs_per_region: 12,
            prefixes: PrefixCounts::default(),
            ap_transpacific_fraction: 0.35,
            spread_as_fraction: 0.05,
            stp_peering_prob: 0.5,
            cahp_peering_prob: 0.25,
            geoip_errors: true,
            geoip_jitter_km: 60.0,
            message_budget: 50_000_000,
            convergence_threads: 0,
            monolithic_convergence: false,
        }
    }
}

impl TopoConfig {
    /// Relative AS density per region, reflecting where the Internet's
    /// networks actually are: EU and NA dense, AP medium, the rest sparse.
    pub fn region_weight(region: Region) -> f64 {
        match region {
            Region::Europe => 1.0,
            Region::NorthAmerica => 1.0,
            Region::AsiaPacific => 0.85,
            Region::Oceania => 0.35,
            Region::SouthAmerica => 0.3,
            Region::MiddleEast => 0.25,
            Region::Africa => 0.25,
        }
    }

    /// How many ASes of a per-region count to create in `region`.
    pub fn scaled_count(&self, per_region: usize, region: Region) -> usize {
        ((per_region as f64) * Self::region_weight(region)).round() as usize
    }

    /// A smaller config for fast unit/integration tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            ltps: 4,
            stps_per_region: 3,
            cahps_per_region: 5,
            ecs_per_region: 4,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = TopoConfig::default();
        assert!(c.ltps >= 2);
        assert!(c.prefixes.ltp >= 1);
        assert!(c.ap_transpacific_fraction >= 0.0 && c.ap_transpacific_fraction <= 1.0);
    }

    #[test]
    fn region_scaling() {
        let c = TopoConfig::default();
        let eu = c.scaled_count(10, Region::Europe);
        let af = c.scaled_count(10, Region::Africa);
        assert_eq!(eu, 10);
        assert!(af < eu && af >= 1);
    }
}
