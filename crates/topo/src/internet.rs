//! The assembled Internet: AS registry, interconnection geometry, prefix
//! table and the running BGP network.
//!
//! This structure is shared by the generator (which fills it with external
//! ASes) and `vns-core` (which registers the VNS AS: multi-router, with an
//! IGP and dedicated links). The data-plane resolver in [`crate::path`]
//! reads everything it needs from here.

use std::collections::BTreeMap;

use vns_bgp::{Asn, BgpNet, IgpGraph, Prefix, PrefixTrie, SpeakerId};
use vns_geo::{city, CityId, GeoIpDb, GeoPoint, Region};

use crate::astype::AsType;

/// Index into the AS registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u32);

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// Registry index.
    pub id: AsId,
    /// AS number.
    pub asn: Asn,
    /// Classification.
    pub ty: AsType,
    /// Home region (where most of its infrastructure is).
    pub region: Region,
    /// Home city — its "traffic centre of mass" for hot-potato modelling.
    pub home_city: CityId,
    /// Cities where the AS has presence.
    pub presence: Vec<CityId>,
    /// The AS's BGP speaker when modelled at AS granularity (`None` for
    /// multi-router ASes like VNS, whose routers are registered
    /// separately).
    pub speaker: Option<SpeakerId>,
    /// All of the AS's routers with their cities. Single-router ASes have
    /// one entry; multi-router transit providers (and VNS) have several.
    pub routers: Vec<(CityId, SpeakerId)>,
    /// Prefixes it originates.
    pub prefixes: Vec<Prefix>,
    /// True for well-provisioned dedicated infrastructure (VNS): its
    /// intra-AS hops use the near-lossless channel profile.
    pub dedicated: bool,
    /// Intra-AS router topology for multi-router ASes (drives hop-by-hop
    /// expansion of internal paths).
    pub igp: Option<IgpGraph>,
}

/// Where a prefix lives (ground truth, for the data plane and evaluation).
#[derive(Debug, Clone)]
pub struct PrefixInfo {
    /// The prefix.
    pub prefix: Prefix,
    /// Originating AS.
    pub origin: AsId,
    /// City whose location is the prefix's ground truth.
    pub city: CityId,
    /// Exact ground-truth location (city plus placement scatter).
    pub location: GeoPoint,
    /// Whether reaching hosts in this prefix crosses a last-mile access
    /// segment (false for infrastructure prefixes, e.g. VNS echo servers
    /// that live inside a PoP).
    pub last_mile: bool,
    /// True for anycast prefixes originated at many sites (VNS TURN
    /// relays): the data plane terminates at whichever originating router
    /// the route led to, not at `city`.
    pub anycast: bool,
}

/// The world.
#[derive(Debug)]
pub struct Internet {
    /// The BGP control plane (external AS speakers + any registered
    /// routers).
    pub net: BgpNet,
    /// The GeoIP database keyed by prefix (reported locations may be
    /// wrong; ground truth lives in [`PrefixInfo`]).
    pub geoip: GeoIpDb<Prefix>,
    ases: Vec<AsInfo>,
    asn_index: BTreeMap<Asn, AsId>,
    speaker_index: BTreeMap<SpeakerId, AsId>,
    /// City of each registered router (AS-level speakers: home city).
    router_city: BTreeMap<SpeakerId, CityId>,
    /// Interconnect geometry per speaker pair: (near city, far city) for
    /// each parallel link, keyed in both directions.
    session_links: BTreeMap<(SpeakerId, SpeakerId), Vec<(CityId, CityId)>>,
    prefix_table: PrefixTrie<PrefixInfo>,
    next_speaker: u32,
    next_asn: u32,
    /// Stats of every convergence run over `net`, in order (topology
    /// generation first, then each reconvergence — VNS build, failovers).
    /// Lets scale tooling report message/round counts without re-running.
    pub convergence_log: Vec<vns_bgp::ConvergenceStats>,
}

impl Default for Internet {
    fn default() -> Self {
        Self::new()
    }
}

impl Internet {
    /// An empty world.
    pub fn new() -> Self {
        Self {
            net: BgpNet::new(),
            geoip: GeoIpDb::new(),
            ases: Vec::new(),
            asn_index: BTreeMap::new(),
            speaker_index: BTreeMap::new(),
            router_city: BTreeMap::new(),
            session_links: BTreeMap::new(),
            prefix_table: PrefixTrie::new(),
            next_speaker: 1,
            next_asn: 1,
            convergence_log: Vec::new(),
        }
    }

    /// Mints a fresh speaker id (also used by `vns-core` for VNS routers).
    pub fn alloc_speaker_id(&mut self) -> SpeakerId {
        let id = SpeakerId(self.next_speaker);
        self.next_speaker += 1;
        id
    }

    /// Mints a fresh AS number.
    pub fn alloc_asn(&mut self) -> Asn {
        let asn = Asn(self.next_asn);
        self.next_asn += 1;
        asn
    }

    /// Registers an AS. Returns its id.
    pub fn add_as(&mut self, info: AsInfo) -> AsId {
        let id = AsId(self.ases.len() as u32);
        debug_assert_eq!(info.id, id, "AsInfo.id must match registry position");
        self.asn_index.insert(info.asn, id);
        if let Some(sp) = info.speaker {
            self.speaker_index.insert(sp, id);
            self.router_city.insert(sp, info.home_city);
        }
        for &(city, sp) in &info.routers {
            self.speaker_index.insert(sp, id);
            self.router_city.insert(sp, city);
        }
        self.ases.push(info);
        id
    }

    /// The AS's router closest to `near_city` (for binding interconnects
    /// and starting data-plane walks). `None` when the AS has no routers.
    pub fn router_of(&self, as_id: AsId, near_city: CityId) -> Option<SpeakerId> {
        let info = self.as_info(as_id);
        info.routers
            .iter()
            .min_by(|(a, _), (b, _)| {
                Self::city_km(near_city, *a).total_cmp(&Self::city_km(near_city, *b))
            })
            .map(|&(_, sp)| sp)
            .or(info.speaker)
    }

    /// Next AS id that [`Internet::add_as`] will assign.
    pub fn next_as_id(&self) -> AsId {
        AsId(self.ases.len() as u32)
    }

    /// Registers a router belonging to a multi-router AS (VNS border
    /// routers and reflectors).
    pub fn register_router(&mut self, router: SpeakerId, as_id: AsId, city: CityId) {
        self.speaker_index.insert(router, as_id);
        self.router_city.insert(router, city);
    }

    /// Assigns every registered router to the convergence shard of its
    /// city's world region (see [`vns_bgp::BgpNet::run_sharded`]), and
    /// derives the [`vns_bgp::BgpNet::set_hop_limit`] bound from the
    /// world's size: router-level paths cross each AS at most twice, so
    /// `2·|AS| + 2` can never cut a legal path short, however deep the
    /// provider chains get on scaled worlds. Idempotent; call again after
    /// registering more routers (e.g. the VNS deployment's).
    pub fn assign_region_shards(&mut self) {
        let assignments: Vec<(SpeakerId, u32)> = self
            .router_city
            .iter()
            .map(|(&sp, &c)| (sp, city(c).region.index()))
            .collect();
        for (sp, shard) in assignments {
            self.net.set_shard(sp, shard);
        }
        let hop_limit = (2 * self.ases.len() as u32 + 2).max(vns_bgp::DEFAULT_HOP_LIMIT);
        self.net.set_hop_limit(hop_limit);
    }

    /// Records interconnect geometry for a session between two speakers:
    /// the link lands in `city_a` on `a`'s side and `city_b` on `b`'s side
    /// (usually the same metro). Parallel links at more cities may be
    /// recorded by calling again.
    pub fn record_link(&mut self, a: SpeakerId, city_a: CityId, b: SpeakerId, city_b: CityId) {
        self.session_links
            .entry((a, b))
            .or_default()
            .push((city_a, city_b));
        self.session_links
            .entry((b, a))
            .or_default()
            .push((city_b, city_a));
    }

    /// Interconnect candidates from `a` towards `b`.
    pub fn links_between(&self, a: SpeakerId, b: SpeakerId) -> &[(CityId, CityId)] {
        self.session_links.get(&(a, b)).map_or(&[], Vec::as_slice)
    }

    /// Registers a prefix: control plane origination is the caller's job;
    /// this records ground truth and the GeoIP view.
    pub fn add_prefix(&mut self, info: PrefixInfo, country: &str, reported: GeoPoint) {
        self.geoip.insert(info.prefix, reported, country);
        self.prefix_table.insert(info.prefix, info);
    }

    /// Ground-truth info for the longest prefix containing `ip`.
    pub fn lookup_prefix(&self, ip: u32) -> Option<&PrefixInfo> {
        self.prefix_table.lookup(ip).map(|(_, v)| v)
    }

    /// Exact prefix info.
    pub fn prefix_info(&self, prefix: &Prefix) -> Option<&PrefixInfo> {
        self.prefix_table.get(prefix)
    }

    /// All registered prefixes in address order.
    pub fn prefixes(&self) -> impl Iterator<Item = &PrefixInfo> {
        self.prefix_table.iter().map(|(_, v)| v)
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// AS by id.
    pub fn as_info(&self, id: AsId) -> &AsInfo {
        &self.ases[id.0 as usize]
    }

    /// Mutable AS access (the generator and `vns-core` extend entries).
    pub fn as_info_mut(&mut self, id: AsId) -> &mut AsInfo {
        &mut self.ases[id.0 as usize]
    }

    /// AS by number.
    pub fn as_by_asn(&self, asn: Asn) -> Option<&AsInfo> {
        self.asn_index.get(&asn).map(|id| self.as_info(*id))
    }

    /// The AS a speaker belongs to.
    pub fn as_of_speaker(&self, sp: SpeakerId) -> Option<AsId> {
        self.speaker_index.get(&sp).copied()
    }

    /// The city a router sits in.
    pub fn city_of_router(&self, sp: SpeakerId) -> Option<CityId> {
        self.router_city.get(&sp).copied()
    }

    /// Iterates over all ASes.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.ases.iter()
    }

    /// ASes of a given type in a given region.
    pub fn ases_of(&self, ty: AsType, region: Region) -> Vec<&AsInfo> {
        self.ases
            .iter()
            .filter(|a| a.ty == ty && a.region == region)
            .collect()
    }

    /// Great-circle km between two cities.
    pub fn city_km(a: CityId, b: CityId) -> f64 {
        city(a).location.distance_km(&city(b).location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vns_geo::cities::city_by_name;

    fn test_as(id: u32, asn: u32, speaker: Option<SpeakerId>, city_name: &str) -> AsInfo {
        let (cid, _) = city_by_name(city_name).unwrap();
        AsInfo {
            id: AsId(id),
            asn: Asn(asn),
            ty: AsType::Stp,
            region: Region::Europe,
            home_city: cid,
            presence: vec![cid],
            speaker,
            routers: speaker.map(|s| (cid, s)).into_iter().collect(),
            prefixes: vec![],
            dedicated: false,
            igp: None,
        }
    }

    #[test]
    fn registry_roundtrip() {
        let mut net = Internet::new();
        let sp = net.alloc_speaker_id();
        let id = net.add_as(test_as(0, 100, Some(sp), "Amsterdam"));
        assert_eq!(net.as_count(), 1);
        assert_eq!(net.as_info(id).asn, Asn(100));
        assert_eq!(net.as_by_asn(Asn(100)).unwrap().id, id);
        assert_eq!(net.as_of_speaker(sp), Some(id));
        assert_eq!(
            net.city_of_router(sp),
            Some(city_by_name("Amsterdam").unwrap().0)
        );
    }

    #[test]
    fn link_geometry_bidirectional() {
        let mut net = Internet::new();
        let a = net.alloc_speaker_id();
        let b = net.alloc_speaker_id();
        let (ams, _) = city_by_name("Amsterdam").unwrap();
        let (lon, _) = city_by_name("London").unwrap();
        net.record_link(a, ams, b, lon);
        assert_eq!(net.links_between(a, b), &[(ams, lon)]);
        assert_eq!(net.links_between(b, a), &[(lon, ams)]);
        assert!(net.links_between(a, a).is_empty());
    }

    #[test]
    fn prefix_lookup_longest_match() {
        let mut net = Internet::new();
        let sp = net.alloc_speaker_id();
        let as_id = net.add_as(test_as(0, 100, Some(sp), "Amsterdam"));
        let (cid, c) = city_by_name("Amsterdam").unwrap();
        let p8: Prefix = "10.0.0.0/8".parse().unwrap();
        let p16: Prefix = "10.1.0.0/16".parse().unwrap();
        for p in [p8, p16] {
            net.add_prefix(
                PrefixInfo {
                    prefix: p,
                    origin: as_id,
                    city: cid,
                    location: c.location,
                    last_mile: true,
                    anycast: false,
                },
                "NL",
                c.location,
            );
        }
        assert_eq!(net.lookup_prefix(0x0a010001).unwrap().prefix, p16);
        assert_eq!(net.lookup_prefix(0x0aff0001).unwrap().prefix, p8);
        assert!(net.lookup_prefix(0x0b000001).is_none());
        assert_eq!(net.geoip.len(), 2);
    }

    #[test]
    fn id_minting_unique() {
        let mut net = Internet::new();
        let ids: Vec<_> = (0..10).map(|_| net.alloc_speaker_id()).collect();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 10);
        assert_ne!(net.alloc_asn(), net.alloc_asn());
    }
}
