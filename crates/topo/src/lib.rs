//! Synthetic Internet topology: the substrate the paper's production
//! deployment ran on top of.
//!
//! The paper measures VNS against "the Internet": Tier-1 transit providers,
//! regional ISPs, content/access networks and enterprises, interconnected by
//! transit contracts and IXP peering, with prefixes scattered over the
//! globe. This crate generates a scaled-down but structurally faithful
//! replica:
//!
//! * ASes of the four Dhamdhere–Dovrolis classes the paper's last-mile
//!   study uses ([`AsType`]: LTP, STP, CAHP, EC), each with geographic
//!   presence in real cities;
//! * valley-free transit/peering links bound to interconnection cities,
//!   with hot-potato exit modelling at both the routing and data planes;
//! * prefixes with ground-truth locations and a GeoIP view that can carry
//!   the error patterns the paper documents;
//! * per-link loss/delay profiles: regional congestion with diurnal
//!   shapes, bursty convergence blackouts, and last-mile profiles per
//!   (AS type, region) — the knobs behind Figs 9–12 and Table 1;
//! * data-plane path resolution ([`path`]) that expands a BGP forwarding
//!   decision into concrete hops, and a [`channels`] factory that turns a
//!   resolved path into a `vns-netsim` `PathChannel` probes and media
//!   streams can use.
//!
//! `vns-core` plugs the VNS overlay into this Internet: it registers its
//! border routers, dedicated L2 links and IGP with the same [`Internet`]
//! structure, so one resolver handles paths that traverse both worlds.

pub mod astype;
pub mod channels;
pub mod config;
pub mod gen;
pub mod internet;
pub mod path;

pub use astype::AsType;
pub use channels::{CalibrationConfig, ChannelFactory};
pub use config::TopoConfig;
pub use gen::generate;
pub use internet::{AsId, AsInfo, Internet, PrefixInfo};
pub use path::{HopKind, ResolvedHop, ResolvedPath};
