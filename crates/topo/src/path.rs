//! Data-plane path resolution.
//!
//! Given a converged control plane, this module expands a (source router,
//! entry city, destination IP) triple into the concrete sequence of hops a
//! packet crosses:
//!
//! * at each speaker the destination is matched against its Loc-RIB
//!   (longest prefix first, so VNS-internal more-specifics injected by the
//!   management interface steer correctly);
//! * an eBGP step hauls the packet across the current AS from its entry
//!   city to the hot-potato-chosen interconnect city, then over the
//!   cross-connect;
//! * an iBGP step walks the AS's IGP shortest path towards the egress
//!   border router, emitting one hop per internal link (VNS's dedicated L2
//!   topology is followed link by link, so delay reflects the real cluster
//!   routing, e.g. Amsterdam→Sydney via Singapore);
//! * at the origin AS the packet hauls to the prefix's city and crosses
//!   the last mile.

use vns_bgp::{Asn, PathError, RouteSource, SpeakerId};
use vns_geo::{CityId, Region};

use crate::astype::AsType;
use crate::internet::Internet;

/// What kind of infrastructure a hop crosses (selects its loss/delay
/// profile).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HopKind {
    /// A haul inside one AS between two of its cities.
    IntraAs {
        /// The AS.
        asn: Asn,
        /// Its type.
        ty: AsType,
        /// Region whose congestion clock this hop follows (region of the
        /// hop's *destination* city).
        region: Region,
        /// True on well-provisioned dedicated infrastructure (VNS L2).
        dedicated: bool,
    },
    /// A cross-connect between two ASes (IXP port / private interconnect).
    InterAs {
        /// Region of the interconnect.
        region: Region,
    },
    /// The access segment from the origin AS's aggregation point to the
    /// destination host.
    LastMile {
        /// Destination AS type.
        ty: AsType,
        /// Destination region.
        region: Region,
    },
}

/// One resolved hop.
#[derive(Debug, Clone)]
pub struct ResolvedHop {
    /// Profile selector.
    pub kind: HopKind,
    /// Start city.
    pub from_city: CityId,
    /// End city.
    pub to_city: CityId,
    /// Great-circle length, km.
    pub km: f64,
    /// Diagnostic label, stable across flows on the same hop (shared
    /// blackout schedules key on it).
    pub label: String,
}

/// A fully resolved path.
#[derive(Debug, Clone)]
pub struct ResolvedPath {
    /// Hops in order.
    pub hops: Vec<ResolvedHop>,
    /// Routers whose Loc-RIBs were consulted (diagnostics; first is the
    /// source).
    pub routers: Vec<SpeakerId>,
}

impl ResolvedPath {
    /// Total great-circle length, km.
    pub fn total_km(&self) -> f64 {
        self.hops.iter().map(|h| h.km).sum()
    }

    /// Number of distinct ASes crossed (IntraAs hop AS changes + 1-ish;
    /// diagnostics only).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The same path traversed in the opposite direction (echo replies,
    /// return media legs). Hop labels are preserved so direction pairs
    /// share blackout schedules — a convergence event takes out both
    /// directions, as in reality.
    pub fn reversed(&self) -> ResolvedPath {
        let hops = self
            .hops
            .iter()
            .rev()
            .map(|h| ResolvedHop {
                kind: h.kind,
                from_city: h.to_city,
                to_city: h.from_city,
                km: h.km,
                label: h.label.clone(),
            })
            .collect();
        let routers = self.routers.iter().rev().copied().collect();
        ResolvedPath { hops, routers }
    }
}

/// Speed factor applied to intra-AS hauls of AS-granularity networks whose
/// internal topology we don't model: real paths are not great circles.
const EXTERNAL_PATH_INFLATION: f64 = 1.3;

/// Resolves the path from `start` (a BGP speaker: an external AS or a VNS
/// router), entering that AS at `entry_city`, towards `dst_ip`.
///
/// `include_last_mile` is normally true; probes to VNS-internal
/// infrastructure addresses (echo servers inside PoPs) resolve with the
/// prefix's own `last_mile` flag anyway, so this is the default behaviour
/// knob for tests.
pub fn resolve_path(
    internet: &Internet,
    start: SpeakerId,
    entry_city: CityId,
    dst_ip: u32,
) -> Result<ResolvedPath, PathError> {
    let mut hops: Vec<ResolvedHop> = Vec::new();
    let mut routers = vec![start];
    let mut cur = start;
    let mut cur_city = entry_city;
    // Longest-match ceiling: lowered when we fall through a locally
    // injected steering more-specific onto its covering route.
    let mut max_len: Option<u8> = None;

    for _ in 0..64 {
        let speaker = internet
            .net
            .speaker(cur)
            .ok_or(PathError::NoSuchSpeaker(cur))?;
        let (matched, cand) = speaker
            .lookup_up_to(dst_ip, max_len)
            .ok_or(PathError::NoRoute(cur))?;
        let cur_as = internet
            .as_of_speaker(cur)
            .ok_or(PathError::NoSuchSpeaker(cur))?;
        let cur_info = internet.as_info(cur_as);

        match cand.source {
            RouteSource::Local => {
                let Some(pinfo) = internet.lookup_prefix(dst_ip) else {
                    // Locally originated but unregistered (pure control-
                    // plane prefixes): terminate at the current city.
                    return Ok(ResolvedPath { hops, routers });
                };
                if pinfo.origin != cur_as {
                    // This speaker locally injects a steering more-specific
                    // for someone else's prefix (the management interface's
                    // Sec 3.2 mechanism). It resolves the injected route
                    // over its *own external* route to the covering prefix
                    // ("given that it has a route to the less-specific
                    // prefix") — using the AS-wide best would bounce the
                    // traffic straight back to another PoP.
                    if matched.len() == 0 {
                        return Err(PathError::NoRoute(cur));
                    }
                    let covering = speaker
                        .lookup_up_to(dst_ip, Some(matched.len()))
                        .map(|(p, _)| p)
                        .ok_or(PathError::NoRoute(cur))?;
                    if let Some(ext) = speaker.best_external_route(&covering) {
                        if let RouteSource::Ebgp { peer, .. } = ext.source {
                            let links = internet.links_between(cur, peer);
                            let (near, far) = links
                                .iter()
                                .copied()
                                .min_by(|(a, _), (b, _)| {
                                    Internet::city_km(cur_city, *a)
                                        .total_cmp(&Internet::city_km(cur_city, *b))
                                })
                                .ok_or(PathError::NoRoute(cur))?;
                            if near != cur_city {
                                hops.push(intra_hop(internet, cur_info, cur_city, near));
                            }
                            hops.push(ResolvedHop {
                                kind: HopKind::InterAs {
                                    region: vns_geo::city(far).region,
                                },
                                from_city: near,
                                to_city: far,
                                km: Internet::city_km(near, far).max(1.0),
                                label: format!(
                                    "ix:{}:{}@{}",
                                    cur_info.asn,
                                    peer,
                                    vns_geo::city(far).name
                                ),
                            });
                            if routers.contains(&peer) {
                                return Err(PathError::ForwardingLoop);
                            }
                            routers.push(peer);
                            cur = peer;
                            cur_city = far;
                            max_len = None;
                            continue;
                        }
                    }
                    // No external route of its own: fall through onto the
                    // covering route (loop detection catches pathologies).
                    max_len = Some(matched.len());
                    continue;
                }
                if pinfo.anycast {
                    // Anycast: the service instance is wherever the route
                    // led — terminate here.
                    return Ok(ResolvedPath { hops, routers });
                }
                // Arrived at the origin AS: haul to the prefix city, then
                // the last mile.
                if pinfo.city != cur_city {
                    hops.push(intra_hop(internet, cur_info, cur_city, pinfo.city));
                }
                if pinfo.last_mile {
                    let region = vns_geo::city(pinfo.city).region;
                    hops.push(ResolvedHop {
                        kind: HopKind::LastMile {
                            ty: cur_info.ty,
                            region,
                        },
                        from_city: pinfo.city,
                        to_city: pinfo.city,
                        km: 30.0,
                        label: format!("lastmile:{}:{}", cur_info.asn, pinfo.prefix),
                    });
                }
                return Ok(ResolvedPath { hops, routers });
            }
            RouteSource::Ebgp { peer, .. } => {
                // Hot-potato link choice among parallel interconnects.
                let links = internet.links_between(cur, peer);
                let (near, far) = links
                    .iter()
                    .copied()
                    .min_by(|(a, _), (b, _)| {
                        let da = Internet::city_km(cur_city, *a);
                        let db = Internet::city_km(cur_city, *b);
                        da.total_cmp(&db)
                    })
                    .ok_or(PathError::NoRoute(cur))?;
                if near != cur_city {
                    hops.push(intra_hop(internet, cur_info, cur_city, near));
                }
                let ix_region = vns_geo::city(far).region;
                hops.push(ResolvedHop {
                    kind: HopKind::InterAs { region: ix_region },
                    from_city: near,
                    to_city: far,
                    km: Internet::city_km(near, far).max(1.0),
                    label: format!("ix:{}:{}@{}", cur_info.asn, peer, vns_geo::city(far).name),
                });
                if routers.contains(&peer) {
                    return Err(PathError::ForwardingLoop);
                }
                routers.push(peer);
                cur = peer;
                cur_city = far;
                max_len = None;
            }
            RouteSource::Ibgp { .. } => {
                // Walk the IGP towards the egress border router, one
                // internal link per hop.
                let nh = cand.attrs.next_hop;
                if nh == cur || routers.contains(&nh) {
                    return Err(PathError::ForwardingLoop);
                }
                let igp = cur_info.igp.as_ref().ok_or(PathError::NoRoute(cur))?;
                let walk = igp.shortest_path(cur, nh).ok_or(PathError::NoRoute(cur))?;
                let mut city_cursor = cur_city;
                for w in walk.windows(2) {
                    let to_city = internet
                        .city_of_router(w[1])
                        .ok_or(PathError::NoSuchSpeaker(w[1]))?;
                    if to_city != city_cursor {
                        hops.push(backbone_hop(cur_info, city_cursor, to_city));
                        city_cursor = to_city;
                    }
                    // Record every router the IGP walk crosses, so the
                    // router sequence mirrors the physical circuit chain
                    // (per-circuit load attribution depends on it).
                    routers.push(w[1]);
                }
                cur = nh;
                cur_city = city_cursor;
                max_len = None;
            }
        }
    }
    Err(PathError::ForwardingLoop)
}

/// Resolves a path that starts at a *host* inside `src_prefix` (the host's
/// last mile is crossed first, then its origin AS forwards).
pub fn resolve_from_prefix(
    internet: &Internet,
    src_prefix_ip: u32,
    dst_ip: u32,
) -> Result<ResolvedPath, PathError> {
    let pinfo = internet
        .lookup_prefix(src_prefix_ip)
        .ok_or(PathError::NoRoute(SpeakerId(0)))?;
    let origin = internet.as_info(pinfo.origin);
    let speaker = internet
        .router_of(pinfo.origin, pinfo.city)
        .ok_or(PathError::NoSuchSpeaker(SpeakerId(0)))?;
    let mut first_hops = Vec::new();
    if pinfo.last_mile {
        let region = vns_geo::city(pinfo.city).region;
        first_hops.push(ResolvedHop {
            kind: HopKind::LastMile {
                ty: origin.ty,
                region,
            },
            from_city: pinfo.city,
            to_city: pinfo.city,
            km: 30.0,
            label: format!("lastmile:{}:{}", origin.asn, pinfo.prefix),
        });
    }
    let mut rest = resolve_path(internet, speaker, pinfo.city, dst_ip)?;
    first_hops.append(&mut rest.hops);
    Ok(ResolvedPath {
        hops: first_hops,
        routers: rest.routers,
    })
}

/// An intra-AS haul on shared (non-dedicated) infrastructure.
fn intra_hop(
    _internet: &Internet,
    info: &crate::internet::AsInfo,
    from: CityId,
    to: CityId,
) -> ResolvedHop {
    let km = Internet::city_km(from, to) * EXTERNAL_PATH_INFLATION;
    ResolvedHop {
        kind: HopKind::IntraAs {
            asn: info.asn,
            ty: info.ty,
            region: vns_geo::city(to).region,
            dedicated: info.dedicated,
        },
        from_city: from,
        to_city: to,
        km,
        label: format!(
            "intra:{}:{}->{}",
            info.asn,
            vns_geo::city(from).name,
            vns_geo::city(to).name
        ),
    }
}

/// One backbone link inside a multi-router AS. For VNS these are the
/// dedicated leased wavelengths (no inflation, near-lossless profile); for
/// a Tier-1's backbone they are shared circuits.
fn backbone_hop(info: &crate::internet::AsInfo, from: CityId, to: CityId) -> ResolvedHop {
    let inflation = if info.dedicated { 1.0 } else { 1.15 };
    ResolvedHop {
        kind: HopKind::IntraAs {
            asn: info.asn,
            ty: info.ty,
            region: vns_geo::city(to).region,
            dedicated: info.dedicated,
        },
        from_city: from,
        to_city: to,
        km: Internet::city_km(from, to) * inflation,
        label: format!(
            "{}:{}:{}->{}",
            if info.dedicated { "l2" } else { "bb" },
            info.asn,
            vns_geo::city(from).name,
            vns_geo::city(to).name
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopoConfig;
    use crate::gen::generate;

    #[test]
    fn resolves_paths_between_generated_prefixes() {
        let internet = generate(&TopoConfig::tiny(7)).expect("generation succeeds");
        let prefixes: Vec<u32> = internet.prefixes().map(|p| p.prefix.first_host()).collect();
        assert!(prefixes.len() > 20);
        // Resolve a batch of host-to-host paths; all must terminate.
        let mut resolved = 0;
        for (i, &src) in prefixes.iter().enumerate().take(20) {
            let dst = prefixes[(i * 7 + 13) % prefixes.len()];
            if src == dst {
                continue;
            }
            let path = resolve_from_prefix(&internet, src, dst).expect("path resolves");
            assert!(!path.hops.is_empty());
            // Both endpoints' last miles must be present.
            let lm = path
                .hops
                .iter()
                .filter(|h| matches!(h.kind, HopKind::LastMile { .. }))
                .count();
            assert_eq!(lm, 2, "src and dst last miles");
            resolved += 1;
        }
        assert!(resolved >= 15);
    }

    #[test]
    fn paths_have_sane_lengths() {
        let internet = generate(&TopoConfig::tiny(8)).expect("generation succeeds");
        let prefixes: Vec<&crate::internet::PrefixInfo> = internet.prefixes().collect();
        let far_pair = prefixes
            .iter()
            .flat_map(|a| prefixes.iter().map(move |b| (a, b)))
            .max_by(|(a1, b1), (a2, b2)| {
                let d1 = a1.location.distance_km(&b1.location);
                let d2 = a2.location.distance_km(&b2.location);
                d1.partial_cmp(&d2).unwrap()
            })
            .unwrap();
        let (a, b) = far_pair;
        let gc = a.location.distance_km(&b.location);
        let path =
            resolve_from_prefix(&internet, a.prefix.first_host(), b.prefix.first_host()).unwrap();
        // The routed path can't be shorter than ~the great circle and
        // shouldn't exceed a generous stretch bound.
        assert!(
            path.total_km() >= gc * 0.6,
            "path {} vs gc {}",
            path.total_km(),
            gc
        );
        assert!(path.total_km() <= gc * 4.0 + 4000.0);
    }
}
