//! From resolved paths to live channels: loss/delay profile assignment.
//!
//! This is where the paper's measured world is encoded as model parameters.
//! The calibration targets (see EXPERIMENTS.md for the fit):
//!
//! * **Dedicated VNS hops** — near-lossless: the paper sees zero loss
//!   intra-region and <0.01% residual cross-region (L2 circuits are
//!   multiplexed at a lower layer, so a tiny residual remains).
//! * **Shared transit hauls** — a small random baseline plus congestion
//!   loss whose diurnal clock is the hop's local time; the AP region runs
//!   hot (its local peak dominates everything routed through it — Fig 12),
//!   EU runs coolest, NA in between. Long hauls accumulate more loss
//!   (more internal hops), scaled by distance.
//! * **Convergence blackouts** — Poisson windows shared by every flow on a
//!   hop (Fig 10's bursty outliers).
//! * **Last miles** — per (AS type, region) mean-loss targets derived from
//!   Table 1: CAHPs are residential-congested (evening peak), ECs peak in
//!   business hours, LTP/STP edges are cleaner; NA is flat across types
//!   because LTPs there also serve residences.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_geo::{city, Region};
use vns_netsim::{
    BlackoutSchedule, DelaySampler, DiurnalProfile, Dur, FaultGenerator, HopChannel, LossModel,
    LossProcess, PathChannel, RngTree, SimTime,
};

use crate::astype::AsType;
use crate::path::{HopKind, ResolvedHop, ResolvedPath};

use vns_netsim::diurnal::DiurnalShape;

/// Regional shared-transit congestion parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransitProfile {
    /// Off-peak utilisation.
    pub base_util: f64,
    /// Peak add-on.
    pub amplitude: f64,
    /// Loss knee.
    pub knee: f64,
    /// Target long-run mean congestion loss per 4000 km of haul
    /// (fraction); the peak probability is derived from it.
    pub mean_per_4000km: f64,
    /// Random loss floor per 4000 km of haul (fraction).
    pub bernoulli_per_4000km: f64,
    /// Cap on the per-window loss probability (how bad a congested
    /// five-minute window can get on this region's hauls).
    pub window_cap: f64,
}

/// All tunable numbers.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Shared-transit profile per region.
    pub transit_eu: TransitProfile,
    /// See [`CalibrationConfig::transit_eu`].
    pub transit_na: TransitProfile,
    /// See [`CalibrationConfig::transit_eu`].
    pub transit_ap: TransitProfile,
    /// Profile for the remaining regions (OC/SA/ME/AF).
    pub transit_rest: TransitProfile,
    /// Random loss on a dedicated (VNS) L2 hop.
    pub dedicated_bernoulli: f64,
    /// Bursty residual on dedicated hops (lower-layer multiplexing):
    /// long-run rate.
    pub dedicated_burst_rate: f64,
    /// Convergence blackout events per day on each shared haul.
    pub blackout_events_per_day: f64,
    /// Blackout horizon (schedules are generated once per hop for this
    /// span).
    pub blackout_horizon: Dur,
    /// Mean last-mile loss targets, `[region][type]` with regions
    /// EU/NA/AP/rest and types LTP/STP/CAHP/EC, as *fractions*.
    pub last_mile_targets: [[f64; 4]; 4],
    /// Short-term congestion fluctuation (lognormal sigma).
    pub fluctuation_sigma: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            // Transit runs below the knee deterministically; loss happens
            // when a five-minute lognormal fluctuation window pushes a haul
            // over it. With sigma 0.35 and knee 0.80 the knee-crossing
            // probability is ~1.6% at utilisation 0.40, ~6% at 0.50, ~16%
            // at 0.60, ~29% at 0.70 — these levels set how often streams
            // meet a congested window (Fig 9's exceedance fractions).
            transit_eu: TransitProfile {
                base_util: 0.35,
                amplitude: 0.12,
                knee: 0.80,
                mean_per_4000km: 0.00010,
                bernoulli_per_4000km: 1.5e-5,
                window_cap: 0.04,
            },
            // NA a bit hotter.
            transit_na: TransitProfile {
                base_util: 0.40,
                amplitude: 0.12,
                knee: 0.80,
                mean_per_4000km: 0.00028,
                bernoulli_per_4000km: 2.5e-5,
                window_cap: 0.05,
            },
            // AP runs hot around the clock (its trough still crosses the
            // knee ~6% of windows), and its *local* business day dominates
            // — Fig 12's masking effect.
            transit_ap: TransitProfile {
                base_util: 0.45,
                amplitude: 0.18,
                knee: 0.80,
                mean_per_4000km: 0.00180,
                bernoulli_per_4000km: 6e-5,
                window_cap: 0.12,
            },
            transit_rest: TransitProfile {
                base_util: 0.54,
                amplitude: 0.24,
                knee: 0.80,
                mean_per_4000km: 0.00200,
                bernoulli_per_4000km: 5e-5,
                window_cap: 0.12,
            },
            dedicated_bernoulli: 8e-6,
            dedicated_burst_rate: 2e-6,
            blackout_events_per_day: 4.0,
            blackout_horizon: Dur::from_days(30),
            // Means as fractions: rows EU, NA, AP, rest; cols LTP, STP,
            // CAHP, EC. Derived from Table 1 minus the transit component.
            // One-way means; a ping round trip crosses the last mile
            // twice, so the measured Table 1 values are ~2x these plus
            // transit.
            last_mile_targets: [
                [0.0003, 0.0027, 0.0073, 0.0023], // EU
                [0.0018, 0.0015, 0.0015, 0.0018], // NA (flat; LTPs serve homes)
                [0.0002, 0.0017, 0.0044, 0.0028], // AP
                [0.0004, 0.0022, 0.0050, 0.0032], // OC/SA/ME/AF
            ],
            fluctuation_sigma: 0.35,
        }
    }
}

impl CalibrationConfig {
    /// Transit profile for a region.
    pub fn transit(&self, region: Region) -> TransitProfile {
        match region {
            Region::Europe => self.transit_eu,
            Region::NorthAmerica => self.transit_na,
            Region::AsiaPacific => self.transit_ap,
            _ => self.transit_rest,
        }
    }

    /// Mean last-mile loss target.
    pub fn last_mile_target(&self, ty: AsType, region: Region) -> f64 {
        let r = match region {
            Region::Europe => 0,
            Region::NorthAmerica => 1,
            Region::AsiaPacific => 2,
            _ => 3,
        };
        let t = match ty {
            AsType::Ltp => 0,
            AsType::Stp => 1,
            AsType::Cahp => 2,
            AsType::Ec => 3,
        };
        self.last_mile_targets[r][t]
    }
}

/// The diurnal shape a last mile of the given AS type follows.
fn last_mile_shape(ty: AsType) -> DiurnalShape {
    match ty {
        AsType::Cahp => DiurnalShape::Residential,
        AsType::Ec => DiurnalShape::Business,
        AsType::Ltp | AsType::Stp => DiurnalShape::Mixed,
    }
}

/// Clamps a congestion model's peak window probability.
fn cap_max_p(model: LossModel, cap: f64) -> LossModel {
    match model {
        LossModel::Congestion {
            profile,
            knee,
            max_p,
            fluctuation_sigma,
        } => LossModel::Congestion {
            profile,
            knee,
            max_p: max_p.min(cap),
            fluctuation_sigma,
        },
        other => other,
    }
}

/// Builds a congestion model whose long-run mean equals `target` by scaling
/// `max_p` (the mean is linear in `max_p`).
fn congestion_with_mean(
    target: f64,
    shape: DiurnalShape,
    base: f64,
    amplitude: f64,
    knee: f64,
    utc_offset: f64,
    sigma: f64,
) -> LossModel {
    // mean_rate integrates over both the diurnal curve and the lognormal
    // fluctuation, and is linear in max_p — so one probe evaluation
    // calibrates the peak probability exactly.
    let probe = LossModel::Congestion {
        profile: DiurnalProfile::new(shape, base, amplitude, utc_offset),
        knee,
        max_p: 1.0,
        fluctuation_sigma: sigma,
    };
    let unit_mean = probe.mean_rate();
    let max_p = if unit_mean > 0.0 {
        (target / unit_mean).min(1.0)
    } else {
        0.0
    };
    LossModel::Congestion {
        profile: DiurnalProfile::new(shape, base, amplitude, utc_offset),
        knee,
        max_p,
        fluctuation_sigma: sigma,
    }
}

/// Builds [`PathChannel`]s from resolved paths, caching per-hop blackout
/// schedules so concurrent flows see the same outage windows.
///
/// Every schedule and seed is derived from the factory's [`RngTree`] by
/// label, never from call order — so [`ChannelFactory::channel`] takes
/// `&self` and can be called from campaign worker threads concurrently
/// with byte-identical results at any thread count. The blackout cache is
/// pure memoization behind a [`Mutex`]; a cache hit and a recomputation
/// return the same schedule.
#[derive(Debug)]
pub struct ChannelFactory {
    config: CalibrationConfig,
    rng: RngTree,
    blackout_cache: Mutex<BTreeMap<String, BlackoutSchedule>>,
}

impl ChannelFactory {
    /// Creates a factory. `rng` should be a dedicated subtree (e.g.
    /// `tree.subtree("channels")`).
    pub fn new(config: CalibrationConfig, rng: RngTree) -> Self {
        Self {
            config,
            rng,
            blackout_cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of hop blackout schedules memoized so far (diagnostics).
    pub fn cached_blackout_schedules(&self) -> usize {
        // The cache is a pure memo of deterministic schedules — always
        // valid, so recover from poisoning rather than cascading a
        // worker's panic into misleading poisoned-lock aborts under par_map.
        self.blackout_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Configuration access.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    /// The shared-haul loss model for a hop of `km` between two regions.
    ///
    /// Cross-region hauls take the *milder* endpoint profile: submarine
    /// long-haul systems are managed point-to-point capacity, and the
    /// congestion the paper measures lives in domestic aggregation — which
    /// is also why its SJS vantage reaches AP destinations about as well
    /// as AP's own PoPs do (Sec 5.2.2).
    fn transit_model(&self, from: Region, to: Region, km: f64, mid_offset: f64) -> LossModel {
        let a = self.config.transit(from);
        let b = self.config.transit(to);
        // Regions with scarce international capacity (OC/SA/ME/AF) keep
        // their hot profile on any haul touching them. The EU<->AP route
        // (Suez/overland) was congested in the measurement era, so it takes
        // the heavier AP profile; the trans-Pacific and trans-Atlantic
        // systems were premium capacity, so those hauls take the milder
        // endpoint — which is why the paper's SJS vantage reaches AP about
        // as well as AP's own PoPs, and NA->EU looks like EU->EU.
        let rest_group = |r: Region| {
            !matches!(
                r,
                Region::Europe | Region::NorthAmerica | Region::AsiaPacific
            )
        };
        let eu_ap = |x: Region, y: Region| {
            matches!(
                (x, y),
                (Region::Europe, Region::AsiaPacific) | (Region::AsiaPacific, Region::Europe)
            )
        };
        let t = if rest_group(from) || rest_group(to) {
            self.config.transit_rest
        } else if eu_ap(from, to) {
            self.config.transit_ap
        } else if a.base_util + a.amplitude <= b.base_util + b.amplitude {
            a
        } else {
            b
        };
        let spans = 0.5 + (km / 4000.0);
        LossModel::Composite(vec![
            LossModel::Bernoulli {
                p: (t.bernoulli_per_4000km * spans).min(0.01),
            },
            cap_max_p(
                congestion_with_mean(
                    (t.mean_per_4000km * spans).min(0.05),
                    DiurnalShape::Mixed,
                    t.base_util,
                    t.amplitude,
                    t.knee,
                    mid_offset,
                    self.config.fluctuation_sigma,
                ),
                // Sustained transit congestion tops out at several
                // percent even in a terrible five-minute window (Fig 10's
                // upper-right outliers reach ~5–10% per stream, not 50%).
                t.window_cap,
            ),
        ])
    }

    /// The loss model for one hop (public for calibration tests).
    pub fn loss_model(&self, hop: &ResolvedHop) -> LossModel {
        let mid_offset = (city(hop.from_city).location.utc_offset_hours()
            + city(hop.to_city).location.utc_offset_hours())
            / 2.0;
        match hop.kind {
            HopKind::IntraAs {
                dedicated: true, ..
            } => LossModel::Composite(vec![
                LossModel::Bernoulli {
                    p: self.config.dedicated_bernoulli,
                },
                LossModel::bursty(self.config.dedicated_burst_rate, 0.15, 0.5),
            ]),
            HopKind::IntraAs { region, .. } => {
                self.transit_model(city(hop.from_city).region, region, hop.km, mid_offset)
            }
            // A very long "interconnect" is a leased backhaul port (the
            // London transit port landing in Ashburn): oversubscribed
            // bargain capacity — the scarce-capacity profile applies.
            HopKind::InterAs { .. } if hop.km > 2000.0 => {
                let t = self.config.transit_rest;
                let spans = 0.5 + (hop.km / 4000.0);
                LossModel::Composite(vec![
                    LossModel::Bernoulli {
                        p: (t.bernoulli_per_4000km * spans).min(0.01),
                    },
                    cap_max_p(
                        congestion_with_mean(
                            (t.mean_per_4000km * spans).min(0.05),
                            DiurnalShape::Mixed,
                            t.base_util,
                            t.amplitude,
                            t.knee,
                            mid_offset,
                            self.config.fluctuation_sigma,
                        ),
                        t.window_cap,
                    ),
                ])
            }
            // A medium "interconnect" is an access circuit: regional haul
            // profile.
            HopKind::InterAs { region } if hop.km > 500.0 => {
                self.transit_model(city(hop.from_city).region, region, hop.km, mid_offset)
            }
            HopKind::InterAs { .. } => LossModel::Bernoulli { p: 1e-5 },
            HopKind::LastMile { ty, region } => {
                let target = self.config.last_mile_target(ty, region);
                let offset = city(hop.to_city).location.utc_offset_hours();
                LossModel::Composite(vec![
                    // A fifth of the target is state-free random loss …
                    LossModel::Bernoulli { p: target * 0.2 },
                    // … the rest follows the type's diurnal congestion.
                    congestion_with_mean(
                        target * 0.8,
                        last_mile_shape(ty),
                        0.50,
                        0.42,
                        0.70,
                        offset,
                        self.config.fluctuation_sigma,
                    ),
                ])
            }
        }
    }

    /// The delay sampler for one hop.
    pub fn delay_sampler(&self, hop: &ResolvedHop) -> DelaySampler {
        let prop_ms = vns_geo::coords::propagation_delay_ms(hop.km);
        match hop.kind {
            HopKind::IntraAs {
                dedicated: true, ..
            } => {
                // Dedicated circuits: propagation + small switching margin.
                DelaySampler::fixed(prop_ms + 0.15)
            }
            HopKind::IntraAs { region, .. } => {
                let t = self.config.transit(region);
                let mid_offset = (city(hop.from_city).location.utc_offset_hours()
                    + city(hop.to_city).location.utc_offset_hours())
                    / 2.0;
                DelaySampler::contended(
                    prop_ms + 0.3,
                    DiurnalProfile::new(DiurnalShape::Mixed, t.base_util, t.amplitude, mid_offset),
                )
            }
            HopKind::InterAs { .. } => DelaySampler::fixed(prop_ms + 0.2),
            HopKind::LastMile { ty, .. } => {
                let offset = city(hop.to_city).location.utc_offset_hours();
                DelaySampler::contended(
                    3.0,
                    DiurnalProfile::new(last_mile_shape(ty), 0.5, 0.42, offset),
                )
            }
        }
    }

    /// Blackout schedule for a hop (cached by label: flows share outages).
    ///
    /// The schedule is a pure function of (factory seed, hop label); the
    /// cache only avoids regenerating it, so concurrent callers racing on
    /// the same label compute identical schedules either way.
    fn blackouts(&self, hop: &ResolvedHop) -> BlackoutSchedule {
        let subject_to_faults = matches!(
            hop.kind,
            HopKind::IntraAs {
                dedicated: false,
                ..
            }
        ) || (matches!(hop.kind, HopKind::InterAs { .. })
            && hop.km > 500.0);
        if !subject_to_faults || self.config.blackout_events_per_day <= 0.0 {
            return BlackoutSchedule::none();
        }
        // Pure memo: never invalid, so a panicked peer's poison is safe to
        // strip (see cached_blackout_schedules).
        let mut cache = self
            .blackout_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(s) = cache.get(&hop.label) {
            return s.clone();
        }
        let gen = FaultGenerator::convergence(self.config.blackout_events_per_day);
        let mut rng = self.rng.stream(&format!("blackout:{}", hop.label));
        let schedule = gen.generate(SimTime::EPOCH, self.config.blackout_horizon, &mut rng);
        cache.insert(hop.label.clone(), schedule.clone());
        schedule
    }

    /// Builds a per-flow channel for `path`. `flow_label` individualises
    /// the flow's loss-process state and delay draws; reusing a label
    /// reproduces the identical packet fate sequence.
    pub fn channel(&self, path: &ResolvedPath, flow_label: &str) -> PathChannel {
        self.channel_args(path, format_args!("{flow_label}"))
    }

    /// Like [`ChannelFactory::channel`], but takes the flow label as
    /// `format_args!` so campaign hot paths (one channel per probe) derive
    /// seeds without materialising a label `String`. Hash-compatible with
    /// the `&str` form: `channel_args(p, format_args!("x"))` ==
    /// `channel(p, "x")`.
    pub fn channel_args(&self, path: &ResolvedPath, flow_label: fmt::Arguments<'_>) -> PathChannel {
        let mut hops = Vec::with_capacity(path.hops.len());
        for (i, hop) in path.hops.iter().enumerate() {
            let model = self.loss_model(hop);
            let delay = self.delay_sampler(hop);
            let blackouts = self.blackouts(hop);
            let seed = self
                .rng
                .seed_for_args(format_args!("flow:{flow_label}:hop{i}:{}", hop.label));
            hops.push(HopChannel {
                loss: LossProcess::new(model, SmallRng::seed_from_u64(seed)),
                delay,
                blackouts,
                label: hop.label.clone(),
            });
        }
        let rng = self.rng.stream_args(format_args!("flowdelay:{flow_label}"));
        PathChannel::new(hops, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vns_bgp::Asn;
    use vns_geo::cities::city_by_name;

    fn hop(kind: HopKind, from: &str, to: &str, km: f64, label: &str) -> ResolvedHop {
        ResolvedHop {
            kind,
            from_city: city_by_name(from).unwrap().0,
            to_city: city_by_name(to).unwrap().0,
            km,
            label: label.to_string(),
        }
    }

    fn factory() -> ChannelFactory {
        ChannelFactory::new(CalibrationConfig::default(), RngTree::new(42).subtree("ch"))
    }

    #[test]
    fn dedicated_hops_nearly_lossless() {
        let f = factory();
        let h = hop(
            HopKind::IntraAs {
                asn: Asn(1),
                ty: AsType::Stp,
                region: Region::Europe,
                dedicated: true,
            },
            "Amsterdam",
            "London",
            360.0,
            "l2",
        );
        let rate = f.loss_model(&h).mean_rate();
        assert!(rate < 1e-4, "dedicated rate {rate}");
    }

    #[test]
    fn ap_transit_lossier_than_eu() {
        let f = factory();
        let eu = hop(
            HopKind::IntraAs {
                asn: Asn(1),
                ty: AsType::Ltp,
                region: Region::Europe,
                dedicated: false,
            },
            "Amsterdam",
            "Frankfurt",
            360.0,
            "eu",
        );
        let ap = hop(
            HopKind::IntraAs {
                asn: Asn(1),
                ty: AsType::Ltp,
                region: Region::AsiaPacific,
                dedicated: false,
            },
            "Singapore",
            "HongKong",
            2600.0,
            "ap",
        );
        let eu_rate = f.loss_model(&eu).mean_rate();
        let ap_rate = f.loss_model(&ap).mean_rate();
        assert!(
            ap_rate > 3.0 * eu_rate,
            "AP {ap_rate} should dwarf EU {eu_rate}"
        );
    }

    #[test]
    fn longer_hauls_lose_more() {
        let f = factory();
        let mk = |km| {
            hop(
                HopKind::IntraAs {
                    asn: Asn(1),
                    ty: AsType::Ltp,
                    region: Region::NorthAmerica,
                    dedicated: false,
                },
                "NewYork",
                "LosAngeles",
                km,
                "na",
            )
        };
        assert!(
            f.loss_model(&mk(8000.0)).mean_rate() > 1.5 * f.loss_model(&mk(1000.0)).mean_rate()
        );
    }

    #[test]
    fn last_mile_means_match_targets() {
        let f = factory();
        let cfg = CalibrationConfig::default();
        for (ty, region, cname) in [
            (AsType::Cahp, Region::AsiaPacific, "Singapore"),
            (AsType::Ltp, Region::Europe, "Amsterdam"),
            (AsType::Ec, Region::NorthAmerica, "Atlanta"),
        ] {
            let h = hop(HopKind::LastMile { ty, region }, cname, cname, 30.0, "lm");
            let target = cfg.last_mile_target(ty, region);
            let got = f.loss_model(&h).mean_rate();
            assert!(
                (got - target).abs() / target < 0.25,
                "{ty} {region}: target {target}, got {got}"
            );
        }
    }

    #[test]
    fn table1_ordering_holds_in_targets() {
        // AP & EU: CAHP > EC > STP > LTP; NA: roughly flat.
        let cfg = CalibrationConfig::default();
        for region in [Region::AsiaPacific, Region::Europe] {
            let lm = |t| cfg.last_mile_target(t, region);
            assert!(lm(AsType::Cahp) > lm(AsType::Ec), "{region}");
            assert!(lm(AsType::Ec) > lm(AsType::Ltp), "{region}");
            assert!(lm(AsType::Stp) > lm(AsType::Ltp), "{region}");
        }
        let na: Vec<f64> = AsType::ALL
            .iter()
            .map(|t| cfg.last_mile_target(*t, Region::NorthAmerica))
            .collect();
        let spread = na.iter().cloned().fold(f64::MIN, f64::max)
            / na.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.5, "NA should be flat, spread {spread}");
    }

    #[test]
    fn blackout_schedules_shared_across_flows() {
        let f = factory();
        let h = hop(
            HopKind::IntraAs {
                asn: Asn(1),
                ty: AsType::Ltp,
                region: Region::Europe,
                dedicated: false,
            },
            "Amsterdam",
            "Frankfurt",
            360.0,
            "shared-haul",
        );
        let path = ResolvedPath {
            hops: vec![h],
            routers: vec![],
        };
        let a = f.channel(&path, "flow-a");
        let b = f.channel(&path, "flow-b");
        // Same hop label -> same blackout schedule object contents. Verify
        // indirectly: both channels have one hop and identical base delay.
        assert_eq!(a.hop_count(), 1);
        assert_eq!(a.base_delay_ms(), b.base_delay_ms());
        assert_eq!(f.cached_blackout_schedules(), 1);
    }

    #[test]
    fn channel_construction_deterministic() {
        let mk = || {
            let f = factory();
            let h = hop(
                HopKind::LastMile {
                    ty: AsType::Cahp,
                    region: Region::Europe,
                },
                "Amsterdam",
                "Amsterdam",
                30.0,
                "lm-x",
            );
            let path = ResolvedPath {
                hops: vec![h],
                routers: vec![],
            };
            let mut ch = f.channel(&path, "flow");
            let mut outcomes = Vec::new();
            for i in 0..2000u64 {
                let t = SimTime::EPOCH + Dur::from_secs(i * 40);
                outcomes.push(ch.send(t).delivered());
            }
            outcomes
        };
        assert_eq!(mk(), mk());
    }
}

#[cfg(test)]
mod blackout_tests {
    use super::*;
    use vns_bgp::Asn;
    use vns_geo::cities::city_by_name;

    #[test]
    fn faultable_hops_get_blackout_schedules() {
        let f = ChannelFactory::new(CalibrationConfig::default(), RngTree::new(7).subtree("ch"));
        let hop = ResolvedHop {
            kind: HopKind::IntraAs {
                asn: Asn(1),
                ty: AsType::Ltp,
                region: Region::NorthAmerica,
                dedicated: false,
            },
            from_city: city_by_name("NewYork").unwrap().0,
            to_city: city_by_name("Ashburn").unwrap().0,
            km: 455.0,
            label: "bb:test".into(),
        };
        let path = ResolvedPath {
            hops: vec![hop],
            routers: vec![],
        };
        let ch = f.channel(&path, "flow");
        let _ = ch;
        let sched = f
            .blackout_cache
            .lock()
            .unwrap()
            .get("bb:test")
            .expect("schedule cached")
            .clone();
        // 30-day horizon at 4 events/day: ~120 windows.
        assert!(
            (60..240).contains(&sched.len()),
            "blackout windows {}",
            sched.len()
        );
        // A dense packet train over 30 days must hit some of them.
        let mut ch = f.channel(&path, "flow2");
        let mut lost = 0;
        let mut t = SimTime::EPOCH;
        for _ in 0..(30 * 24 * 360) {
            if !ch.send(t).delivered() {
                lost += 1;
            }
            t += Dur::from_secs(10);
        }
        // Expected blackout hits alone: ~120 windows * 4.5 s / 10 s ≈ 54.
        assert!(lost > 30, "lost {lost}");
    }
}
