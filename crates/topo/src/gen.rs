//! The Internet generator.
//!
//! Builds an [`Internet`] with the structure the paper's measurements see:
//! a small clique of global Tier-1 LTPs, regional STPs hanging off them
//! (some AP providers with their own trans-Pacific legs), stub CAHPs and
//! ECs multihomed into the regional fabric, IXP-style peering inside
//! regions, prefixes placed in real cities, and a GeoIP database whose
//! error patterns match the ones the paper diagnosed.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use vns_bgp::{ConvergenceError, Policy, Prefix, Relation, Speaker};
use vns_geo::cities::{cities_in_region, city_by_name};
use vns_geo::{city, CityId, GeoIpErrorModel, GeoPoint, Region};
use vns_netsim::RngTree;

use crate::astype::AsType;
use crate::config::TopoConfig;
use crate::internet::{AsId, AsInfo, Internet, PrefixInfo};

/// Generation failure.
#[derive(Debug)]
pub enum GenError {
    /// BGP did not converge within the configured budget.
    Convergence(ConvergenceError),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::Convergence(e) => write!(f, "topology generation: {e}"),
        }
    }
}

impl std::error::Error for GenError {}

/// First /16 block handed to the prefix allocator (16.0.0.0).
const PREFIX_BASE: u32 = 0x1000_0000;

/// Generates an Internet per `config` and converges its control plane.
pub fn generate(config: &TopoConfig) -> Result<Internet, GenError> {
    let tree = RngTree::new(config.seed).subtree("topo");
    let mut internet = Internet::new();
    let mut next_block: u32 = 0;

    // --- 1. Create ASes -------------------------------------------------
    let hub_cities: Vec<CityId> = vns_geo::cities::CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| c.major_hub)
        .map(|(i, _)| CityId(i as u16))
        .collect();

    let mut rng = tree.stream("ases");
    let mut ltps: Vec<AsId> = Vec::new();
    for i in 0..config.ltps {
        // Spread LTP headquarters across the three big regions; the first
        // one is deliberately US-centric ("upstream 1 has a strong presence
        // in North America", Sec 4.2.2).
        let home_region = match i % 3 {
            0 => Region::NorthAmerica,
            1 => Region::Europe,
            _ => Region::AsiaPacific,
        };
        let home = *pick(&mut rng, &region_hubs(&hub_cities, home_region));
        // Global presence: most hubs, always the home.
        let mut presence: Vec<CityId> = hub_cities
            .iter()
            .copied()
            .filter(|c| *c == home || rng.gen_bool(0.85))
            .collect();
        if !presence.contains(&home) {
            presence.push(home);
        }
        ltps.push(create_ltp(&mut internet, city(home).region, home, presence));
    }

    let mut stps: Vec<AsId> = Vec::new();
    let mut cahps: Vec<AsId> = Vec::new();
    let mut ecs: Vec<AsId> = Vec::new();
    for region in Region::ALL {
        let region_cities = cities_in_region(region);
        let hubs = region_hubs(&hub_cities, region);
        for _ in 0..config.scaled_count(config.stps_per_region, region) {
            let home = *pick(&mut rng, &hubs);
            let mut presence = vec![home];
            for _ in 0..rng.gen_range(1..=3usize) {
                let c = *pick(&mut rng, &region_cities);
                if !presence.contains(&c) {
                    presence.push(c);
                }
            }
            // Some AP transit providers maintain their own trans-Pacific
            // leg to the US west coast (Sec 4.1's "delay-closer to NA").
            if region == Region::AsiaPacific && rng.gen_bool(config.ap_transpacific_fraction) {
                let west = ["Seattle", "SanJose", "LosAngeles"];
                let pickw = west[rng.gen_range(0..west.len())];
                presence.push(city_by_name(pickw).expect("west coast city").0);
            }
            stps.push(create_as(
                &mut internet,
                AsType::Stp,
                region,
                home,
                presence,
            ));
        }
        for _ in 0..config.scaled_count(config.cahps_per_region, region) {
            let home = *pick(&mut rng, &region_cities);
            let mut presence = vec![home];
            if rng.gen_bool(0.3) {
                let c = *pick(&mut rng, &region_cities);
                if !presence.contains(&c) {
                    presence.push(c);
                }
            }
            cahps.push(create_as(
                &mut internet,
                AsType::Cahp,
                region,
                home,
                presence,
            ));
        }
        for _ in 0..config.scaled_count(config.ecs_per_region, region) {
            let home = *pick(&mut rng, &region_cities);
            ecs.push(create_as(
                &mut internet,
                AsType::Ec,
                region,
                home,
                vec![home],
            ));
        }
    }

    // Geographic spread: a few stubs grow a leg in a distant region.
    let mut rng_spread = tree.stream("spread");
    let mut spread_ases: Vec<AsId> = Vec::new();
    for id in cahps.iter().chain(ecs.iter()) {
        if rng_spread.gen_bool(config.spread_as_fraction) {
            let home_region = internet.as_info(*id).region;
            let other = *pick(
                &mut rng_spread,
                &Region::ALL
                    .into_iter()
                    .filter(|r| *r != home_region)
                    .collect::<Vec<_>>(),
            );
            let remote = *pick(&mut rng_spread, &cities_in_region(other));
            internet.as_info_mut(*id).presence.push(remote);
            spread_ases.push(*id);
        }
    }

    // --- 2. Links and sessions ------------------------------------------
    let mut rng_links = tree.stream("links");
    // LTP full peer mesh: Tier-1 pairs interconnect in *every* region both
    // are present in (one shared hub per region), as real Tier-1s do —
    // otherwise inter-provider traffic would hairpin through one continent.
    for i in 0..ltps.len() {
        for j in (i + 1)..ltps.len() {
            let shared = shared_cities(&internet, ltps[i], ltps[j]);
            let mut cities: Vec<CityId> = Vec::new();
            for region in Region::ALL {
                // Up to three geographically spread interconnects per
                // region (real Tier-1 pairs meet in many metros; one
                // east-coast-only meet point would haul west-coast traffic
                // across the continent).
                let in_region: Vec<CityId> = shared
                    .iter()
                    .copied()
                    .filter(|c| city(*c).region == region)
                    .collect();
                let Some(&first) = in_region.first() else {
                    continue;
                };
                cities.push(first);
                if let Some(&far) = in_region.iter().max_by(|a, b| {
                    Internet::city_km(first, **a).total_cmp(&Internet::city_km(first, **b))
                }) {
                    if far != first {
                        cities.push(far);
                        if let Some(&mid) = in_region.iter().max_by(|a, b| {
                            let da = Internet::city_km(first, **a).min(Internet::city_km(far, **a));
                            let db = Internet::city_km(first, **b).min(Internet::city_km(far, **b));
                            da.total_cmp(&db)
                        }) {
                            if mid != first && mid != far {
                                cities.push(mid);
                            }
                        }
                    }
                }
            }
            if !cities.is_empty() {
                connect(&mut internet, ltps[i], ltps[j], Relation::Peer, &cities);
            }
        }
    }
    // STPs: 1–2 LTP providers; public peering with other LTPs at the home
    // IXP (common for mid-size transit networks and what keeps regional
    // paths short); regional STP peering.
    for &stp in &stps {
        let n = rng_links.gen_range(1..=2usize);
        let mut choices = ltps.clone();
        choices.shuffle(&mut rng_links);
        let providers: Vec<AsId> = choices.iter().take(n).copied().collect();
        for &ltp in &providers {
            connect_customer(&mut internet, stp, ltp);
        }
        let home = internet.as_info(stp).home_city;
        for &ltp in &ltps {
            if providers.contains(&ltp) {
                continue;
            }
            if internet.as_info(ltp).presence.contains(&home) && rng_links.gen_bool(0.5) {
                connect_at(&mut internet, stp, home, ltp, home, Relation::Peer);
            }
        }
    }
    for i in 0..stps.len() {
        for j in (i + 1)..stps.len() {
            let (a, b) = (stps[i], stps[j]);
            if internet.as_info(a).region != internet.as_info(b).region {
                continue;
            }
            if !rng_links.gen_bool(config.stp_peering_prob) {
                continue;
            }
            let shared = shared_cities(&internet, a, b);
            if let Some(cty) = shared.first() {
                connect(&mut internet, a, b, Relation::Peer, &[*cty]);
            }
        }
    }
    // CAHPs: providers from regional STPs (fallback LTP); occasional
    // regional peering at the nearest hub (IXP-style).
    for &cahp in &cahps {
        let region = internet.as_info(cahp).region;
        let regional_stps: Vec<AsId> = stps
            .iter()
            .copied()
            .filter(|s| internet.as_info(*s).region == region)
            .collect();
        let n = rng_links.gen_range(1..=2usize);
        for k in 0..n {
            let use_ltp = regional_stps.is_empty() || (k == 1 && rng_links.gen_bool(0.3));
            let provider = if use_ltp {
                *pick(&mut rng_links, &ltps)
            } else {
                *pick(&mut rng_links, &regional_stps)
            };
            connect_customer(&mut internet, cahp, provider);
        }
    }
    for i in 0..cahps.len() {
        for j in (i + 1)..cahps.len() {
            let (a, b) = (cahps[i], cahps[j]);
            let region = internet.as_info(a).region;
            if internet.as_info(b).region != region {
                continue;
            }
            if !rng_links.gen_bool(config.cahp_peering_prob) {
                continue;
            }
            // Meet at the regional hub closest to a's home.
            let hubs = region_hubs(&hub_cities, region);
            let ix = *hubs
                .iter()
                .min_by(|x, y| {
                    let dx = Internet::city_km(internet.as_info(a).home_city, **x);
                    let dy = Internet::city_km(internet.as_info(a).home_city, **y);
                    dx.total_cmp(&dy)
                })
                .expect("every region has a hub");
            connect(&mut internet, a, b, Relation::Peer, &[ix]);
        }
    }
    // ECs: 1–2 providers (STP-heavy, some LTP).
    for &ec in &ecs {
        let region = internet.as_info(ec).region;
        let regional_stps: Vec<AsId> = stps
            .iter()
            .copied()
            .filter(|s| internet.as_info(*s).region == region)
            .collect();
        let n = rng_links.gen_range(1..=2usize);
        for _ in 0..n {
            let provider = if !regional_stps.is_empty() && rng_links.gen_bool(0.7) {
                *pick(&mut rng_links, &regional_stps)
            } else {
                *pick(&mut rng_links, &ltps)
            };
            connect_customer(&mut internet, ec, provider);
        }
    }

    // --- 3. Prefixes ------------------------------------------------------
    let mut rng_pfx = tree.stream("prefixes");
    let all_as: Vec<AsId> = (0..internet.as_count() as u32).map(AsId).collect();
    for id in all_as {
        let (ty, count) = {
            let info = internet.as_info(id);
            let count = match info.ty {
                AsType::Ltp => config.prefixes.ltp,
                AsType::Stp => config.prefixes.stp,
                AsType::Cahp => config.prefixes.cahp,
                AsType::Ec => config.prefixes.ec,
            };
            (info.ty, count)
        };
        let _ = ty;
        let is_spread = spread_ases.contains(&id);
        for _ in 0..count {
            let block = next_block;
            next_block += 1;
            let prefix = Prefix::new(PREFIX_BASE + (block << 16), 16);
            let pcity = {
                let info = internet.as_info(id);
                // Spread ASes place ~a third of their space at the remote
                // leg; everyone else concentrates near home.
                if is_spread && rng_pfx.gen_bool(0.33) {
                    *info.presence.last().expect("presence non-empty")
                } else if rng_pfx.gen_bool(0.6) || info.presence.len() == 1 {
                    info.home_city
                } else {
                    info.presence[rng_pfx.gen_range(0..info.presence.len())]
                }
            };
            // Originate at the AS's router nearest the prefix (matters for
            // multi-router LTPs: their address space is regional).
            let speaker = internet.router_of(id, pcity).expect("AS has routers");
            let base = city(pcity).location;
            // Hosts scatter ~25 km around the city centre.
            let location = GeoPoint::new(
                base.lat_deg + rng_pfx.gen_range(-0.2..0.2),
                base.lon_deg + rng_pfx.gen_range(-0.25..0.25),
            );
            let country = city(pcity).country;
            internet.add_prefix(
                PrefixInfo {
                    prefix,
                    origin: id,
                    city: pcity,
                    location,
                    last_mile: true,
                    anycast: false,
                },
                country,
                location,
            );
            internet.as_info_mut(id).prefixes.push(prefix);
            internet.net.originate(speaker, prefix);
        }
    }

    // --- 4. GeoIP error models -------------------------------------------
    if config.geoip_errors {
        let toronto = city_by_name("Toronto")
            .expect("Toronto in table")
            .1
            .location;
        internet.geoip.apply_error_model(
            &GeoIpErrorModel::CityJitter {
                max_km: config.geoip_jitter_km,
            },
            tree.seed_for("geoip-jitter"),
        );
        internet.geoip.apply_error_model(
            &GeoIpErrorModel::CentroidCollapse {
                country: "RU".into(),
            },
            tree.seed_for("geoip-ru"),
        );
        internet.geoip.apply_error_model(
            &GeoIpErrorModel::StaleWhois {
                country: "IN".into(),
                reported_at: toronto,
                fraction: 0.8,
            },
            tree.seed_for("geoip-in"),
        );
    }

    // --- 5. Converge -------------------------------------------------------
    // Shard the control plane by world region and converge in parallel.
    // Thread count never affects the generated world (see
    // `BgpNet::run_sharded`), so auto-sizing to the machine is safe.
    internet.assign_region_shards();
    let stats = if config.monolithic_convergence {
        internet
            .net
            .run(config.message_budget)
            .map_err(GenError::Convergence)?
    } else {
        let threads = match config.convergence_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        internet
            .net
            .run_sharded(config.message_budget, threads)
            .map_err(GenError::Convergence)?
    };
    internet.convergence_log.push(stats);
    Ok(internet)
}

/// Fraction of (speaker, prefix) pairs with a selected route — a generated
/// valley-free Internet should be ~fully reachable.
pub fn reachability(internet: &Internet) -> f64 {
    let prefixes: Vec<Prefix> = internet.prefixes().map(|p| p.prefix).collect();
    let mut have = 0usize;
    let mut total = 0usize;
    for info in internet.ases() {
        let Some(sp) = info.speaker else { continue };
        let speaker = internet.net.speaker(sp).expect("registered speaker");
        for p in &prefixes {
            total += 1;
            if speaker.best(p).is_some() {
                have += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        have as f64 / total as f64
    }
}

fn pick<'a, T>(rng: &mut SmallRng, slice: &'a [T]) -> &'a T {
    &slice[rng.gen_range(0..slice.len())]
}

fn region_hubs(hubs: &[CityId], region: Region) -> Vec<CityId> {
    let v: Vec<CityId> = hubs
        .iter()
        .copied()
        .filter(|c| city(*c).region == region)
        .collect();
    assert!(!v.is_empty(), "region {region} has no hub city");
    v
}

fn create_as(
    internet: &mut Internet,
    ty: AsType,
    region: Region,
    home: CityId,
    presence: Vec<CityId>,
) -> AsId {
    let asn = internet.alloc_asn();
    let speaker_id = internet.alloc_speaker_id();
    let mut speaker = Speaker::new(speaker_id, asn);
    speaker.set_best_external(false);
    internet.net.add_speaker(speaker);
    internet.add_as(AsInfo {
        id: internet.next_as_id(),
        asn,
        ty,
        region,
        home_city: home,
        presence,
        speaker: Some(speaker_id),
        routers: vec![(home, speaker_id)],
        prefixes: Vec::new(),
        dedicated: false,
        igp: None,
    })
}

/// Creates a global transit provider with one router per region of
/// presence: iBGP full mesh, IGP costs = inter-city great-circle km. This
/// is what makes hot-potato behave geographically inside Tier-1s — a
/// packet entering the provider in Europe exits at a European interconnect,
/// regardless of where the company is headquartered.
fn create_ltp(
    internet: &mut Internet,
    home_region: Region,
    home: CityId,
    presence: Vec<CityId>,
) -> AsId {
    let asn = internet.alloc_asn();
    // One router per region, sited at the region's first presence city
    // (presence lists hubs, so this is a major interconnection site).
    let mut routers: Vec<(CityId, vns_bgp::SpeakerId)> = Vec::new();
    for region in Region::ALL {
        let Some(&site) = presence.iter().find(|c| city(**c).region == region) else {
            continue;
        };
        let id = internet.alloc_speaker_id();
        let mut s = Speaker::new(id, asn);
        s.set_export_own_ibgp(true);
        internet.net.add_speaker(s);
        routers.push((site, id));
    }
    debug_assert!(!routers.is_empty(), "LTP with no presence");
    // Backbone IGP: full mesh between regional routers.
    let mut igp = vns_bgp::IgpGraph::new();
    for i in 0..routers.len() {
        for j in (i + 1)..routers.len() {
            let km = Internet::city_km(routers[i].0, routers[j].0).max(1.0) as u64;
            igp.add_link(routers[i].1, routers[j].1, km);
        }
    }
    for &(_, r) in &routers {
        let costs = igp.shortest_costs(r);
        internet
            .net
            .speaker_mut(r)
            .expect("router exists")
            .set_igp_costs(costs.into_iter().collect());
    }
    // iBGP full mesh.
    for i in 0..routers.len() {
        for j in (i + 1)..routers.len() {
            let cfg = vns_bgp::PeerConfig {
                kind: vns_bgp::PeerKind::Ibgp,
                import: Policy::GaoRexford,
            };
            internet.net.connect(routers[i].1, cfg, routers[j].1, cfg);
        }
    }
    let primary = routers
        .iter()
        .find(|(c, _)| *c == home)
        .or(routers.first())
        .map(|&(_, s)| s);
    internet.add_as(AsInfo {
        id: internet.next_as_id(),
        asn,
        ty: AsType::Ltp,
        region: home_region,
        home_city: home,
        presence,
        speaker: primary,
        routers,
        prefixes: Vec::new(),
        dedicated: false,
        igp: Some(igp),
    })
}

/// Cities where both ASes are present, sorted for determinism.
fn shared_cities(internet: &Internet, a: AsId, b: AsId) -> Vec<CityId> {
    let pa = &internet.as_info(a).presence;
    let pb = &internet.as_info(b).presence;
    let mut out: Vec<CityId> = pa.iter().copied().filter(|c| pb.contains(c)).collect();
    out.sort();
    out.dedup();
    out
}

/// Customer `c` buys transit from `p`; interconnect at the geometrically
/// best presence pair (plus a second leg when both are multi-city).
fn connect_customer(internet: &mut Internet, c: AsId, p: AsId) {
    let pairs = best_city_pairs(internet, c, p, 2);
    for (cc, pc) in pairs {
        connect_at(internet, c, cc, p, pc, Relation::Provider);
    }
}

/// Generic connect: relation is `a`'s view of `b`, interconnecting at each
/// of `same_cities` (IXP peering: same metro on both sides).
fn connect(internet: &mut Internet, a: AsId, b: AsId, a_view: Relation, same_cities: &[CityId]) {
    for &cty in same_cities {
        connect_at(internet, a, cty, b, cty, a_view);
    }
}

/// Creates (or extends) the session between the routers of `a` and `b`
/// nearest the given interconnect cities, records the link geometry and
/// sets hot-potato session costs (haul from each router's own city to its
/// side of the interconnect).
fn connect_at(
    internet: &mut Internet,
    a: AsId,
    city_a: CityId,
    b: AsId,
    city_b: CityId,
    a_view: Relation,
) {
    let ra = internet.router_of(a, city_a).expect("a has routers");
    let rb = internet.router_of(b, city_b).expect("b has routers");
    internet
        .net
        .connect_ebgp(ra, rb, a_view, Policy::GaoRexford);
    internet.record_link(ra, city_a, rb, city_b);
    let ca = Internet::city_km(internet.city_of_router(ra).expect("registered"), city_a) as u64;
    let cb = Internet::city_km(internet.city_of_router(rb).expect("registered"), city_b) as u64;
    if let Some(s) = internet.net.speaker_mut(ra) {
        s.set_session_cost(rb, ca);
    }
    if let Some(s) = internet.net.speaker_mut(rb) {
        s.set_session_cost(ra, cb);
    }
}

/// The `k` geometrically closest presence-city pairs between two ASes.
fn best_city_pairs(internet: &Internet, a: AsId, b: AsId, k: usize) -> Vec<(CityId, CityId)> {
    let pa = internet.as_info(a).presence.clone();
    let pb = internet.as_info(b).presence.clone();
    let mut pairs: Vec<(f64, CityId, CityId)> = Vec::new();
    for &ca in &pa {
        for &cb in &pb {
            pairs.push((Internet::city_km(ca, cb), ca, cb));
        }
    }
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0).then((x.1, x.2).cmp(&(y.1, y.2))));
    pairs
        .into_iter()
        .take(k)
        .map(|(_, ca, cb)| (ca, cb))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_and_converges() {
        let internet = generate(&TopoConfig::tiny(1)).expect("generation");
        assert!(internet.as_count() > 30, "ases {}", internet.as_count());
        let n_prefixes = internet.prefixes().count();
        assert!(n_prefixes > 50, "prefixes {n_prefixes}");
        let reach = reachability(&internet);
        assert!(reach > 0.995, "reachability {reach}");
    }

    #[test]
    fn deterministic() {
        let a = generate(&TopoConfig::tiny(5)).unwrap();
        let b = generate(&TopoConfig::tiny(5)).unwrap();
        assert_eq!(a.as_count(), b.as_count());
        let pa: Vec<_> = a.prefixes().map(|p| (p.prefix, p.city)).collect();
        let pb: Vec<_> = b.prefixes().map(|p| (p.prefix, p.city)).collect();
        assert_eq!(pa, pb);
        // Same route choices at a sample speaker.
        let sp = a.ases().find_map(|x| x.speaker).unwrap();
        for p in pa.iter().take(20) {
            let ra = a.net.best_route(sp, &p.0).map(|c| c.attrs.as_path.clone());
            let rb = b.net.best_route(sp, &p.0).map(|c| c.attrs.as_path.clone());
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TopoConfig::tiny(1)).unwrap();
        let b = generate(&TopoConfig::tiny(2)).unwrap();
        let pa: Vec<_> = a.prefixes().map(|p| p.city).collect();
        let pb: Vec<_> = b.prefixes().map(|p| p.city).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn all_four_types_present() {
        let internet = generate(&TopoConfig::tiny(3)).unwrap();
        for ty in AsType::ALL {
            assert!(internet.ases().any(|a| a.ty == ty), "missing AS type {ty}");
        }
    }

    #[test]
    fn valley_free_paths() {
        // Every selected route's AS path must be valley-free: once the
        // path goes "down" (provider->customer) or sideways, it never goes
        // back "up".
        let internet = generate(&TopoConfig::tiny(4)).unwrap();
        // Relation lookup per (asn, asn): from the link records. Rebuild
        // from the ases' speakers.
        let mut rel = std::collections::BTreeMap::new();
        for a in internet.ases() {
            let Some(sa) = a.speaker else { continue };
            let sp = internet.net.speaker(sa).unwrap();
            for peer in sp.peer_ids() {
                if let Some(cfg) = sp.peer_config(peer) {
                    if let vns_bgp::PeerKind::Ebgp { peer_as, relation } = cfg.kind {
                        rel.insert((a.asn, peer_as), relation);
                    }
                }
            }
        }
        let mut checked = 0;
        for a in internet.ases().take(30) {
            let Some(sa) = a.speaker else { continue };
            let sp = internet.net.speaker(sa).unwrap();
            for prefix in internet.prefixes().take(50) {
                let Some(best) = sp.best(&prefix.prefix) else {
                    continue;
                };
                let mut path = vec![a.asn];
                path.extend(best.attrs.as_path.iter().copied());
                // Classify each step: Up (to provider), Down (to customer),
                // Flat (peer).
                let mut gone_down = false;
                for w in path.windows(2) {
                    let Some(r) = rel.get(&(w[0], w[1])) else {
                        continue;
                    };
                    match r {
                        Relation::Provider => {
                            assert!(!gone_down, "valley in path {path:?}");
                        }
                        Relation::Peer | Relation::Customer => {
                            gone_down = true;
                        }
                    }
                }
                checked += 1;
            }
        }
        assert!(checked > 100, "checked {checked}");
    }

    #[test]
    fn geoip_errors_present_when_enabled() {
        let internet = generate(&TopoConfig::tiny(6)).unwrap();
        // Some prefix must have nonzero GeoIP error (at least the jitter).
        let with_err = internet
            .prefixes()
            .filter(|p| internet.geoip.error_km(p.prefix).unwrap_or(0.0) > 1.0)
            .count();
        assert!(with_err > 0, "expected jittered geoip entries");

        let mut cfg = TopoConfig::tiny(6);
        cfg.geoip_errors = false;
        let clean = generate(&cfg).unwrap();
        let with_err = clean
            .prefixes()
            .filter(|p| clean.geoip.error_km(p.prefix).unwrap_or(0.0) > 1.0)
            .count();
        assert_eq!(with_err, 0, "no errors when disabled");
    }

    #[test]
    fn ltp_asymmetry_for_fig5() {
        // The first LTP must be NA-homed (the "upstream 1" of Fig 5).
        let internet = generate(&TopoConfig::tiny(9)).unwrap();
        let first_ltp = internet.ases().find(|a| a.ty == AsType::Ltp).unwrap();
        assert_eq!(first_ltp.region, Region::NorthAmerica);
    }
}
