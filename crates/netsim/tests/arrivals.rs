//! Arrival-process edge cases and cross-thread byte-identity.
//!
//! The service plane trusts two things about [`ArrivalProcess`]: the
//! diurnal rate shaping is well-behaved at the awkward spots (midnight
//! wraparound, zero amplitude, extreme rates), and the stream of arrivals
//! is a pure function of `(seed, window index)` so campaigns can generate
//! windows on any worker in any order.

use vns_netsim::diurnal::DiurnalShape;
use vns_netsim::{ArrivalProcess, DiurnalProfile, Dur, Par, RngTree, SimTime};

fn mixed() -> DiurnalProfile {
    DiurnalProfile::new(DiurnalShape::Mixed, 0.5, 0.4, 0.0)
}

#[test]
fn diurnal_curves_wrap_cleanly_at_midnight() {
    // The bump construction is periodic: utilisation just before midnight
    // and just after must be continuous for every shape — a sawtooth at
    // the day boundary would put a spurious arrival-rate step into every
    // multi-day campaign.
    for shape in [
        DiurnalShape::Business,
        DiurnalShape::Residential,
        DiurnalShape::Mixed,
    ] {
        let p = DiurnalProfile::new(shape, 0.3, 0.6, 0.0);
        let before = p.utilization_at_hour(23.999);
        let after = p.utilization_at_hour(0.001);
        assert!(
            (before - after).abs() < 1e-3,
            "{shape:?}: {before} vs {after} across midnight"
        );
        // And the simulation clock agrees with the hour arithmetic: the
        // last instant of day 0 matches the first instant of day 1.
        let t0 = SimTime::EPOCH + Dur::from_millis(24 * 3_600_000 - 1);
        let t1 = SimTime::EPOCH + Dur::from_millis(24 * 3_600_000 + 1);
        assert!(
            (p.utilization(t0) - p.utilization(t1)).abs() < 1e-3,
            "{shape:?}: discontinuous across the day boundary"
        );
    }
}

#[test]
fn utc_offset_moves_the_peak_across_midnight() {
    // A residential evening peak (20:30 local) in UTC+5 lands at 15:30
    // UTC; in UTC-5 it lands at 01:30 UTC — the wraparound case.
    let east = DiurnalProfile::new(DiurnalShape::Residential, 0.1, 0.8, 5.0);
    let west = DiurnalProfile::new(DiurnalShape::Residential, 0.1, 0.8, -5.0);
    let at = |h: f64| SimTime::EPOCH + Dur::from_mins((h * 60.0) as u64);
    assert!(east.utilization(at(15.5)) > 0.8);
    assert!(
        west.utilization(at(25.5)) > 0.8,
        "peak must wrap past 24:00"
    );
    assert!(west.utilization(at(15.5)) < 0.3);
}

#[test]
fn zero_amplitude_ignores_the_shape() {
    // amplitude == 0 degenerates every shape to a flat profile: the
    // arrival counts must match the flat process window for window.
    let shaped = ArrivalProcess::new(
        6.0,
        DiurnalProfile::new(DiurnalShape::Residential, 0.55, 0.0, 3.0),
        Dur::from_mins(5),
    );
    let flat = ArrivalProcess::new(6.0, DiurnalProfile::flat(0.55), Dur::from_mins(5));
    let tree = RngTree::new(21);
    for idx in 0..30 {
        assert_eq!(
            shaped.window_arrivals(&tree, idx),
            flat.window_arrivals(&tree, idx),
            "window {idx}: zero-amplitude shape leaked into thinning"
        );
    }
}

#[test]
fn arrival_volume_scales_linearly_with_peak_rate() {
    // Doubling the peak rate doubles the expected count; the thinning
    // construction must not distort the scaling.
    let tree = RngTree::new(22);
    let count = |rate: f64| -> usize {
        let p = ArrivalProcess::new(rate, mixed(), Dur::from_mins(5));
        (0..200).map(|i| p.window_arrivals(&tree, i).len()).sum()
    };
    let (x1, x2, x4) = (count(2.0), count(4.0), count(8.0));
    let ratio21 = x2 as f64 / x1 as f64;
    let ratio42 = x4 as f64 / x2 as f64;
    assert!(
        (ratio21 - 2.0).abs() < 0.15,
        "2x rate gave {ratio21}x arrivals"
    );
    assert!(
        (ratio42 - 2.0).abs() < 0.15,
        "2x rate gave {ratio42}x arrivals"
    );
}

#[test]
fn rate_at_respects_the_profile_clock() {
    let p = ArrivalProcess::new(10.0, mixed(), Dur::from_mins(5));
    // Mixed peaks near 13:00; the 04:00 trough is near base utilisation.
    let at = |h: u64| SimTime::EPOCH + Dur::from_hours(h);
    assert!(p.rate_at(at(13)) > p.rate_at(at(4)) * 1.5);
    assert!(p.rate_at(at(4)) >= 10.0 * 0.5 - 1e-9, "trough below base");
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Generates windows `0..n` fanned out over `par` workers and
    /// concatenates the streams in window order.
    fn stream(seed: u64, rate: f64, n: u64, par: Par) -> Vec<SimTime> {
        let p = ArrivalProcess::new(rate, mixed(), Dur::from_mins(5));
        let tree = RngTree::new(seed).subtree("arrivals-test");
        let idxs: Vec<u64> = (0..n).collect();
        par.map(&idxs, |_, &i| p.window_arrivals(&tree, i))
            .into_iter()
            .flatten()
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The whole arrival stream is byte-identical whether the windows
        /// are generated sequentially or on 2 or 8 workers.
        #[test]
        fn stream_identical_across_thread_counts(
            seed in 0u64..10_000,
            rate in 0.1f64..20.0,
            n in 1u64..40,
        ) {
            let seq = stream(seed, rate, n, Par::seq());
            prop_assert_eq!(&seq, &stream(seed, rate, n, Par::new(2)));
            prop_assert_eq!(&seq, &stream(seed, rate, n, Par::new(8)));
        }

        /// Every arrival lies inside its window and the stream is sorted —
        /// for any seed, rate and horizon.
        #[test]
        fn stream_sorted_and_in_bounds(
            seed in 0u64..10_000,
            rate in 0.1f64..20.0,
            n in 1u64..40,
        ) {
            let p = ArrivalProcess::new(rate, mixed(), Dur::from_mins(5));
            let s = stream(seed, rate, n, Par::seq());
            for w in s.windows(2) {
                prop_assert!(w[0] <= w[1], "stream out of order");
            }
            if let Some(last) = s.last() {
                prop_assert!(*last < p.window_start(n));
            }
        }
    }
}
