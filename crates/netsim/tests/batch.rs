//! Batch-engine equivalence for [`PathChannel`].
//!
//! The SoA batch path (`send_batch`, `send_batch_live`) is a pure
//! reorganisation of the per-packet state machine: it must consume the
//! same RNG draws in the same order and produce byte-identical outcomes.
//! These tests pin that down against both references —
//! [`PathChannel::exact`] (the per-packet exact reference the ISSUE names)
//! and the scalar fast path — across Bernoulli and Gilbert–Elliott loss,
//! blackout windows straddling epoch edges, and batches that cross both
//! chunk and epoch boundaries.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::{
    scratch, BlackoutSchedule, Dur, HopChannel, LossModel, LossProcess, PathChannel, PathOutcome,
    SimTime, BATCH_LEN,
};

fn lossy_hop(base_ms: f64, model: LossModel, seed: u64) -> HopChannel {
    let mut hop = HopChannel::ideal(base_ms);
    hop.loss = LossProcess::new(model, SmallRng::seed_from_u64(seed));
    hop
}

/// A 3-hop path exercising both loss families plus a clean hop.
fn hops(p: f64, burst: f64, seed: u64) -> Vec<HopChannel> {
    vec![
        lossy_hop(2.0, LossModel::Bernoulli { p }, seed),
        lossy_hop(
            8.0,
            LossModel::bursty(p.max(0.001), burst, 2.0),
            seed ^ 0x9e37,
        ),
        HopChannel::ideal(15.0),
    ]
}

/// Per-packet reference: one `send` per instant.
fn sequential(mut ch: PathChannel, times: &[SimTime]) -> Vec<PathOutcome> {
    times.iter().map(|&t| ch.send(t)).collect()
}

/// Batched: one `send_batch` over the whole slice (the engine chunks it
/// into `BATCH_LEN` columns internally).
fn batched(mut ch: PathChannel, times: &[SimTime]) -> Vec<PathOutcome> {
    let mut s = scratch();
    s.times.extend_from_slice(times);
    ch.send_batch(&mut s);
    s.outcomes.clone()
}

/// Live-set: chunked `send_batch_live`, outcomes reconstructed from the
/// delivered clocks / sparse loss columns.
fn live(mut ch: PathChannel, times: &[SimTime]) -> Vec<PathOutcome> {
    let mut out = Vec::with_capacity(times.len());
    let mut s = scratch();
    for chunk in times.chunks(BATCH_LEN) {
        let base = out.len();
        out.resize(base + chunk.len(), PathOutcome::Lost { hop: usize::MAX });
        s.clear();
        s.times.extend_from_slice(chunk);
        let k = ch.send_batch_live(&mut s);
        for &pk in &s.lost {
            out[base + (pk >> 8) as usize] = PathOutcome::Lost {
                hop: (pk & 0xff) as usize,
            };
        }
        for j in 0..k {
            let orig = if s.idx.is_empty() {
                j
            } else {
                s.idx[j] as usize
            };
            let arrival = SimTime::from_nanos(s.now[j]);
            out[base + orig] = PathOutcome::Delivered {
                arrival,
                delay: arrival - chunk[orig],
            };
        }
    }
    out
}

/// Send instants spanning several cache epochs (1 s) and several
/// `BATCH_LEN` chunks, with a stride that lands packets on both sides of
/// epoch edges.
fn times(n: usize, spacing_us: u64) -> Vec<SimTime> {
    (0..n as u64)
        .map(|i| SimTime::EPOCH + Dur::from_micros(i * spacing_us))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact mode: the batch path must be byte-equal to the per-packet
    /// exact reference for every packet, including which hop dropped it.
    #[test]
    fn batch_matches_exact_reference(
        p in 0.0f64..0.15,
        burst in 0.25f64..0.7,
        seed in 0u64..500,
        spacing_us in 300u64..5_000,
    ) {
        let ts = times(3 * BATCH_LEN + 17, spacing_us);
        let mk = || PathChannel::exact(hops(p, burst, seed), SmallRng::seed_from_u64(seed ^ 5));
        prop_assert_eq!(batched(mk(), &ts), sequential(mk(), &ts));
    }

    /// Fast mode: batch vs scalar fast path, same requirement. The stride
    /// range makes batches straddle the 1 s epoch grid at many offsets.
    #[test]
    fn batch_matches_scalar_fast_path(
        p in 0.0f64..0.15,
        burst in 0.25f64..0.7,
        seed in 0u64..500,
        spacing_us in 300u64..5_000,
    ) {
        let ts = times(3 * BATCH_LEN + 17, spacing_us);
        let mk = || PathChannel::new(hops(p, burst, seed), SmallRng::seed_from_u64(seed ^ 5));
        prop_assert_eq!(batched(mk(), &ts), sequential(mk(), &ts));
    }

    /// The live-set columns carry the same information as the outcome
    /// column: reconstructing outcomes from (now, idx, lost) is
    /// byte-identical, in both fast and exact mode.
    #[test]
    fn live_set_columns_equal_outcome_column(
        p in 0.0f64..0.15,
        burst in 0.25f64..0.7,
        seed in 0u64..500,
        exact in any::<bool>(),
    ) {
        let ts = times(2 * BATCH_LEN + 31, 2_400);
        let mk = || {
            let rng = SmallRng::seed_from_u64(seed ^ 7);
            if exact {
                PathChannel::exact(hops(p, burst, seed), rng)
            } else {
                PathChannel::new(hops(p, burst, seed), rng)
            }
        };
        prop_assert_eq!(live(mk(), &ts), batched(mk(), &ts));
    }
}

/// Blackout edges: windows misaligned with the epoch grid (including one
/// shorter than an epoch) classify identically under batch and scalar
/// sends, packet for packet.
#[test]
fn batch_blackout_edges_match_scalar() {
    let s = |ms: u64| SimTime::EPOCH + Dur::from_millis(ms);
    let sched = BlackoutSchedule::new(vec![
        (s(10_250), s(12_750)),
        (s(20_400), s(20_700)),
        (s(30_000), s(33_000)),
    ]);
    let mk = || {
        let mut hop = HopChannel::ideal(1.0);
        hop.blackouts = sched.clone();
        PathChannel::new(vec![hop], SmallRng::seed_from_u64(3))
    };
    // 17 ms stride scans every window edge and epoch start over 40 s.
    let ts = times(2_400, 17_000);
    assert_eq!(batched(mk(), &ts), sequential(mk(), &ts));
    assert_eq!(live(mk(), &ts), sequential(mk(), &ts));
}
