//! Fast-path vs exact-path equivalence for [`PathChannel`].
//!
//! The epoch-cached fast path (default 1 s epoch) is an approximation of
//! the exact per-packet reference (`epoch == Dur::ZERO`): loss probability
//! and mean queueing delay are frozen at each epoch's start, and losses are
//! realised by geometric gap sampling instead of per-packet Bernoulli
//! draws. These tests pin down what the approximation is allowed to change
//! (the exact packet fates) and what it must preserve (loss rates, delay
//! distributions, blackout window edges, lossless-path bit-exactness).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::diurnal::{DiurnalProfile, DiurnalShape};
use vns_netsim::{
    BlackoutSchedule, DelaySampler, Dur, HopChannel, LossModel, LossProcess, PathChannel, SimTime,
};

fn lossy_hop(model: LossModel, seed: u64) -> HopChannel {
    let mut hop = HopChannel::ideal(5.0);
    hop.loss = LossProcess::new(model, SmallRng::seed_from_u64(seed));
    hop
}

/// Sends `n` packets at `spacing` through a fresh channel built by `mk`,
/// returning (loss fraction, mean one-way delay in ms over delivered).
fn run(
    mk: impl Fn() -> Vec<HopChannel>,
    exact: bool,
    n: u64,
    spacing: Dur,
    rng_seed: u64,
) -> (f64, f64) {
    let rng = SmallRng::seed_from_u64(rng_seed);
    let mut ch = if exact {
        PathChannel::exact(mk(), rng)
    } else {
        PathChannel::new(mk(), rng)
    };
    let mut lost = 0u64;
    let mut delay_sum = 0.0;
    let mut delivered = 0u64;
    let mut t = SimTime::EPOCH;
    for _ in 0..n {
        match ch.send(t).delay_ms() {
            None => lost += 1,
            Some(d) => {
                delivered += 1;
                delay_sum += d;
            }
        }
        t += spacing;
    }
    let mean_delay = if delivered > 0 {
        delay_sum / delivered as f64
    } else {
        0.0
    };
    (lost as f64 / n as f64, mean_delay)
}

proptest! {
    // Proptest re-runs are expensive here (hundreds of thousands of packet
    // sends per case); keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bernoulli loss: the fast path's realised loss rate must match the
    /// exact path's within binomial noise.
    #[test]
    fn bernoulli_loss_rate_preserved(p in 0.002f64..0.1, seed in 0u64..200) {
        let n = 120_000u64;
        let mk = || vec![lossy_hop(LossModel::Bernoulli { p }, seed)];
        let (fast, _) = run(mk, false, n, Dur::from_micros(500), seed ^ 1);
        let (exact, _) = run(mk, true, n, Dur::from_micros(500), seed ^ 1);
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        prop_assert!((fast - p).abs() <= 6.0 * sigma + 1e-4, "fast {fast} vs p {p}");
        prop_assert!((fast - exact).abs() <= 8.0 * sigma + 2e-4, "fast {fast} vs exact {exact}");
    }

    /// Gilbert–Elliott bursty loss: long-run rates must agree (the fast
    /// path freezes the in-state probability per 1 s epoch, well below the
    /// chain's mixing time at these burst lengths).
    #[test]
    fn ge_loss_rate_preserved(
        overall in 0.005f64..0.04,
        burst_loss in 0.25f64..0.7,
        seed in 0u64..100
    ) {
        let n = 150_000u64;
        let model = LossModel::bursty(overall, burst_loss, 2.0);
        let mk = || vec![lossy_hop(model.clone(), seed)];
        // 20 ms spacing: spans epochs and GE sojourn times alike.
        let (fast, _) = run(mk, false, n, Dur::from_millis(20), seed ^ 3);
        let (exact, _) = run(mk, true, n, Dur::from_millis(20), seed ^ 3);
        prop_assert!(
            fast < exact * 2.5 + 0.003 && fast > exact / 2.5 - 0.003,
            "fast {fast} vs exact {exact}"
        );
        prop_assert!(
            fast < overall * 2.5 + 0.003 && fast > overall / 2.5 - 0.003,
            "fast {fast} vs overall {overall}"
        );
    }

    /// Contended-hop delay: mean one-way delay under the fast path (mean
    /// queue frozen per epoch) must track the exact per-packet evaluation.
    #[test]
    fn contended_delay_mean_preserved(base_util in 0.2f64..0.6, offset in -10.0f64..10.0) {
        let n = 60_000u64;
        let mk = || {
            let mut hop = HopChannel::ideal(20.0);
            hop.delay = DelaySampler::contended(
                20.0,
                DiurnalProfile::new(DiurnalShape::Mixed, base_util, 0.2, offset),
            );
            vec![hop]
        };
        // ~100 ms spacing walks the diurnal curve over ~100 minutes.
        let (_, fast) = run(mk, false, n, Dur::from_millis(100), 9);
        let (_, exact) = run(mk, true, n, Dur::from_millis(100), 9);
        prop_assert!(
            (fast - exact).abs() <= 0.02 * exact + 0.05,
            "fast mean {fast} vs exact mean {exact}"
        );
    }
}

/// Blackout windows are exact under the fast path: a packet at an epoch
/// edge, a window edge, or anywhere in between sees the same outcome the
/// unquantised membership test gives — even for sub-epoch windows that
/// open and close inside one cache epoch.
#[test]
fn blackout_membership_exact_at_epoch_edges() {
    let s = |secs_ms: (u64, u64)| SimTime::EPOCH + Dur::from_millis(secs_ms.0 * 1000 + secs_ms.1);
    // Windows deliberately misaligned with the 1 s epoch grid, including a
    // 300 ms window fully inside one epoch.
    let windows = vec![
        (s((10, 250)), s((12, 750))),
        (s((20, 400)), s((20, 700))),
        (s((30, 0)), s((33, 0))),
    ];
    let sched = BlackoutSchedule::new(windows.clone());
    let mk = || {
        let mut hop = HopChannel::ideal(1.0);
        hop.blackouts = sched.clone();
        vec![hop]
    };
    let mut fast = PathChannel::new(mk(), SmallRng::seed_from_u64(1));
    // Probe every 50 ms over the whole span — hits epoch starts, window
    // edges and interiors — and compare against raw membership.
    for ms in (0..40_000u64).step_by(50) {
        let t = SimTime::EPOCH + Dur::from_millis(ms);
        let raw_blacked = windows.iter().any(|(a, b)| t >= *a && t < *b);
        assert_eq!(
            !fast.send(t).delivered(),
            raw_blacked,
            "at {ms} ms: fast path disagrees with raw window membership"
        );
    }
    // Exact boundary instants: first/last nanosecond of each window.
    let just_before = |t: SimTime| SimTime::from_nanos(t.as_nanos() - 1);
    for (a, b) in &windows {
        let mut ch = PathChannel::new(mk(), SmallRng::seed_from_u64(2));
        assert!(!ch.send(*a).delivered(), "window start is blacked out");
        assert!(ch.send(*b).delivered(), "window end is open (half-open)");
        assert!(!ch.send(just_before(*b)).delivered());
        assert!(ch.send(just_before(*a)).delivered());
    }
}

/// On a lossless path the fast path consumes the RNG identically to the
/// exact path, so outcomes are bit-for-bit equal — the calibration tests
/// that assert exact RTT bands keep holding under the default epoch.
#[test]
fn lossless_paths_bit_identical() {
    let mk = || {
        vec![
            HopChannel::ideal(12.0),
            HopChannel::ideal(35.0),
            HopChannel::ideal(2.0),
        ]
    };
    let mut fast = PathChannel::new(mk(), SmallRng::seed_from_u64(5));
    let mut exact = PathChannel::exact(mk(), SmallRng::seed_from_u64(5));
    let mut t = SimTime::EPOCH;
    for _ in 0..20_000 {
        assert_eq!(fast.send(t), exact.send(t));
        t += Dur::from_micros(330);
    }
}

/// Determinism: the fast path is a pure function of (hops, rng seed, send
/// times) — two identically-built channels agree packet for packet.
#[test]
fn fast_path_deterministic() {
    let model = LossModel::Composite(vec![
        LossModel::Bernoulli { p: 0.003 },
        LossModel::bursty(0.004, 0.4, 1.5),
    ]);
    let mk = || {
        vec![
            lossy_hop(model.clone(), 11),
            lossy_hop(LossModel::Bernoulli { p: 0.001 }, 12),
        ]
    };
    let mut a = PathChannel::new(mk(), SmallRng::seed_from_u64(13));
    let mut b = PathChannel::new(mk(), SmallRng::seed_from_u64(13));
    let mut t = SimTime::EPOCH;
    for _ in 0..50_000 {
        assert_eq!(a.send(t), b.send(t));
        t += Dur::from_micros(700);
    }
}
