//! An event-driven composition test: a ping-pong protocol between two
//! endpoints over lossy channels, scheduled entirely through the
//! discrete-event [`Engine`] — exercising the engine, channels, loss
//! processes and trace recorder together.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::{
    Dur, Engine, HopChannel, LossModel, LossProcess, PathChannel, PathOutcome, SimTime, Trace,
};

#[derive(Debug)]
enum Ev {
    /// Client sends probe number `n`.
    Send(u32),
    /// Reply for probe `n` arrives at the client.
    Reply(u32),
    /// Client-side timeout for probe `n`.
    Timeout(u32),
}

struct PingPong {
    fwd: PathChannel,
    rev: PathChannel,
    trace: Trace,
    outstanding: std::collections::BTreeSet<u32>,
    completed: Vec<(u32, Dur)>,
    timeouts: u32,
    sent_at: std::collections::BTreeMap<u32, SimTime>,
}

impl PingPong {
    fn new(loss_p: f64, seed: u64) -> Self {
        let lossy_hop = |s| {
            let mut hop = HopChannel::ideal(30.0);
            hop.loss = LossProcess::new(
                LossModel::Bernoulli { p: loss_p },
                SmallRng::seed_from_u64(s),
            );
            hop
        };
        Self {
            fwd: PathChannel::new(vec![lossy_hop(seed)], SmallRng::seed_from_u64(seed + 10)),
            rev: PathChannel::new(
                vec![lossy_hop(seed + 1)],
                SmallRng::seed_from_u64(seed + 11),
            ),
            trace: Trace::new(64),
            outstanding: Default::default(),
            completed: Vec::new(),
            timeouts: 0,
            sent_at: Default::default(),
        }
    }
}

#[test]
fn event_driven_ping_pong() {
    let mut sim = PingPong::new(0.2, 7);
    let mut engine: Engine<Ev> = Engine::new();
    engine.schedule(SimTime::EPOCH, Ev::Send(0));
    let total = 400u32;

    engine.run_to_completion(|ctx, ev| match ev {
        Ev::Send(n) => {
            sim.outstanding.insert(n);
            sim.sent_at.insert(n, ctx.now());
            let out = sim.fwd.send(ctx.now());
            sim.trace.record("probe", ctx.now(), out);
            if let PathOutcome::Delivered { arrival, .. } = out {
                // Server echoes immediately.
                if let PathOutcome::Delivered {
                    arrival: back_at, ..
                } = sim.rev.send(arrival)
                {
                    ctx.schedule_at(back_at, Ev::Reply(n));
                }
            }
            // One-second client timeout.
            ctx.schedule_in(Dur::from_secs(1), Ev::Timeout(n));
            if n + 1 < total {
                ctx.schedule_in(Dur::from_millis(250), Ev::Send(n + 1));
            }
        }
        Ev::Reply(n) => {
            if sim.outstanding.remove(&n) {
                let rtt = ctx.now() - sim.sent_at[&n];
                sim.completed.push((n, rtt));
            }
        }
        Ev::Timeout(n) => {
            if sim.outstanding.remove(&n) {
                sim.timeouts += 1;
            }
        }
    });

    // Every probe resolved exactly one way.
    assert!(sim.outstanding.is_empty());
    assert_eq!(sim.completed.len() as u32 + sim.timeouts, total);
    // ~64% survive both 20%-loss legs.
    let ok = sim.completed.len() as f64 / f64::from(total);
    assert!((0.5..0.8).contains(&ok), "completion {ok}");
    // RTTs are exactly two 30 ms legs plus jitter.
    for (_, rtt) in &sim.completed {
        let ms = rtt.as_millis_f64();
        assert!((60.0..64.0).contains(&ms), "rtt {ms}");
    }
    // The trace accounted for every forward send.
    assert_eq!(sim.trace.sent(), u64::from(total));
    assert!(sim.trace.lost() > 0);
    // Replies arrive in send order here (constant-ish delay), so RTT list
    // is sorted by probe id.
    let ids: Vec<u32> = sim.completed.iter().map(|(n, _)| *n).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}

#[test]
fn engine_composition_is_deterministic() {
    let run = |seed| {
        let mut sim = PingPong::new(0.1, seed);
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::EPOCH, Ev::Send(0));
        engine.run_to_completion(|ctx, ev| match ev {
            Ev::Send(n) => {
                let out = sim.fwd.send(ctx.now());
                if let PathOutcome::Delivered { arrival, .. } = out {
                    ctx.schedule_at(arrival, Ev::Reply(n));
                }
                if n < 200 {
                    ctx.schedule_in(Dur::from_millis(100), Ev::Send(n + 1));
                }
            }
            Ev::Reply(n) => sim.completed.push((n, Dur::ZERO)),
            Ev::Timeout(_) => {}
        });
        sim.completed.iter().map(|(n, _)| *n).collect::<Vec<_>>()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}
