//! Property tests for the deterministic parallel runner: `par_map` must be
//! observationally identical to a sequential `map` — same outputs in the
//! same order, empty inputs included — at every thread count, and a
//! panicking unit must surface exactly like it would sequentially (the
//! lowest-index panic wins).

use proptest::prelude::*;
use vns_netsim::{par_map, Par};

/// A cheap keyed mix so outputs depend on both index and value.
fn mix(i: usize, v: u64) -> u64 {
    (i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(v)
        .rotate_left(17)
}

proptest! {
    #[test]
    fn par_map_equals_sequential_map(
        items in prop::collection::vec(0u64..u64::MAX, 0..300),
        threads in 1usize..33,
    ) {
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, v)| mix(i, *v)).collect();
        let par = par_map(Par::new(threads), &items, |i, v| mix(i, *v));
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn thread_count_never_changes_the_result(
        items in prop::collection::vec(0u64..1_000, 0..200),
        a in 1usize..17,
        b in 1usize..17,
    ) {
        let ra = par_map(Par::new(a), &items, |i, v| mix(i, *v));
        let rb = par_map(Par::new(b), &items, |i, v| mix(i, *v));
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn lowest_index_panic_wins_at_any_thread_count(
        len in 1usize..120,
        panics in prop::collection::vec(0usize..120, 1..6),
        threads in 1usize..17,
    ) {
        let items: Vec<usize> = (0..len).collect();
        let panics: std::collections::BTreeSet<usize> =
            panics.into_iter().map(|p| p % len).collect();
        let first = *panics.iter().next().expect("non-empty");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Par::new(threads), &items, |i, v| {
                if panics.contains(&i) {
                    panic!("boom at {i}");
                }
                *v
            })
        }));
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        prop_assert_eq!(msg, format!("boom at {first}"));
    }
}
