//! Property tests for the simulation substrate: clock arithmetic, event
//! ordering, blackout-schedule invariants and loss-model stationarity.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::{BlackoutSchedule, Dur, EventQueue, LossModel, LossProcess, SimTime};

proptest! {
    #[test]
    fn duration_addition_is_nanos_addition(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let d = Dur::from_nanos(a) + Dur::from_nanos(b);
        prop_assert_eq!(d.as_nanos(), a + b);
    }

    #[test]
    fn simtime_ordering_matches_nanos(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        prop_assert_eq!(ta < tb, a < b);
        if a <= b {
            prop_assert_eq!((tb - ta).as_nanos(), b - a);
        }
    }

    #[test]
    fn local_hour_always_in_range(ns in 0u64..u64::MAX / 2, offset in -48.0f64..48.0) {
        let h = SimTime::from_nanos(ns).local_hour(offset);
        prop_assert!((0.0..24.0).contains(&h), "hour {h}");
    }

    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut last = SimTime::EPOCH;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn blackout_merge_is_sorted_and_disjoint(
        windows in prop::collection::vec((0u64..10_000, 0u64..500), 0..50)
    ) {
        let ws: Vec<(SimTime, SimTime)> = windows
            .iter()
            .map(|(s, d)| {
                (
                    SimTime::from_nanos(*s * 1_000),
                    SimTime::from_nanos((*s + *d) * 1_000),
                )
            })
            .collect();
        let sched = BlackoutSchedule::new(ws.clone());
        // Membership must agree with the raw window list.
        for probe in (0..10_500).step_by(97) {
            let t = SimTime::from_nanos(probe * 1_000);
            let raw = ws.iter().any(|(s, e)| t >= *s && t < *e);
            prop_assert_eq!(sched.blacked_out(t), raw, "at {}", probe);
        }
        // Total duration never exceeds the sum of inputs.
        let sum: u64 = ws.iter().map(|(s, e)| (*e - *s).as_nanos()).sum();
        prop_assert!(sched.total_duration().as_nanos() <= sum);
    }

    #[test]
    fn bernoulli_process_matches_rate(p in 0.0f64..0.3, seed in 0u64..1000) {
        let model = LossModel::Bernoulli { p };
        let mut proc = LossProcess::new(model, SmallRng::seed_from_u64(seed));
        let n = 20_000u32;
        let mut lost = 0;
        let mut t = SimTime::EPOCH;
        for _ in 0..n {
            if proc.packet_lost(t) {
                lost += 1;
            }
            t += Dur::from_millis(1);
        }
        let rate = f64::from(lost) / f64::from(n);
        // 5-sigma band for a binomial sample.
        let sigma = (p * (1.0 - p) / f64::from(n)).sqrt();
        prop_assert!((rate - p).abs() <= 5.0 * sigma + 1e-4, "rate {rate} vs p {p}");
    }

    #[test]
    fn ge_mean_rate_is_stationary_rate(
        overall in 0.001f64..0.05,
        burst_loss in 0.2f64..0.8,
        mean_burst in 0.5f64..5.0,
        seed in 0u64..50
    ) {
        let model = LossModel::bursty(overall, burst_loss, mean_burst);
        prop_assert!((model.mean_rate() - overall).abs() < 1e-9);
        // Long-run empirical rate converges (loose band: the chain mixes
        // slowly for long bursts).
        let mut proc = LossProcess::new(model, SmallRng::seed_from_u64(seed));
        let mut lost = 0u32;
        let n = 60_000u32;
        let mut t = SimTime::EPOCH;
        for _ in 0..n {
            if proc.packet_lost(t) {
                lost += 1;
            }
            t += Dur::from_millis(50);
        }
        let rate = f64::from(lost) / f64::from(n);
        prop_assert!(
            rate < overall * 4.0 + 0.002 && rate > overall / 6.0 - 0.002,
            "rate {rate} vs overall {overall}"
        );
    }

    #[test]
    fn composite_mean_never_below_components_max(
        p1 in 0.0f64..0.2,
        p2 in 0.0f64..0.2
    ) {
        let m = LossModel::Composite(vec![
            LossModel::Bernoulli { p: p1 },
            LossModel::Bernoulli { p: p2 },
        ]);
        let mean = m.mean_rate();
        prop_assert!(mean >= p1.max(p2) - 1e-12);
        prop_assert!(mean <= p1 + p2 + 1e-12);
    }
}
