//! Criterion microbenchmarks for the structure-of-arrays batch engine:
//! batched vs scalar sends on representative multi-hop channels, and the
//! arena scratch pool vs fresh heap allocation on the session-setup path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vns_netsim::{
    scratch, BatchScratch, DiurnalProfile, DiurnalShape, Dur, HopChannel, LossModel, LossProcess,
    PathChannel, SimTime,
};

/// A media-like 5-hop path: two clean access hops, a contended transit
/// hop with Bernoulli loss, a bursty hop, and a clean long-haul hop.
fn media_hops(seed: u64) -> Vec<HopChannel> {
    let profile = DiurnalProfile::new(DiurnalShape::Business, 0.3, 0.6, 0.0);
    let mk = |base: f64, model: LossModel, s: u64| {
        let mut h = HopChannel::ideal(base);
        h.loss = LossProcess::new(model, SmallRng::seed_from_u64(s));
        h
    };
    let mut contended = mk(12.0, LossModel::Bernoulli { p: 0.004 }, seed + 2);
    contended.delay = vns_netsim::DelaySampler::contended(12.0, profile);
    vec![
        mk(2.0, LossModel::None, seed),
        mk(5.0, LossModel::None, seed + 1),
        contended,
        mk(
            8.0,
            LossModel::GilbertElliott {
                g2b_per_sec: 1.0 / 30.0,
                b2g_per_sec: 3.0,
                loss_good: 0.0001,
                loss_bad: 0.3,
            },
            seed + 3,
        ),
        mk(25.0, LossModel::None, seed + 4),
    ]
}

fn times(n: u64) -> Vec<SimTime> {
    // ~1200-byte packets of a 4 Mb/s stream: one every ~2.4 ms.
    (0..n)
        .map(|i| SimTime::EPOCH + Dur::from_micros(i * 2400))
        .collect()
}

fn bench_send_scalar_vs_batch(c: &mut Criterion) {
    let ts = times(8192);
    let mut g = c.benchmark_group("channel");
    g.bench_function("send/scalar_8k", |b| {
        b.iter(|| {
            let mut ch = PathChannel::new(media_hops(7), SmallRng::seed_from_u64(9));
            let mut delivered = 0u32;
            for &t in &ts {
                if ch.send(t).delivered() {
                    delivered += 1;
                }
            }
            black_box(delivered);
        });
    });
    g.bench_function("send/batch_8k", |b| {
        b.iter(|| {
            let mut ch = PathChannel::new(media_hops(7), SmallRng::seed_from_u64(9));
            let mut s = scratch();
            s.times.extend_from_slice(&ts);
            ch.send_batch(&mut s);
            let delivered = s.outcomes.iter().filter(|o| o.delivered()).count();
            black_box(delivered);
        });
    });
    // The live-set API the session loop actually drives: no outcome
    // column, delivered clocks left in `now`, losses in the sparse column.
    g.bench_function("send/batch_live_8k", |b| {
        b.iter(|| {
            let mut ch = PathChannel::new(media_hops(7), SmallRng::seed_from_u64(9));
            let mut s = scratch();
            let mut delivered = 0usize;
            for chunk in ts.chunks(vns_netsim::BATCH_LEN) {
                s.clear();
                s.times.extend_from_slice(chunk);
                delivered += ch.send_batch_live(&mut s);
            }
            black_box(delivered);
        });
    });
    g.finish();
}

fn bench_arena_vs_heap(c: &mut Criterion) {
    let ts = times(512);
    let mut g = c.benchmark_group("arena");
    // Session-setup shape: take scratch, run one short batch, drop it.
    g.bench_function("setup/pooled_scratch", |b| {
        b.iter(|| {
            let mut s = scratch();
            s.times.extend_from_slice(&ts);
            black_box(s.times.len());
        });
    });
    g.bench_function("setup/fresh_heap", |b| {
        b.iter(|| {
            let mut s = BatchScratch::default();
            s.times.extend_from_slice(&ts);
            black_box(s.times.len());
        });
    });
    g.finish();
}

criterion_main!(benches, probes);

fn bench_components(c: &mut Criterion) {
    let ts = times(8192);
    let mut g = c.benchmark_group("probe");
    g.bench_function("ideal_1hop_batch_8k", |b| {
        b.iter(|| {
            let mut ch = PathChannel::new(vec![HopChannel::ideal(5.0)], SmallRng::seed_from_u64(9));
            let mut s = scratch();
            s.times.extend_from_slice(&ts);
            ch.send_batch(&mut s);
            black_box(s.outcomes.len());
        });
    });
    g.bench_function("ideal_5hop_batch_8k", |b| {
        b.iter(|| {
            let hops = vec![
                HopChannel::ideal(2.0),
                HopChannel::ideal(5.0),
                HopChannel::ideal(12.0),
                HopChannel::ideal(8.0),
                HopChannel::ideal(25.0),
            ];
            let mut ch = PathChannel::new(hops, SmallRng::seed_from_u64(9));
            let mut s = scratch();
            s.times.extend_from_slice(&ts);
            ch.send_batch(&mut s);
            black_box(s.outcomes.len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_send_scalar_vs_batch, bench_arena_vs_heap);
criterion_group!(probes, bench_components);
