//! Per-thread throughput ledgers.
//!
//! `vns-bench` reports packets/s and units/s per experiment by sampling two
//! process-wide counters around each run. Earlier revisions backed those
//! with global `AtomicU64`s that every `PathChannel` drop and every
//! `par_map` call hit — a shared cache line bouncing between workers. The
//! ledger keeps the hot-path counts in plain thread-local [`Cell`]s
//! instead:
//!
//! * campaign code calls [`add_packets`]/[`add_units`] — a thread-local
//!   increment, no atomics, no contention;
//! * a `par_map` worker drains its cells with [`take_local`] when its unit
//!   loop ends and hands the delta back to the join point, which folds the
//!   deltas into the process totals in canonical worker order via
//!   [`merge`];
//! * readers ([`packets_sent`], [`units_processed`]) see the merged totals
//!   plus their own thread's still-local tally, so single-threaded flows
//!   (tests, the bench runner between experiments) observe their own
//!   counts immediately and exactly — concurrent tests on other threads
//!   can no longer skew a delta measured on this one.
//!
//! Counts recorded on a plain `std::thread` that never merges are visible
//! only to that thread; inside this workspace every worker thread is
//! spawned by `par_map`, which always merges.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process totals, fed only by [`merge`] at `par_map` join points (and by
/// nothing else — workers never touch these directly).
static MERGED_PACKETS: AtomicU64 = AtomicU64::new(0);
static MERGED_UNITS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL_PACKETS: Cell<u64> = const { Cell::new(0) };
    static LOCAL_UNITS: Cell<u64> = const { Cell::new(0) };
}

/// A drained per-thread tally, produced by [`take_local`] and consumed by
/// [`merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerDelta {
    /// Packets pushed through `PathChannel`s on the drained thread.
    pub packets: u64,
    /// Work units completed on the drained thread.
    pub units: u64,
}

/// Records `n` packets sent on the current thread.
pub fn add_packets(n: u64) {
    LOCAL_PACKETS.with(|c| c.set(c.get() + n));
}

/// Records `n` work units processed on the current thread.
pub fn add_units(n: u64) {
    LOCAL_UNITS.with(|c| c.set(c.get() + n));
}

/// Drains the current thread's cells to zero and returns the delta. Called
/// by `par_map` workers at the end of their claim loop; the join point
/// passes the deltas to [`merge`] in worker spawn order.
pub fn take_local() -> LedgerDelta {
    LedgerDelta {
        packets: LOCAL_PACKETS.with(|c| c.replace(0)),
        units: LOCAL_UNITS.with(|c| c.replace(0)),
    }
}

/// Folds a drained worker delta into the process totals.
pub fn merge(delta: LedgerDelta) {
    if delta.packets > 0 {
        MERGED_PACKETS.fetch_add(delta.packets, Ordering::Relaxed);
    }
    if delta.units > 0 {
        MERGED_UNITS.fetch_add(delta.units, Ordering::Relaxed);
    }
}

/// Packets sent through `PathChannel`s, as visible to this thread: the
/// merged process total plus this thread's still-local tally.
pub fn packets_sent() -> u64 {
    MERGED_PACKETS.load(Ordering::Relaxed) + LOCAL_PACKETS.with(Cell::get)
}

/// Work units processed by `par_map`, as visible to this thread (merged
/// total plus this thread's local tally).
pub fn units_processed() -> u64 {
    MERGED_UNITS.load(Ordering::Relaxed) + LOCAL_UNITS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_are_immediately_visible() {
        let p0 = packets_sent();
        let u0 = units_processed();
        add_packets(5);
        add_units(2);
        assert_eq!(packets_sent() - p0, 5);
        assert_eq!(units_processed() - u0, 2);
    }

    #[test]
    fn take_local_drains_and_merge_restores_visibility() {
        add_packets(7);
        let before_merge = MERGED_PACKETS.load(Ordering::Relaxed);
        let d = take_local();
        assert!(d.packets >= 7);
        assert_eq!(LOCAL_PACKETS.with(Cell::get), 0);
        merge(d);
        assert!(MERGED_PACKETS.load(Ordering::Relaxed) >= before_merge + 7);
    }

    #[test]
    fn other_threads_do_not_skew_a_local_delta() {
        let before = packets_sent();
        let handle = std::thread::spawn(|| {
            // A foreign thread's unmerged tally must not be visible here.
            add_packets(1_000_000);
        });
        add_packets(3);
        handle.join().expect("thread");
        assert_eq!(packets_sent() - before, 3);
    }
}
