//! Recycled per-thread scratch for the batch packet engine.
//!
//! Every batched send needs a handful of columnar buffers (send instants,
//! running clocks, live-packet indices, outcomes). Allocating them per
//! session would put four `Vec` round-trips on the setup path of each of
//! steady-state's ~170k session units; instead a thread-local pool hands
//! out [`BatchScratch`] blocks that keep their capacity across uses — after
//! the first few sessions on a thread, batch sends allocate nothing.
//!
//! The workspace forbids `unsafe`, so this is a recycling pool rather than
//! a raw bump allocator: [`scratch`] pops a block (or builds one), the
//! [`Scratch`] guard derefs to it, and dropping the guard clears and
//! returns the block to the pool. Blocks never migrate between threads, so
//! there is no synchronisation anywhere on the path.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

use crate::channel::PathOutcome;
use crate::time::SimTime;

/// Column block used by one batched send (see [`crate::channel`]).
///
/// `times` is the caller-filled input column; `outcomes` is the engine's
/// output column (one entry per input); `now` and `idx` are the engine's
/// internal live-set columns. Capacities persist across pool round-trips.
#[derive(Debug, Default)]
pub struct BatchScratch {
    /// Input: send instants, one per packet in the batch.
    pub times: Vec<SimTime>,
    /// Output: per-packet outcomes, same length as `times` after a send.
    pub outcomes: Vec<PathOutcome>,
    /// Internal: running clock of each still-live packet, nanoseconds.
    /// After a live-set send this is the delivered packets' arrival clocks.
    pub now: Vec<u64>,
    /// Internal: original batch index of each still-live packet. After a
    /// live-set send it is either empty (identity mapping: nothing was
    /// dropped, delivered slot `j` is original packet `j`) or one original
    /// index per delivered slot.
    pub idx: Vec<u32>,
    /// Sparse loss column of a live-set send: one `(original index << 8) |
    /// hop` entry per dropped packet, in drop order (hop-major).
    pub lost: Vec<u32>,
}

impl BatchScratch {
    /// Empties all columns (capacity is retained).
    pub fn clear(&mut self) {
        self.times.clear();
        self.outcomes.clear();
        self.now.clear();
        self.idx.clear();
        self.lost.clear();
    }
}

thread_local! {
    static POOL: RefCell<Vec<BatchScratch>> = const { RefCell::new(Vec::new()) };
}

/// Owning guard over a pooled [`BatchScratch`]; returns the block to the
/// current thread's pool on drop.
#[derive(Debug)]
pub struct Scratch(Option<BatchScratch>);

impl Deref for Scratch {
    type Target = BatchScratch;
    fn deref(&self) -> &BatchScratch {
        match &self.0 {
            Some(s) => s,
            // The Option is only vacated in Drop.
            None => unreachable!("scratch guard accessed after drop"),
        }
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut BatchScratch {
        match &mut self.0 {
            Some(s) => s,
            None => unreachable!("scratch guard accessed after drop"),
        }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if let Some(mut block) = self.0.take() {
            block.clear();
            POOL.with(|p| p.borrow_mut().push(block));
        }
    }
}

/// Takes a scratch block from the current thread's pool (allocating a fresh
/// empty one only when the pool is dry).
pub fn scratch() -> Scratch {
    let block = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    Scratch(Some(block))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_survives_a_pool_round_trip() {
        {
            let mut s = scratch();
            s.now.reserve(4096);
        }
        let s = scratch();
        assert!(s.now.capacity() >= 4096, "block was not recycled");
        assert!(s.now.is_empty(), "block came back dirty");
    }

    #[test]
    fn nested_guards_get_distinct_blocks() {
        let mut a = scratch();
        a.idx.push(1);
        let b = scratch();
        assert!(b.idx.is_empty());
        drop(b);
        assert_eq!(a.idx, [1]);
    }
}
